"""The example scripts must stay runnable as the library evolves."""

from __future__ import annotations

import ast
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExampleHygiene:
    def test_examples_exist(self):
        names = {p.name for p in ALL_EXAMPLES}
        assert {
            "quickstart.py",
            "access_transistor_study.py",
            "assist_explorer.py",
            "design_signoff.py",
            "monte_carlo_yield.py",
            "array_planner.py",
        } <= names

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_parses_and_has_main(self, path):
        tree = ast.parse(path.read_text())
        functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in functions

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_has_usage_docstring(self, path):
        module = ast.parse(path.read_text())
        doc = ast.get_docstring(module)
        assert doc and "Usage" in doc

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_imports_resolve(self, path):
        # Importing the module (without running main) catches API drift.
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                __import__(node.module)


class TestQuickstartRuns:
    def test_quickstart_end_to_end(self, capsys):
        argv = sys.argv
        sys.argv = ["quickstart.py"]
        try:
            runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
        finally:
            sys.argv = argv
        out = capsys.readouterr().out
        assert "I_on" in out
        assert "WL_crit" in out
        assert "SUITABLE" not in out  # that's the other example
