"""Spec compilation: axes, skips, stable ordering, JSON round-trips."""

from __future__ import annotations

import json

import pytest

from repro.char import BUILTIN_SPECS, CharPoint, CharSpec, load_spec, resolve_spec


def _spec(**overrides):
    base = dict(
        name="t",
        designs=("cmos", "proposed"),
        vdds=(0.6, 0.8),
        metrics=("hold_power", "drnm"),
    )
    base.update(overrides)
    return CharSpec(**base)


class TestValidation:
    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError, match="unknown design"):
            _spec(designs=("cmos", "nope"))

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            _spec(metrics=("hold_power", "nope"))

    def test_unknown_corner_rejected(self):
        with pytest.raises(ValueError, match="unknown corner"):
            _spec(corners=("tt", "zz"))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="axis is empty"):
            _spec(vdds=())

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            _spec(designs=("cmos", "cmos"))

    def test_unsorted_vdds_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            _spec(vdds=(0.8, 0.6))

    def test_vdd_range_enforced(self):
        with pytest.raises(ValueError, match="out of"):
            _spec(vdds=(0.6, 2.5))

    def test_nonpositive_beta_rejected(self):
        with pytest.raises(ValueError, match="beta"):
            _spec(betas=(0.5, -1.0))

    def test_unsorted_betas_rejected(self):
        # The query layer's bracket search assumes ascending axes.
        with pytest.raises(ValueError, match="betas must be sorted"):
            _spec(betas=(1.5, 0.5))

    def test_leading_none_beta_allowed(self):
        spec = _spec(betas=(None, 0.5, 1.5))
        assert spec.betas == (None, 0.5, 1.5)


class TestCompilation:
    def test_points_skip_corners_for_corner_insensitive_designs(self):
        spec = _spec(corners=("tt", "ff"))
        points = spec.points()
        cmos = [p for p in points if p.design == "cmos"]
        proposed = [p for p in points if p.design == "proposed"]
        assert {p.corner for p in cmos} == {"tt"}
        assert {p.corner for p in proposed} == {"tt", "ff"}

    def test_points_skip_betas_for_fixed_sizing_designs(self):
        spec = _spec(betas=(None, 1.5))
        points = spec.points()
        # cmos sweeps beta; the proposed cell has a topology-fixed sizing
        assert {p.beta for p in points if p.design == "cmos"} == {None, 1.5}
        assert {p.beta for p in points if p.design == "proposed"} == {None}

    def test_entries_skip_undefined_metrics(self):
        spec = _spec(designs=("asym",), metrics=("drnm", "wl_crit"))
        assert {e.metric for e in spec.entries()} == {"drnm"}

    def test_entry_indices_are_contiguous_and_stable(self):
        spec = _spec()
        entries = spec.entries()
        assert [e.index for e in entries] == list(range(len(entries)))
        assert [ (e.point, e.metric) for e in entries ] == [
            (e.point, e.metric) for e in spec.entries()
        ]


class TestSerialization:
    def test_json_round_trip(self):
        spec = _spec(betas=(None, 1.5), corners=("tt", "ss"))
        assert CharSpec.from_json(spec.to_json()) == spec

    def test_missing_field_rejected(self):
        payload = _spec().to_json()
        del payload["metrics"]
        with pytest.raises(ValueError, match="metrics"):
            CharSpec.from_json(payload)

    def test_load_spec_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(_spec().to_json()))
        assert load_spec(path) == _spec()

    def test_resolve_builtin_then_file_then_error(self, tmp_path):
        assert resolve_spec("nominal") is BUILTIN_SPECS["nominal"]
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(_spec().to_json()))
        assert resolve_spec(str(path)) == _spec()
        with pytest.raises(ValueError, match="unknown spec"):
            resolve_spec("no_such_spec")


class TestBuiltins:
    def test_builtin_specs_compile(self):
        for spec in BUILTIN_SPECS.values():
            entries = spec.entries()
            assert entries, spec.name
            assert [e.index for e in entries] == list(range(len(entries)))

    def test_nominal_covers_fig11_and_power_table_points(self):
        spec = BUILTIN_SPECS["nominal"]
        points = {(p.design, p.vdd) for p in spec.points()}
        for design in ("cmos", "proposed", "asym", "7t"):
            for vdd in (0.5, 0.6, 0.7, 0.8, 0.9):
                assert (design, vdd) in points
        assert ("outward_n", 0.8) in points  # the power table's outward row


def test_point_label_and_coords():
    point = CharPoint(design="cmos", corner="tt", vdd=0.8, beta=1.5)
    assert point.coords() == {
        "design": "cmos", "corner": "tt", "vdd": 0.8, "beta": 1.5,
    }
    assert "cmos" in point.label() and "0.8" in point.label()
