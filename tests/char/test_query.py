"""Query layer: interpolation math, provenance, and tolerances.

The math tests run on synthetic stores (records appended directly with
known values), so linear/log-linear data must interpolate exactly.
The tolerance test is the acceptance check: interpolated answers at
held-out midpoints agree with direct simulation within the documented
bounds (DESIGN.md, "Characterization store")."""

from __future__ import annotations

import math

import pytest

from repro.char import (
    CharGrid,
    CharQueryError,
    CharSpec,
    CharStore,
    build_grid,
    entry_fingerprint,
    evaluate_metric,
    metric_reader,
    stored_value,
)


def _fill(store, spec, value_fn):
    """Append records for every entry with value_fn(point, metric)."""
    records = []
    for entry in spec.entries():
        fp = entry_fingerprint(entry.point, entry.metric)
        records.append(
            CharStore.entry_record(
                entry, fp, value=value_fn(entry.point, entry.metric)
            )
        )
    store.append(records)


def _synthetic_grid(tmp_path, spec, value_fn):
    store = CharStore(tmp_path)
    _fill(store, spec, value_fn)
    return CharGrid.from_store(store, spec)


def _vdd_spec(metrics=("drnm",), vdds=(0.6, 0.7, 0.8, 0.9)):
    return CharSpec(name="q", designs=("cmos",), vdds=vdds, metrics=metrics)


class TestInterpolationMath:
    def test_exact_hit(self, tmp_path):
        grid = _synthetic_grid(tmp_path, _vdd_spec(), lambda p, m: 2.0 * p.vdd)
        answer = grid.query("drnm", design="cmos", vdd=0.7)
        assert answer.method == "exact"
        assert answer.value == pytest.approx(1.4)
        assert answer.nearest["coords"]["vdd"] == 0.7
        assert answer.nearest["distance"] == 0.0

    def test_linear_data_interpolates_exactly(self, tmp_path):
        grid = _synthetic_grid(tmp_path, _vdd_spec(), lambda p, m: 2.0 * p.vdd)
        for method in ("linear", "cubic", "auto"):
            answer = grid.query("drnm", design="cmos", vdd=0.65, method=method)
            assert answer.value == pytest.approx(1.3, rel=1e-12)

    def test_log_linear_data_interpolates_exactly_in_log_space(self, tmp_path):
        # hold_power is a log-transform metric: exp-linear data must be
        # recovered exactly by log-space interpolation.
        grid = _synthetic_grid(
            tmp_path, _vdd_spec(metrics=("hold_power",)),
            lambda p, m: 10.0 ** (-12.0 + 5.0 * p.vdd),
        )
        answer = grid.query("hold_power", design="cmos", vdd=0.75, method="linear")
        assert answer.value == pytest.approx(10.0 ** (-12.0 + 5.0 * 0.75), rel=1e-9)
        assert "log10" in " ".join(answer.notes)

    def test_bilinear_over_beta_and_vdd(self, tmp_path):
        spec = CharSpec(
            name="q2", designs=("cmos",), vdds=(0.6, 0.8),
            metrics=("drnm",), betas=(1.0, 2.0),
        )
        grid = _synthetic_grid(
            tmp_path, spec, lambda p, m: p.vdd + 10.0 * p.beta
        )
        answer = grid.query("drnm", design="cmos", vdd=0.7, beta=1.25)
        assert answer.method == "linear"
        assert answer.value == pytest.approx(0.7 + 12.5, rel=1e-12)

    def test_nearest_method_and_provenance(self, tmp_path):
        grid = _synthetic_grid(tmp_path, _vdd_spec(), lambda p, m: 2.0 * p.vdd)
        answer = grid.query("drnm", design="cmos", vdd=0.68, method="nearest")
        assert answer.method == "nearest"
        assert answer.nearest["coords"]["vdd"] == 0.7
        assert answer.value == pytest.approx(1.4)
        assert answer.nearest["fp"] == entry_fingerprint(
            [p for p in _vdd_spec().points() if p.vdd == 0.7][0], "drnm"
        )

    def test_log_metric_with_infinite_neighbour_degrades_to_nearest(self, tmp_path):
        def value_fn(point, metric):
            return math.inf if point.vdd == 0.6 else 1e-9 * point.vdd

        grid = _synthetic_grid(
            tmp_path, _vdd_spec(metrics=("wl_crit",)), value_fn
        )
        answer = grid.query("wl_crit", design="cmos", vdd=0.65)
        assert answer.method == "nearest"
        assert any("nearest" in n for n in answer.notes)
        # Beyond the infinite cell the axis interpolates normally again.
        assert grid.query("wl_crit", design="cmos", vdd=0.75).method in (
            "linear", "cubic",
        )

    def test_out_of_range_raises_instead_of_extrapolating(self, tmp_path):
        grid = _synthetic_grid(tmp_path, _vdd_spec(), lambda p, m: p.vdd)
        with pytest.raises(CharQueryError, match="outside"):
            grid.query("drnm", design="cmos", vdd=0.4)

    def test_missing_entry_raises(self, tmp_path):
        spec = _vdd_spec()
        store = CharStore(tmp_path)
        records = [
            CharStore.entry_record(
                e, entry_fingerprint(e.point, e.metric), value=1.0
            )
            for e in spec.entries() if e.point.vdd != 0.7  # drop one point
        ]
        store.append(records)
        grid = CharGrid.from_store(store, spec)
        with pytest.raises(CharQueryError, match="incomplete"):
            grid.query("drnm", design="cmos", vdd=0.68)

    def test_unknown_axis_values_raise(self, tmp_path):
        grid = _synthetic_grid(tmp_path, _vdd_spec(), lambda p, m: p.vdd)
        with pytest.raises(CharQueryError, match="design"):
            grid.query("drnm", design="proposed", vdd=0.7)
        with pytest.raises(CharQueryError, match="metric"):
            grid.query("snm", design="cmos", vdd=0.7)
        with pytest.raises(CharQueryError, match="beta"):
            grid.query("drnm", design="cmos", vdd=0.7, beta=1.5)

    def test_cubic_requires_four_vdd_points(self, tmp_path):
        grid = _synthetic_grid(
            tmp_path, _vdd_spec(vdds=(0.6, 0.8)), lambda p, m: p.vdd
        )
        with pytest.raises(CharQueryError, match="cubic"):
            grid.query("drnm", design="cmos", vdd=0.7, method="cubic")

    def test_answer_json_shape(self, tmp_path):
        grid = _synthetic_grid(tmp_path, _vdd_spec(), lambda p, m: p.vdd)
        payload = grid.query("drnm", design="cmos", vdd=0.65).to_json()
        assert set(payload) == {
            "metric", "unit", "value", "coords", "method", "nearest", "notes",
        }
        assert set(payload["nearest"]) == {"coords", "value", "fp", "distance"}


class TestToleranceAgainstSimulation:
    """The documented interpolation tolerances, enforced.

    DESIGN.md documents: at interior held-out midpoints of a 0.1 V
    grid, DRNM within 1 % (linear), hold power within 2 %
    (log-linear), read delay within 5 % (cubic)."""

    @pytest.fixture(scope="class")
    def built(self, tmp_path_factory):
        spec = CharSpec(
            name="tol", designs=("cmos",), vdds=(0.5, 0.6, 0.7, 0.8, 0.9),
            metrics=("drnm", "hold_power", "read_delay"),
        )
        store = CharStore(tmp_path_factory.mktemp("tol_store"))
        build_grid(spec, store)
        return CharGrid.from_store(store, spec), spec

    @pytest.mark.parametrize("vdd", (0.65, 0.75))
    def test_drnm_linear_within_1_percent(self, built, vdd):
        grid, _ = built
        direct = evaluate_metric("drnm", "cmos", vdd)
        answer = grid.query("drnm", design="cmos", vdd=vdd, method="linear")
        assert answer.value == pytest.approx(direct, rel=0.01)

    @pytest.mark.parametrize("vdd", (0.65, 0.75))
    def test_hold_power_log_linear_within_2_percent(self, built, vdd):
        grid, _ = built
        direct = evaluate_metric("hold_power", "cmos", vdd)
        answer = grid.query("hold_power", design="cmos", vdd=vdd, method="linear")
        assert answer.value == pytest.approx(direct, rel=0.02)

    @pytest.mark.parametrize("vdd", (0.65, 0.75))
    def test_read_delay_cubic_within_5_percent(self, built, vdd):
        grid, _ = built
        direct = evaluate_metric("read_delay", "cmos", vdd)
        answer = grid.query("read_delay", design="cmos", vdd=vdd, method="cubic")
        assert answer.value == pytest.approx(direct, rel=0.05)


class TestServing:
    def test_stored_value_hit_and_miss(self, tmp_path):
        spec = _vdd_spec()
        store = CharStore(tmp_path)
        _fill(store, spec, lambda p, m: 2.0 * p.vdd)
        assert stored_value(store, "drnm", "cmos", 0.7) == pytest.approx(1.4)
        assert stored_value(store, "drnm", "cmos", 0.123) is None
        assert stored_value(store, "drnm", "proposed", 0.7) is None

    def test_metric_reader_falls_back_to_compute(self, tmp_path):
        spec = _vdd_spec()
        store = CharStore(tmp_path)
        _fill(store, spec, lambda p, m: 2.0 * p.vdd)
        read = metric_reader(store)
        assert read("drnm", "cmos", 0.7, lambda: 999.0) == pytest.approx(1.4)
        assert read("drnm", "cmos", 0.123, lambda: 999.0) == 999.0
        # Without a store everything computes.
        read_none = metric_reader(None)
        assert read_none("drnm", "cmos", 0.7, lambda: 999.0) == 999.0
