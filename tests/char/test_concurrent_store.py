"""Store reads racing a concurrent writer mid-build.

The serving daemon reads the same index a `repro char build` process
appends to; these are the regression tests for every torn state a
reader can observe: a header caught mid-creation, a torn trailing
record, and two appends inside one mtime tick."""

from __future__ import annotations

import json
import os

import pytest

from repro.char import CharSpec, CharStore, build_grid
from repro.char.query import CharGrid, CharQueryError

_HEADER = json.dumps({"schema": "repro.char.index/v1"})


def _record(fp: str, value: float = 1.0, status: str = "ok") -> dict:
    return {"fp": fp, "status": status, "value": value}


class TestTornIndexReads:
    def test_torn_header_reads_empty_without_caching(self, tmp_path):
        store = CharStore(tmp_path)
        store.index_path.parent.mkdir(parents=True, exist_ok=True)
        store.index_path.write_text('{"schema": "repro.ch')  # mid-creation
        assert store.load_index() == {}
        assert store.load_index() == {}  # still readable, still empty

        # The writer finishes the file; the very next read sees it.
        store.index_path.write_text(
            _HEADER + "\n" + json.dumps(_record("f1")) + "\n"
        )
        assert set(store.load_index()) == {"f1"}

    def test_wrong_schema_still_raises(self, tmp_path):
        store = CharStore(tmp_path)
        store.index_path.parent.mkdir(parents=True, exist_ok=True)
        store.index_path.write_text('{"schema": "somebody.else/v9"}\n')
        with pytest.raises(ValueError, match="schema"):
            store.load_index()

    def test_torn_trailing_record_is_ignored_until_complete(self, tmp_path):
        store = CharStore(tmp_path)
        store.append([_record("f1")])
        with store.index_path.open("a") as handle:
            handle.write('{"fp": "f2", "va')  # append caught mid-line
        assert set(store.load_index()) == {"f1"}

        with store.index_path.open("a") as handle:
            handle.write('lue": 2.0, "status": "ok"}\n')
        store.refresh()
        index = store.load_index()
        assert set(index) == {"f1", "f2"}
        assert index["f2"]["value"] == 2.0

    def test_same_mtime_double_append_invalidates_the_cache(self, tmp_path):
        store = CharStore(tmp_path)
        store.append([_record("f1")])
        assert set(store.load_index()) == {"f1"}
        first_stat = store.index_path.stat()

        writer = CharStore(tmp_path)  # a second process's handle
        writer.append([_record("f2")])
        # Pin the mtime back to the first append's: only the size differs.
        os.utime(
            store.index_path,
            ns=(first_stat.st_atime_ns, first_stat.st_mtime_ns),
        )
        assert set(store.load_index()) == {"f1", "f2"}

    def test_refresh_drops_the_cache(self, tmp_path):
        store = CharStore(tmp_path)
        store.append([_record("f1")])
        store.load_index()
        assert store._index_cache is not None
        store.refresh()
        assert store._index_cache is None
        assert set(store.load_index()) == {"f1"}


class TestGridReadsDuringBuild:
    SPEC = CharSpec(
        name="conc", designs=("cmos",), vdds=(0.6, 0.8), metrics=("hold_power",)
    )

    def test_partial_index_serves_without_erroring(self, tmp_path):
        """A reader arriving mid-build gets a partial grid that answers
        what exists and raises a routable miss for what doesn't."""
        store = CharStore(tmp_path)
        half = CharSpec(
            name="conc", designs=("cmos",), vdds=(0.6,), metrics=("hold_power",)
        )
        build_grid(half, store)

        grid = CharGrid.from_store(CharStore(tmp_path), self.SPEC)
        answer = grid.query("hold_power", design="cmos", vdd=0.6)
        assert answer.method == "exact"
        with pytest.raises(CharQueryError) as excinfo:
            grid.query("hold_power", design="cmos", vdd=0.8)
        assert excinfo.value.reason == "missing-entry"

    def test_reader_sees_the_completed_build_after_refresh(self, tmp_path):
        store = CharStore(tmp_path)
        half = CharSpec(
            name="conc", designs=("cmos",), vdds=(0.6,), metrics=("hold_power",)
        )
        build_grid(half, store)
        reader = CharStore(tmp_path)
        reader.load_index()  # cache the half-built state

        build_grid(self.SPEC, store)  # the writer finishes
        grid = CharGrid.from_store(reader, self.SPEC)
        assert grid.query("hold_power", design="cmos", vdd=0.8).method == "exact"
