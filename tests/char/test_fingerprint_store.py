"""Fingerprint granularity and store mechanics.

The invalidation contract under test: a fingerprint moves exactly when
something the stored value depends on moves — and only for the entries
that depend on it (a TFET device change must not invalidate CMOS
entries)."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.char import (
    CharEntry,
    CharPoint,
    CharSpec,
    CharStore,
    clear_fingerprint_cache,
    entry_fingerprint,
)
from repro.char.metrics import METRICS


@pytest.fixture(autouse=True)
def _fresh_fingerprints():
    clear_fingerprint_cache()
    yield
    clear_fingerprint_cache()


def _point(**overrides):
    base = dict(design="cmos", corner="tt", vdd=0.8, beta=None)
    base.update(overrides)
    return CharPoint(**base)


class TestFingerprint:
    def test_deterministic(self):
        assert entry_fingerprint(_point(), "drnm") == entry_fingerprint(
            _point(), "drnm"
        )

    def test_distinct_across_coordinates(self):
        fps = {
            entry_fingerprint(_point(), "drnm"),
            entry_fingerprint(_point(), "hold_power"),
            entry_fingerprint(_point(vdd=0.7), "drnm"),
            entry_fingerprint(_point(beta=1.5), "drnm"),
            entry_fingerprint(_point(design="proposed"), "drnm"),
            entry_fingerprint(_point(design="proposed", corner="ss"), "drnm"),
        }
        assert len(fps) == 6

    def test_metric_version_bump_invalidates(self, monkeypatch):
        before = entry_fingerprint(_point(), "drnm")
        monkeypatch.setitem(
            METRICS, "drnm", replace(METRICS["drnm"], version=2)
        )
        assert entry_fingerprint(_point(), "drnm") != before

    def test_solver_change_invalidates(self, monkeypatch):
        from repro.circuit import dcop

        before = entry_fingerprint(_point(), "drnm")
        original = dcop.SolverOptions
        monkeypatch.setattr(
            dcop, "SolverOptions", lambda: original(max_iterations=77)
        )
        clear_fingerprint_cache()
        assert entry_fingerprint(_point(), "drnm") != before

    def test_tfet_device_change_spares_cmos_entries(self, monkeypatch):
        from repro.devices import library

        cmos_before = entry_fingerprint(_point(), "drnm")
        tfet_before = entry_fingerprint(_point(design="proposed"), "drnm")

        class _Scaled:
            def __init__(self, inner):
                self._inner = inner

            def current_density(self, vgs, vds):
                return 1.01 * self._inner.current_density(vgs, vds)

        original = library.tfet_device
        monkeypatch.setattr(library, "tfet_device", lambda: _Scaled(original()))
        clear_fingerprint_cache()
        assert entry_fingerprint(_point(design="proposed"), "drnm") != tfet_before
        assert entry_fingerprint(_point(), "drnm") == cmos_before


def _record(entry, fp, value=1.0, status="ok"):
    return CharStore.entry_record(entry, fp, value=value, status=status)


def _tiny_spec():
    return CharSpec(
        name="tiny", designs=("cmos",), vdds=(0.6, 0.8),
        metrics=("hold_power", "drnm"),
    )


class TestStore:
    def test_append_and_reload(self, tmp_path):
        store = CharStore(tmp_path)
        spec = _tiny_spec()
        entries = spec.entries()
        fps = [entry_fingerprint(e.point, e.metric) for e in entries]
        store.append([_record(e, fp, value=i) for i, (e, fp) in
                      enumerate(zip(entries, fps))])
        reloaded = CharStore(tmp_path).load_index()
        assert set(reloaded) == set(fps)
        assert store.value(entries[0].point, entries[0].metric) == 0.0

    def test_last_wins_on_duplicate_fingerprint(self, tmp_path):
        store = CharStore(tmp_path)
        entry = _tiny_spec().entries()[0]
        fp = entry_fingerprint(entry.point, entry.metric)
        store.append([_record(entry, fp, value=1.0)])
        store.append([_record(entry, fp, value=2.0)])
        assert store.load_index()[fp]["value"] == 2.0

    def test_failed_entries_do_not_serve_values(self, tmp_path):
        store = CharStore(tmp_path)
        entry = _tiny_spec().entries()[0]
        fp = entry_fingerprint(entry.point, entry.metric)
        store.append([_record(entry, fp, value=None, status="failed")])
        assert store.value(entry.point, entry.metric) is None

    def test_torn_tail_tolerated(self, tmp_path):
        store = CharStore(tmp_path)
        entries = _tiny_spec().entries()
        fps = [entry_fingerprint(e.point, e.metric) for e in entries]
        store.append([_record(e, fp) for e, fp in zip(entries[:2], fps[:2])])
        with store.index_path.open("a") as handle:
            handle.write('{"fp": "torn')  # kill mid-append
        assert set(CharStore(tmp_path).load_index()) == set(fps[:2])

    def test_foreign_schema_rejected(self, tmp_path):
        path = tmp_path / "index.jsonl"
        path.write_text(json.dumps({"schema": "something.else/v9"}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            CharStore(tmp_path).load_index()

    def test_infinity_values_round_trip(self, tmp_path):
        # inf is data (an unwritable cell's wl_crit), and the index uses
        # the Python JSON dialect that keeps it a float.
        store = CharStore(tmp_path)
        spec = CharSpec(name="t", designs=("cmos",), vdds=(0.8,),
                        metrics=("wl_crit",))
        entry = spec.entries()[0]
        fp = entry_fingerprint(entry.point, entry.metric)
        store.append([_record(entry, fp, value=float("inf"))])
        assert CharStore(tmp_path).value(entry.point, entry.metric) == float("inf")

    def test_status_counts_present_failed_and_stale(self, tmp_path):
        store = CharStore(tmp_path)
        spec = _tiny_spec()
        entries = spec.entries()
        fps = [entry_fingerprint(e.point, e.metric) for e in entries]
        records = [
            _record(entries[0], fps[0], value=1.0),
            _record(entries[1], fps[1], value=None, status="failed"),
            # Same coordinates as entries[2] but a superseded fingerprint:
            # an entry computed under an older solver/device configuration.
            _record(entries[2], "0" * 64, value=3.0),
        ]
        store.append(records)
        status = store.status(spec)
        assert (status.total, status.present, status.failed, status.stale) == (
            4, 1, 1, 1,
        )
        assert status.missing == 3
        assert "stale" in status.summary()

    def test_payload_staleness_checks_every_entry(self, tmp_path, monkeypatch):
        # Regression: fingerprints are per-technology, so a staleness
        # check that samples only the first entry misses a TFET
        # recalibration on a mixed spec whose first design is CMOS.
        from repro.char.query import CharGrid, CharQueryError, _payload_stale
        from repro.devices import library

        spec = CharSpec(
            name="mixed", designs=("cmos", "proposed"), vdds=(0.8,),
            metrics=("drnm",),
        )
        store = CharStore(tmp_path)
        store.append([
            _record(e, entry_fingerprint(e.point, e.metric), value=0.1)
            for e in spec.entries()
        ])
        path = store.compile_grid(spec)
        assert not _payload_stale(path, spec)

        class _Scaled:
            def __init__(self, inner):
                self._inner = inner

            def current_density(self, vgs, vds):
                return 1.01 * self._inner.current_density(vgs, vds)

        original = library.tfet_device
        monkeypatch.setattr(library, "tfet_device", lambda: _Scaled(original()))
        clear_fingerprint_cache()
        assert _payload_stale(path, spec)
        # from_store recompiles: the CMOS entry still serves, the TFET
        # entry is now uncharacterized instead of silently stale.
        grid = CharGrid.from_store(store, spec)
        assert grid.query("drnm", design="cmos", vdd=0.8).method == "exact"
        with pytest.raises(CharQueryError, match="incomplete"):
            grid.query("drnm", design="proposed", vdd=0.8)

    def test_compile_grid_payload(self, tmp_path):
        import numpy as np

        store = CharStore(tmp_path)
        spec = _tiny_spec()
        entries = spec.entries()
        fps = [entry_fingerprint(e.point, e.metric) for e in entries]
        # Leave the last entry missing.
        store.append([_record(e, fp, value=i) for i, (e, fp) in
                      enumerate(zip(entries[:-1], fps[:-1]))])
        path = store.compile_grid(spec)
        with np.load(path) as data:
            spec_json = json.loads(str(data["spec_json"]))
            assert spec_json == spec.to_json()
            assert data["mask_hold_power"].sum() == 2
            assert data["mask_drnm"].sum() == 1
            assert np.isnan(data["value_drnm"]).sum() == 1
            # Every cell carries its fingerprint even when unfilled.
            assert (data["fp_drnm"] != "").all()
