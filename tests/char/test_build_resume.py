"""Build incrementality, kill/resume, failure handling, invalidation.

These tests simulate real (tiny) grids — the CMOS baseline's
hold-power/DRNM points are the cheapest metrics in the suite."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.char import (
    CharSpec,
    CharStore,
    build_grid,
    clear_fingerprint_cache,
    plan_build,
)
from repro.char.metrics import METRICS


@pytest.fixture(autouse=True)
def _fresh_fingerprints():
    clear_fingerprint_cache()
    yield
    clear_fingerprint_cache()


def _spec(metrics=("hold_power",), vdds=(0.6, 0.7, 0.8, 0.9)):
    return CharSpec(name="build_t", designs=("cmos",), vdds=vdds, metrics=metrics)


def test_second_identical_build_computes_nothing(tmp_path):
    store = CharStore(tmp_path)
    spec = _spec()
    first = build_grid(spec, store)
    assert (first.computed, first.reused, first.failed) == (4, 0, 0)

    second = build_grid(spec, store)
    assert (second.computed, second.reused) == (0, 4)
    assert "0 simulated" in second.summary()


def test_extending_the_grid_computes_only_new_points(tmp_path):
    store = CharStore(tmp_path)
    build_grid(_spec(vdds=(0.6, 0.8)), store)
    report = build_grid(_spec(vdds=(0.6, 0.7, 0.8)), store)
    assert (report.computed, report.reused) == (1, 2)


def test_killed_build_resumes_from_checkpoint(tmp_path, monkeypatch):
    from repro.char import metrics as metrics_module

    store = CharStore(tmp_path)
    spec = _spec()
    real = metrics_module.evaluate_metric
    calls = {"n": 0}

    def dying(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] > 2:
            raise KeyboardInterrupt  # the kill arrives mid-batch
        return real(*args, **kwargs)

    monkeypatch.setattr(metrics_module, "evaluate_metric", dying)
    with pytest.raises(KeyboardInterrupt):
        build_grid(spec, store)
    # Nothing was committed to the index, but the engine checkpoint
    # holds the two finished entries.
    assert store.load_index() == {}
    assert store.checkpoint_path(spec).exists()

    monkeypatch.setattr(metrics_module, "evaluate_metric", real)
    report = build_grid(spec, store)
    assert report.computed == 4
    assert report.resumed == 2  # replayed, not re-simulated
    assert report.failed == 0
    assert not store.checkpoint_path(spec).exists()  # consumed after commit
    assert store.status(spec).present == 4


def test_checkpoint_from_old_configuration_is_discarded(tmp_path, monkeypatch):
    # Regression: a checkpoint left by a killed build holds values
    # computed under the solver/device configuration of THAT build.  If
    # the configuration changes before the rerun, replaying it would
    # record old-configuration values under the new fingerprints.
    from repro.char import metrics as metrics_module
    from repro.circuit import dcop

    store = CharStore(tmp_path)
    spec = _spec()
    real = metrics_module.evaluate_metric
    calls = {"n": 0}

    def dying(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] > 2:
            raise KeyboardInterrupt
        return real(*args, **kwargs)

    monkeypatch.setattr(metrics_module, "evaluate_metric", dying)
    with pytest.raises(KeyboardInterrupt):
        build_grid(spec, store)
    assert store.checkpoint_path(spec).exists()

    # The solver defaults move before the rerun.
    monkeypatch.setattr(metrics_module, "evaluate_metric", real)
    original_options = dcop.SolverOptions
    monkeypatch.setattr(
        dcop, "SolverOptions", lambda: original_options(max_iterations=77)
    )
    clear_fingerprint_cache()
    report = build_grid(spec, store)
    assert report.computed == 4
    assert report.resumed == 0  # checkpoint discarded, not replayed
    assert report.failed == 0
    assert store.status(spec).present == 4


def test_failures_are_recorded_and_retried(tmp_path, monkeypatch):
    from repro.char import metrics as metrics_module

    store = CharStore(tmp_path)
    spec = _spec(vdds=(0.6, 0.8))
    real = metrics_module.evaluate_metric

    def failing(metric, design, vdd, **kwargs):
        if vdd == 0.8:
            raise RuntimeError("synthetic solver failure")
        return real(metric, design, vdd, **kwargs)

    monkeypatch.setattr(metrics_module, "evaluate_metric", failing)
    report = build_grid(spec, store, retries=0)
    assert (report.computed, report.failed) == (2, 1)
    assert report.failures[0]["error_type"] == "RuntimeError"
    assert "failed" in report.summary()
    status = store.status(spec)
    assert (status.present, status.failed) == (1, 1)

    # The recorded failure is re-attempted — and now succeeds.
    monkeypatch.setattr(metrics_module, "evaluate_metric", real)
    retry = build_grid(spec, store)
    assert (retry.computed, retry.reused, retry.failed) == (1, 1, 0)
    assert store.status(spec).present == 2


def test_metric_version_bump_invalidates_exactly_that_metric(tmp_path, monkeypatch):
    store = CharStore(tmp_path)
    spec = _spec(metrics=("hold_power", "drnm"), vdds=(0.6, 0.8))
    build_grid(spec, store)
    assert plan_build(spec, store) == ([], 4)

    monkeypatch.setitem(METRICS, "drnm", replace(METRICS["drnm"], version=2))
    pending, reused = plan_build(spec, store)
    assert reused == 2
    assert {e.metric for e in pending} == {"drnm"}
    status = store.status(spec)
    assert (status.present, status.stale) == (2, 2)


def test_build_report_counts_in_telemetry(tmp_path):
    from repro.telemetry import core as telemetry

    store = CharStore(tmp_path)
    spec = _spec(vdds=(0.6, 0.8))
    session = telemetry.enable()
    try:
        build_grid(spec, store)
        build_grid(spec, store)
    finally:
        telemetry.disable()
    assert session.counters["char.store.misses"] == 2
    assert session.counters["char.store.hits"] == 2
    assert session.counters["char.points_computed"] == 2
    assert session.counters["char.store.appends"] == 2
