"""Experiments served from a pre-built store, and the `repro char` CLI.

The acceptance check: fig11 and the static-power table produce
bit-identical rows whether they simulate directly or read a store
built from the matching spec — the spec's measurement policies ARE the
experiments' measurement policies."""

from __future__ import annotations

import json

import pytest

from repro.char import CharSpec, CharStore, build_grid
from repro.cli import main
from repro.experiments import fig11_delay, table_static_power
from repro.telemetry import core as telemetry


@pytest.fixture(scope="module")
def serving_store(tmp_path_factory):
    """One 0.8 V slice of the nominal grid: enough to serve a fig11 row
    and a static-power row."""
    spec = CharSpec(
        name="serve",
        designs=("cmos", "proposed", "asym", "7t", "outward_n"),
        vdds=(0.8,),
        metrics=("hold_power", "read_delay", "write_delay"),
    )
    store = CharStore(tmp_path_factory.mktemp("serve_store"))
    report = build_grid(spec, store)
    assert report.failed == 0
    return store, spec


class TestExperimentServing:
    def test_fig11_row_identical_from_store(self, serving_store):
        store, _ = serving_store
        direct = fig11_delay.run(vdds=(0.8,))
        session = telemetry.enable()
        try:
            served = fig11_delay.run(vdds=(0.8,), char_store=store)
        finally:
            telemetry.disable()
        assert served.rows == direct.rows
        assert session.counters["char.serve.hits"] == 8
        assert "char.serve.misses" not in session.counters

    def test_static_power_row_identical_from_store(self, serving_store):
        store, _ = serving_store
        direct = table_static_power.run(vdds=(0.8,))
        session = telemetry.enable()
        try:
            served = table_static_power.run(vdds=(0.8,), char_store=store)
        finally:
            telemetry.disable()
        assert served.rows == direct.rows
        assert session.counters["char.serve.hits"] == 5

    def test_store_accepts_directory_path(self, serving_store):
        store, _ = serving_store
        served = table_static_power.run(vdds=(0.8,), char_store=str(store.directory))
        assert served.rows == table_static_power.run(vdds=(0.8,)).rows

    def test_missing_points_fall_back_to_simulation(self, serving_store):
        store, _ = serving_store
        # 0.7 V was never characterized: every lookup misses, the
        # experiment still completes by simulating.
        session = telemetry.enable()
        try:
            served = table_static_power.run(vdds=(0.7,), char_store=store)
        finally:
            telemetry.disable()
        assert len(served.rows) == 1
        assert session.counters["char.serve.misses"] == 5


class TestCharCli:
    @pytest.fixture()
    def spec_file(self, tmp_path):
        spec = CharSpec(
            name="clitest", designs=("cmos",), vdds=(0.6, 0.8),
            metrics=("hold_power",),
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_json()))
        return str(path)

    def test_build_status_query_export(self, tmp_path, spec_file, capsys):
        store = str(tmp_path / "store")
        assert main(["char", "build", "--spec", spec_file, "--store", store,
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "2 simulated" in out
        assert "2 misses" in out

        assert main(["char", "build", "--spec", spec_file, "--store", store]) == 0
        assert "0 simulated" in capsys.readouterr().out

        assert main(["char", "status", "--spec", spec_file, "--store", store]) == 0
        assert "2/2 entries present" in capsys.readouterr().out

        assert main(["char", "query", "hold_power", "--design", "cmos",
                     "--vdd", "0.7", "--spec", spec_file, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "hold_power" in out and "nearest simulated point" in out

        assert main(["char", "query", "hold_power", "--design", "cmos",
                     "--vdd", "0.8", "--json", "--spec", spec_file,
                     "--store", store]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "exact"

        assert main(["char", "export", "--spec", spec_file, "--store", store]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("design,corner,beta,vdd,metric")
        assert len(out.strip().splitlines()) == 3  # header + 2 entries

        out_file = tmp_path / "export.json"
        assert main(["char", "export", "--format", "json", "--out",
                     str(out_file), "--spec", spec_file, "--store", store]) == 0
        exported = json.loads(out_file.read_text())
        assert exported["spec"]["name"] == "clitest"
        assert len(exported["rows"]) == 2

    def test_query_json_encodes_infinite_values(self, tmp_path, capsys):
        # An unwritable cell's wl_crit is inf — data, not an error; the
        # JSON output must encode it instead of crashing on
        # allow_nan=False.
        from repro.char import entry_fingerprint

        spec = CharSpec(
            name="infq", designs=("cmos",), vdds=(0.6, 0.8),
            metrics=("wl_crit",),
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_json()))
        store = CharStore(tmp_path / "store")
        store.append([
            CharStore.entry_record(
                e, entry_fingerprint(e.point, e.metric),
                value=float("inf") if e.point.vdd == 0.8 else 0.5,
            )
            for e in spec.entries()
        ])
        assert main(["char", "query", "wl_crit", "--design", "cmos",
                     "--vdd", "0.8", "--json", "--spec", str(spec_path),
                     "--store", str(store.directory)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["value"] == {"__float__": "Infinity"}
        assert payload["nearest"]["value"] == {"__float__": "Infinity"}

    def test_unknown_spec_is_a_clean_error(self, capsys):
        assert main(["char", "status", "--spec", "no_such_spec"]) == 2
        assert "unknown spec" in capsys.readouterr().err

    def test_query_out_of_range_is_a_clean_error(self, tmp_path, spec_file, capsys):
        store = str(tmp_path / "store")
        assert main(["char", "build", "--spec", spec_file, "--store", store]) == 0
        capsys.readouterr()
        assert main(["char", "query", "hold_power", "--design", "cmos",
                     "--vdd", "1.5", "--spec", spec_file, "--store", store]) == 2
        assert "outside" in capsys.readouterr().err

    def test_experiment_char_store_flag_forwarded(self, tmp_path, capsys):
        # An experiment without a servable grid notes and ignores the flag.
        assert main(["experiment", "tab_area", "--char-store",
                     str(tmp_path)]) == 0
        err = capsys.readouterr().err
        assert "char-store" in err and "ignored" in err
