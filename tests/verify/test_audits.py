"""Audit behaviour: silent on correct results, loud on injected bugs.

The green-path tests run real solves under a fully enabled session and
require zero violations; the red-path tests hand each audit a
deliberately corrupted result (a stale charge cache, a perturbed
residual, a tampered coefficient block) and require the matching
:class:`VerificationError` kind.  Detection tests are what make the
subsystem trustworthy: an audit that never fires proves nothing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.dcop import solve_dc
from repro.circuit.mna import MnaSystem, TransientState
from repro.circuit.netlist import Circuit
from repro.circuit.transient import simulate_transient
from repro.circuit.waveforms import Pulse
from repro.devices.tables import CubicTable2D, UniformGrid
from repro.verify import (
    VerificationError,
    VerifyOptions,
    VerifySession,
    audit_newton_solution,
    audit_table,
    audit_transient_step,
    enabled,
)


@pytest.fixture
def inverter(tfet):
    c = Circuit("inv")
    c.add_voltage_source("vdd", "vdd", "0", 0.7)
    c.add_voltage_source(
        "vin", "in", "0", Pulse(0.0, 0.7, t_start=5e-11, width=1.5e-10, t_edge=2e-11)
    )
    c.add_transistor("mp", "out", "in", "vdd", tfet, polarity="p", width_um=0.2)
    c.add_transistor("mn", "out", "in", "0", tfet, polarity="n", width_um=0.1)
    c.add_capacitor("out", "0", 1e-16, name="cl")
    return c


ALL_AUDITS = VerifyOptions(table_interval=8, jacobian_audit=True, jacobian_interval=4)


class TestGreenPath:
    def test_full_solve_chain_is_clean(self, inverter):
        with enabled(ALL_AUDITS) as session:
            solve_dc(inverter)
            simulate_transient(inverter, 3e-10)
        assert session.violation_count == 0
        for kind in ("kcl", "equivalence", "charge", "table", "jacobian"):
            assert session.audits.get(kind, 0) > 0, f"{kind} audit never ran"

    def test_disabled_session_audits_nothing(self, inverter):
        with enabled() as outer:
            pass  # session closed again: nothing active below
        solve_dc(inverter)
        assert outer.audits == {}

    def test_correct_transient_step_passes(self, inverter):
        session = VerifySession()
        system = MnaSystem(inverter)
        x = solve_dc(inverter).x
        q = system.capacitor_charges(x)
        state = TransientState(1e-12, q.copy(), np.zeros_like(q), "backward_euler")
        audit_transient_step(session, system, x, x, state, q, np.zeros_like(q))
        assert session.violation_count == 0


class TestDetection:
    def test_non_solution_trips_kcl(self, inverter):
        session = VerifySession()
        system = MnaSystem(inverter)
        x_bad = solve_dc(inverter).x + 0.05
        with pytest.raises(VerificationError) as err:
            audit_newton_solution(
                session, system, x_bad, 0.0, gmin=1e-12, transient=None,
                clamps=(), source_scale=1.0, residual_tolerance=1e-10,
            )
        assert err.value.kind == "kcl"
        assert err.value.detail["max_residual"] > err.value.detail["limit"]

    def test_perturbed_optimized_residual_trips_equivalence(self, inverter):
        # The accepted point satisfies reference KCL, but the "optimized"
        # assembler disagrees with the reference — an assembly bug, not
        # an acceptance bug, and the audit must say which.
        system = MnaSystem(inverter)
        x = solve_dc(inverter).x

        class CorruptedAssembly:
            circuit = inverter
            _topology = system._topology

            def assemble_residual(self, *args, **kwargs):
                f = system.assemble_residual(*args, **kwargs).copy()
                f[0] += 1e-6
                return f

        session = VerifySession()
        with pytest.raises(VerificationError) as err:
            audit_newton_solution(
                session, CorruptedAssembly(), x, 0.0, gmin=1e-12, transient=None,
                clamps=(), source_scale=1.0, residual_tolerance=1e-10,
            )
        assert err.value.kind == "equivalence"

    def test_stale_previous_charges_trip_charge_audit(self, inverter):
        # The classic stale-cache bug: the integrator's stored previous
        # charges no longer match q(x_prev), silently injecting charge.
        session = VerifySession()
        system = MnaSystem(inverter)
        x = solve_dc(inverter).x
        q = system.capacitor_charges(x)
        stale = q + 1e-18
        state = TransientState(1e-12, stale, np.zeros_like(q), "backward_euler")
        with pytest.raises(VerificationError) as err:
            audit_transient_step(session, system, x, x, state, q, np.zeros_like(q))
        assert err.value.kind == "charge"

    def test_wrong_new_charges_trip_charge_audit(self, inverter):
        session = VerifySession()
        system = MnaSystem(inverter)
        x = solve_dc(inverter).x
        q = system.capacitor_charges(x)
        state = TransientState(1e-12, q.copy(), np.zeros_like(q), "backward_euler")
        with pytest.raises(VerificationError) as err:
            audit_transient_step(
                session, system, x, x, state, q + 1e-18, np.zeros_like(q)
            )
        assert err.value.kind == "charge"

    def test_tampered_coefficients_trip_table_audit(self):
        grid = UniformGrid(0.0, 1.0, 8)
        xs, ys = np.meshgrid(grid.points(), grid.points(), indexing="ij")
        table = CubicTable2D(grid, grid, np.sin(xs) * np.cos(2.0 * ys))
        x = np.array([0.37, 0.61])
        y = np.array([0.53, 0.12])
        session = VerifySession()
        audit_table(session, table, x, y)  # pristine table: clean
        assert session.violation_count == 0
        table._coeffs[:, 0, 0] += 1e-5
        with pytest.raises(VerificationError) as err:
            audit_table(session, table, x, y)
        assert err.value.kind == "table"


class TestSessionMechanics:
    def test_collection_mode_accumulates_without_raising(self, inverter):
        session = VerifySession(VerifyOptions(raise_on_violation=False))
        system = MnaSystem(inverter)
        x = solve_dc(inverter).x
        q = system.capacitor_charges(x)
        state = TransientState(1e-12, q + 1e-18, np.zeros_like(q), "backward_euler")
        audit_transient_step(session, system, x, x, state, q, np.zeros_like(q))
        assert session.violation_count >= 1
        assert session.violations[0]["kind"] == "charge"
        snap = session.snapshot()
        assert snap["violation_count"] == session.violation_count

    def test_max_violations_bounds_the_log_not_the_count(self):
        session = VerifySession(
            VerifyOptions(raise_on_violation=False, max_violations=3)
        )
        for k in range(10):
            session.record_violation("kcl", f"violation {k}")
        assert session.violation_count == 10
        assert len(session.violations) == 3

    @pytest.mark.parametrize(
        "bad",
        [
            {"kcl_margin": 0.5},
            {"table_interval": 0},
            {"jacobian_interval": 0},
            {"charge_tolerance": -1.0},
            {"jacobian_step": 0.0},
        ],
    )
    def test_invalid_options_rejected(self, bad):
        with pytest.raises(ValueError):
            VerifyOptions(**bad)

    def test_reference_cache_tracks_recompilation(self, inverter, tfet):
        session = VerifySession()
        system = MnaSystem(inverter)
        first = session.reference_for(system)
        assert session.reference_for(system) is first
        inverter.add_capacitor("in", "0", 1e-17, name="cg")
        system.invalidate_caches()
        assert session.reference_for(system) is not first
