"""Differential fuzzer: determinism, clean batches, shrinking, artifacts.

The small batch sizes here keep the suite fast; CI runs the full
200-deck batch through ``scripts/verify_fuzz.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.verify import fuzz


def _rng(root_seed: int, index: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence([root_seed, index]))


GOOD_DECK = """* handcrafted inverter
Vvdd vdd 0 DC 0.7
Vin in 0 PULSE(0 0.7 5e-11 1e-10 2e-11)
M0 out in vdd ptfet W=2e-07
M1 out in 0 ntfet W=1e-07
C0 out 0 1e-16
.end
"""

BROKEN_DECK = """* one bad card among good ones
Vvdd vdd 0 DC 0.7
R0 vdd n1 1e4
R1 n1 0 notanumber
C0 n1 0 1e-16
.end
"""


class TestDeterminism:
    def test_same_seed_same_deck(self):
        decks = {fuzz.generate_deck(_rng(3, 17)) for _ in range(3)}
        assert len(decks) == 1

    def test_different_indices_differ(self):
        assert fuzz.generate_deck(_rng(3, 0)) != fuzz.generate_deck(_rng(3, 1))

    def test_check_deck_deterministic(self):
        a = fuzz.check_deck(GOOD_DECK)
        b = fuzz.check_deck(GOOD_DECK)
        assert a.failure == b.failure
        assert a.audits == b.audits
        assert a.nonconverged == b.nonconverged


class TestCheckDeck:
    def test_handcrafted_inverter_is_clean_and_audited(self):
        result = fuzz.check_deck(GOOD_DECK)
        assert result.failure is None
        assert result.audits.get("kcl", 0) > 0
        assert result.audits.get("charge", 0) > 0

    def test_unparseable_deck_reports_parse_failure(self):
        result = fuzz.check_deck(BROKEN_DECK)
        assert result.failure is not None
        assert result.failure["kind"] == "parse"


class TestShrinking:
    def test_shrinks_to_the_offending_card(self):
        minimized = fuzz.shrink_deck(BROKEN_DECK, "parse")
        lines = [
            line
            for line in minimized.strip().splitlines()
            if line and not line.startswith("*") and line.lower() != ".end"
        ]
        assert lines == ["R1 n1 0 notanumber"]
        assert fuzz.check_deck(minimized).failure["kind"] == "parse"


class TestRunFuzz:
    def test_small_batch_is_clean(self):
        report = fuzz.run_fuzz(4, root_seed=7)
        assert report.ok, [f.message for f in report.failures]
        assert report.audits.get("kcl", 0) > 0

    def test_failure_dumps_minimized_reproducer(self, tmp_path, monkeypatch):
        monkeypatch.setattr(fuzz, "generate_deck", lambda rng: BROKEN_DECK)
        seen = []
        report = fuzz.run_fuzz(
            1, root_seed=0, out_dir=tmp_path,
            on_progress=lambda done, total, failed: seen.append((done, failed)),
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.kind == "parse"
        assert failure.path is not None
        text = (tmp_path / "fuzz_00000_parse.sp").read_text()
        assert "notanumber" in text
        assert text.startswith("* minimal reproducer")
        assert seen == [(1, 1)]
