"""Engine sample-auditing: deterministic selection, counters, failures.

``verify_fraction`` turns a fraction of batch tasks into audited tasks
(every Newton solution / transient step inside them re-checked against
the references).  These tests pin the selection's determinism, the
counter plumbing back through ``TaskOutcome``, and the policy that a
verification violation is a structured non-retryable failure.
"""

from __future__ import annotations

import pytest

from repro.circuit.dcop import solve_dc
from repro.circuit.netlist import Circuit
from repro.engine.jobs import Task, derive_seed
from repro.engine.scheduler import EngineConfig, run_tasks
from repro.engine.worker import execute_task, verify_selected
from repro.verify import VerifyOptions, active


def _solve_divider(payload, ctx):
    c = Circuit("divider")
    c.add_voltage_source("vs", "top", "0", float(payload))
    c.add_resistor("top", "mid", 1e4)
    c.add_resistor("mid", "0", 1e4)
    op = solve_dc(c)
    return float(op.x[c.index_of("mid")])


def _trip_verification(payload, ctx):
    session = active()
    assert session is not None, "task expected to run under a verify session"
    session.record_violation("kcl", "synthetic violation for the retry-policy test")
    return 0.0


def _task(fn, payload, index=0):
    return Task(index=index, fn=fn, payload=payload, seed=derive_seed(0, index))


class TestSelection:
    def test_extremes(self):
        assert not verify_selected(123, 0.0)
        assert verify_selected(123, 1.0)

    def test_deterministic_per_seed(self):
        for seed in (0, 1, 99, 2**40):
            assert verify_selected(seed, 0.5) == verify_selected(seed, 0.5)

    def test_fraction_is_roughly_honoured(self):
        picks = sum(verify_selected(derive_seed(7, i), 0.3) for i in range(400))
        assert 70 <= picks <= 170  # 0.3 +- generous slack on 400 draws

    def test_monotone_in_fraction(self):
        # A task audited at some fraction stays audited at any larger
        # fraction (the draw is compared against the threshold).
        for i in range(50):
            seed = derive_seed(3, i)
            if verify_selected(seed, 0.2):
                assert verify_selected(seed, 0.8)


class TestExecuteTask:
    def test_audited_task_reports_audit_counters(self):
        out = execute_task(_task(_solve_divider, 0.8), verify_fraction=1.0)
        assert out.ok
        assert out.value == pytest.approx(0.4)
        assert out.counters["verify.audited_tasks"] == 1
        assert out.counters["verify.audit.kcl"] > 0

    def test_unaudited_task_has_no_verify_counters(self):
        out = execute_task(_task(_solve_divider, 0.8), verify_fraction=0.0)
        assert out.ok
        assert not any(k.startswith("verify.") for k in out.counters)

    def test_violation_is_structured_failure_and_never_retried(self):
        out = execute_task(_task(_trip_verification, None), retries=5,
                           verify_fraction=1.0)
        assert not out.ok
        assert out.attempts == 1
        assert out.error_type == "VerificationError"
        assert "synthetic violation" in out.error
        # The session's progress still rides back on the failed outcome.
        assert out.counters["verify.audited_tasks"] == 1

    def test_session_is_scoped_to_the_task(self):
        execute_task(_task(_trip_verification, None), verify_fraction=1.0)
        assert active() is None


class TestBatchWiring:
    def test_report_aggregates_audit_counters(self):
        tasks = [
            Task(index=i, fn=_solve_divider, payload=0.5 + 0.01 * i,
                 seed=derive_seed(11, i))
            for i in range(8)
        ]
        report = run_tasks(tasks, EngineConfig(jobs=1, verify_fraction=1.0))
        assert report.failed_count == 0
        assert report.counters["verify.audited_tasks"] == 8
        assert report.counters["verify.audit.kcl"] >= 8

    def test_fraction_selects_the_predicted_subset(self):
        tasks = [
            Task(index=i, fn=_solve_divider, payload=0.6, seed=derive_seed(5, i))
            for i in range(16)
        ]
        expected = sum(verify_selected(t.seed, 0.5) for t in tasks)
        report = run_tasks(tasks, EngineConfig(jobs=1, verify_fraction=0.5))
        assert report.counters.get("verify.audited_tasks", 0) == expected

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(verify_fraction=1.5)
        with pytest.raises(ValueError):
            EngineConfig(verify_fraction=-0.1)

    def test_custom_options_reach_the_session(self):
        # Collection mode: the violation is recorded, not raised, so the
        # task succeeds while the counters expose what the audits saw.
        def tripping(payload, ctx):
            session = active()
            session.record_violation("charge", "collected, not raised")
            return 1.0

        out = execute_task(
            Task(index=0, fn=tripping, payload=None, seed=derive_seed(0, 0)),
            verify_fraction=1.0,
            verify_options=VerifyOptions(raise_on_violation=False),
        )
        assert out.ok
        assert out.value == 1.0
