"""Shared fixtures: calibrated devices are session-scoped (table
generation and calibration are deterministic and cached)."""

from __future__ import annotations

import pytest

from repro.devices.library import (
    nmos_device,
    nominal_tfet_physics,
    pmos_device,
    tfet_device,
)


@pytest.fixture(scope="session")
def tfet_physics():
    """The calibrated nominal TFET physics model."""
    return nominal_tfet_physics()


@pytest.fixture(scope="session")
def tfet():
    """The nominal table-backed TFET device card."""
    return tfet_device()


@pytest.fixture(scope="session")
def nmos():
    return nmos_device()


@pytest.fixture(scope="session")
def pmos():
    return pmos_device()
