"""Tests for run manifests and the diag report."""

from __future__ import annotations

import json
import math

from repro.experiments.common import ExperimentResult
from repro.telemetry.core import TelemetrySession
from repro.telemetry.diag import format_diag_report, load_manifests
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    manifest_path,
    result_checksum,
    write_manifest,
)


def make_result():
    result = ExperimentResult("figX", "demo", ["beta", "wl (ps)"])
    result.add_row(0.6, 14.0)
    result.add_row(1.0, math.inf)
    result.notes.append("shape note")
    return result


class TestChecksum:
    def test_deterministic(self):
        assert result_checksum(make_result()) == result_checksum(make_result())

    def test_sensitive_to_values(self):
        a = make_result()
        b = make_result()
        b.rows[0][1] = 15.0
        assert result_checksum(a) != result_checksum(b)

    def test_handles_nonfinite_rows(self):
        result = make_result()
        result.add_row(2.0, float("nan"))
        assert len(result_checksum(result)) == 64


class TestManifest:
    def build(self):
        tel = TelemetrySession()
        tel.count("dcop.solves", 3)
        tel.count("dcop.converged.warm_start", 2)
        tel.count("dcop.converged.gmin_stepping", 1)
        tel.count("newton.iterations", 40)
        tel.count("transient.steps_accepted", 100)
        tel.count("transient.rejected_dv_limit", 5)
        return build_manifest("figX", "demo title", make_result(), tel, 1.25)

    def test_schema_and_shape(self):
        manifest = self.build()
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["experiment_id"] == "figX"
        assert manifest["wall_time_s"] == 1.25
        assert manifest["result"]["rows"] == 2
        assert manifest["result"]["columns"] == ["beta", "wl (ps)"]
        assert manifest["result"]["notes"] == ["shape note"]
        assert manifest["telemetry"]["counters"]["dcop.solves"] == 3

    def test_write_and_load_round_trip(self, tmp_path):
        manifest = self.build()
        path = write_manifest(manifest, tmp_path / "deep" / "dir")
        assert path == manifest_path(tmp_path / "deep" / "dir", "figX")
        loaded = load_manifests([path.parent])
        assert len(loaded) == 1
        assert loaded[0]["experiment_id"] == "figX"

    def test_manifest_is_valid_json(self, tmp_path):
        path = write_manifest(self.build(), tmp_path)
        json.loads(path.read_text())


class TestLoadManifests:
    def test_skips_non_manifest_json(self, tmp_path):
        (tmp_path / "fig02.json").write_text(json.dumps({"rows": []}))
        (tmp_path / "broken_manifest.json").write_text("{not json")
        tel = TelemetrySession()
        write_manifest(build_manifest("a", "t", make_result(), tel, 0.1), tmp_path)
        loaded = load_manifests([tmp_path])
        assert [m["experiment_id"] for m in loaded] == ["a"]

    def test_accepts_explicit_files_and_sorts(self, tmp_path):
        tel = TelemetrySession()
        p_b = write_manifest(build_manifest("b", "t", make_result(), tel, 0.1), tmp_path)
        p_a = write_manifest(build_manifest("a", "t", make_result(), tel, 0.1), tmp_path)
        loaded = load_manifests([p_b, p_a])
        assert [m["experiment_id"] for m in loaded] == ["a", "b"]

    def test_missing_path_ignored(self, tmp_path):
        assert load_manifests([tmp_path / "nope"]) == []


class TestDiagReport:
    def test_report_rows(self, tmp_path):
        tel = TelemetrySession()
        tel.count("dcop.solves", 7)
        tel.count("dcop.converged.gmin_stepping", 2)
        tel.count("newton.iterations", 99)
        tel.count("transient.steps_accepted", 50)
        tel.count("transient.rejected_newton", 3)
        tel.count("transient.rejected_dv_limit", 1)
        manifest = build_manifest("figX", "demo", make_result(), tel, 2.5)
        write_manifest(manifest, tmp_path)

        report = format_diag_report(load_manifests([tmp_path]))
        assert "figX" in report
        assert "2.50" in report
        assert "gmin:2" in report
        assert "50/4" in report  # accepted / (newton + dv rejections)
        assert "99" in report

    def test_empty_report_hint(self):
        report = format_diag_report([])
        assert "no run manifests" in report
        assert "--profile" in report


class TestDiagEngineSection:
    def engine_manifest(self, tmp_path):
        tel = TelemetrySession()
        tel.count("newton.jacobian_stamps", 60)
        tel.count("newton.jacobian_reuses", 40)
        tel.count("engine.retries", 3)
        tel.count("engine.convergence_errors", 5)
        tel.count("engine.tasks_total", 8)
        tel.count("engine.tasks_failed", 1)
        return build_manifest("figMC", "mc", make_result(), tel, 4.0)

    def test_engine_table_renders_when_counters_present(self, tmp_path):
        report = format_diag_report([self.engine_manifest(tmp_path)])
        assert "== engine diagnostics ==" in report
        assert "60/40" in report  # jacobian stamps/reuses
        assert "40%" in report  # reuse fraction
        assert "7/8" in report  # tasks ok/total

    def test_engine_section_absent_without_engine_counters(self):
        tel = TelemetrySession()
        tel.count("dcop.solves", 2)
        manifest = build_manifest("figX", "t", make_result(), tel, 1.0)
        report = format_diag_report([manifest])
        assert "== solver diagnostics ==" in report
        assert "engine diagnostics" not in report

    def test_mixed_manifests_only_engine_rows_listed(self, tmp_path):
        plain = build_manifest("figA", "t", make_result(), TelemetrySession(), 1.0)
        report = format_diag_report([plain, self.engine_manifest(tmp_path)])
        engine_section = report.split("== engine diagnostics ==")[1]
        assert "figMC" in engine_section
        assert "figA" not in engine_section


class TestDiagCharSection:
    def char_manifest(self):
        tel = TelemetrySession()
        tel.count("char.store.hits", 10)
        tel.count("char.store.misses", 6)
        tel.count("char.serve.hits", 4)
        tel.count("char.serve.misses", 1)
        tel.count("char.points_computed", 6)
        tel.count("char.points_failed", 2)
        return build_manifest("charGrid", "char", make_result(), tel, 3.0)

    def test_char_table_renders_when_counters_present(self):
        report = format_diag_report([self.char_manifest()])
        assert "== char diagnostics ==" in report
        assert "10/6" in report  # store hit/miss
        assert "4/1" in report  # serve hit/miss

    def test_char_section_absent_without_char_counters(self):
        tel = TelemetrySession()
        tel.count("dcop.solves", 2)
        manifest = build_manifest("figX", "t", make_result(), tel, 1.0)
        assert "char diagnostics" not in format_diag_report([manifest])

    def test_engine_and_char_sections_coexist(self, tmp_path):
        engine = TestDiagEngineSection().engine_manifest(tmp_path)
        report = format_diag_report([engine, self.char_manifest()])
        assert report.index("== solver diagnostics ==") < report.index(
            "== engine diagnostics =="
        ) < report.index("== char diagnostics ==")
