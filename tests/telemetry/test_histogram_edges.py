"""Edge-case tests for Histogram and the session span-record substrate.

Pins the corners the observability pipeline leans on: empty/single
snapshots, percentile extremes and clamping, the bounded sample
reservoir, deterministic span ids under a shared trace context, and
the span cap / atomic trace dump.
"""

from __future__ import annotations

import json

import pytest

from repro.telemetry.core import (
    Histogram,
    TelemetrySession,
    TraceContext,
    derive_span_id,
)


class TestHistogramEdges:
    def test_empty_snapshot(self):
        assert Histogram().snapshot() == {"count": 0, "total": 0.0}

    def test_empty_percentile_and_mean(self):
        hist = Histogram()
        assert hist.percentile(50.0) == 0.0
        assert hist.mean == 0.0

    def test_single_sample(self):
        hist = Histogram()
        hist.record(7.5)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == snap["max"] == snap["mean"] == 7.5
        assert snap["p50"] == snap["p90"] == 7.5
        assert hist.percentile(0.0) == hist.percentile(100.0) == 7.5

    def test_percentile_extremes_hit_min_and_max(self):
        hist = Histogram()
        for v in (3.0, 1.0, 4.0, 1.0, 5.0):
            hist.record(v)
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(100.0) == 5.0
        assert hist.percentile(50.0) == 3.0

    def test_out_of_range_q_clamped(self):
        hist = Histogram()
        for v in (1.0, 2.0, 3.0):
            hist.record(v)
        assert hist.percentile(-20.0) == 1.0
        assert hist.percentile(150.0) == 3.0

    def test_reservoir_bounded_while_exact_stats_keep_growing(self):
        hist = Histogram()
        n = 2_000
        for i in range(n):
            hist.record(float(i))
        assert hist.max_samples == 512
        assert len(hist.samples) == 512
        snap = hist.snapshot()
        assert snap["count"] == n
        assert snap["total"] == pytest.approx(n * (n - 1) / 2.0)
        assert snap["min"] == 0.0
        assert snap["max"] == float(n - 1)  # exact even once outside reservoir
        # percentiles estimate from the first-512 reservoir only
        assert snap["p90"] <= 512.0

    def test_interpolated_percentile(self):
        hist = Histogram()
        hist.record(0.0)
        hist.record(10.0)
        assert hist.percentile(50.0) == pytest.approx(5.0)
        assert hist.percentile(25.0) == pytest.approx(2.5)


class TestSpanRecords:
    def session(self):
        return TelemetrySession(
            trace=TraceContext(trace_id="0123456789abcdef", parent_span_id="root")
        )

    def record_spans(self, tel):
        with tel.span("dcop"):
            with tel.span("newton"):
                pass
        with tel.span("dcop"):
            pass

    def test_ids_deterministic_under_shared_context(self):
        a, b = self.session(), self.session()
        self.record_spans(a)
        self.record_spans(b)
        strip = lambda spans: [
            (s["id"], s["parent"], s["name"]) for s in spans
        ]
        assert strip(a.spans) == strip(b.spans)
        # repeated same-name spans get distinct ids from the sequence
        ids = {s["id"] for s in a.spans}
        assert len(ids) == 3

    def test_top_level_spans_parent_to_context(self):
        tel = self.session()
        self.record_spans(tel)
        dcop_spans = [s for s in tel.spans if s["name"] == "dcop"]
        assert all(s["parent"] == "root" for s in dcop_spans)
        newton = next(s for s in tel.spans if s["name"] == "newton")
        assert newton["parent"] in {s["id"] for s in dcop_spans}

    def test_derive_span_id_is_pure_and_position_sensitive(self):
        same = derive_span_id("t", "p", "n", 1)
        assert derive_span_id("t", "p", "n", 1) == same
        assert len(same) == 16
        assert derive_span_id("t", "p", "n", 2) != same
        assert derive_span_id("t", "q", "n", 1) != same
        assert derive_span_id("u", "p", "n", 1) != same

    def test_span_cap_counts_drops(self):
        tel = TelemetrySession(max_spans=2)
        for _ in range(5):
            with tel.span("s"):
                pass
        assert len(tel.spans) == 2
        assert tel.dropped_spans == 3

    def test_write_trace_atomic_and_complete(self, tmp_path):
        tel = self.session()
        self.record_spans(tel)
        path = tel.write_trace(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["trace_id"] == "0123456789abcdef"
        assert len(payload["spans"]) == 3
        assert payload["dropped_spans"] == 0
        assert not list(tmp_path.glob("*.tmp"))
