"""Tests for the telemetry primitives and global session management."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import core as telemetry
from repro.telemetry.core import Histogram, TelemetrySession


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test starts and ends with telemetry off."""
    telemetry.disable()
    yield
    telemetry.disable()


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.record(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["total"] == 10.0
        assert snap["min"] == 1.0 and snap["max"] == 4.0
        assert snap["mean"] == 2.5
        assert snap["p50"] == pytest.approx(2.5)

    def test_empty_snapshot(self):
        assert Histogram().snapshot() == {"count": 0, "total": 0.0}

    def test_reservoir_is_bounded_but_count_exact(self):
        h = Histogram(max_samples=8)
        for v in range(100):
            h.record(float(v))
        assert h.count == 100
        assert len(h.samples) == 8
        assert h.maximum == 99.0


class TestSession:
    def test_counters_accumulate(self):
        tel = TelemetrySession()
        tel.count("a")
        tel.count("a", 4)
        assert tel.counters["a"] == 5

    def test_observe_and_add_time_separate_namespaces(self):
        tel = TelemetrySession()
        tel.observe("x", 1.0)
        tel.add_time("x", 2.0)
        assert tel.histograms["x"].count == 1
        assert tel.timers["x"].total == 2.0

    def test_time_block_records_duration(self):
        ticks = iter([0.0, 0.0, 1.5])  # started, block start, block end
        tel = TelemetrySession(clock=lambda: next(ticks))
        with tel.time_block("work"):
            pass
        assert tel.timers["work"].total == pytest.approx(1.5)

    def test_event_level_filtering(self):
        tel = TelemetrySession(log_level="warning")
        tel.event("quiet", level="debug")
        tel.event("loud", level="error", detail=7)
        assert [e["name"] for e in tel.events] == ["loud"]
        assert tel.events[0]["detail"] == 7

    def test_event_fields_cannot_corrupt_core_keys(self):
        tel = TelemetrySession()
        tel.event("e", t="bogus", seq="bogus")
        record = tel.events[0]
        assert record["name"] == "e"
        assert isinstance(record["t"], float)
        assert record["seq"] == 1

    def test_event_cap_counts_drops(self):
        tel = TelemetrySession(max_events=2)
        for _ in range(5):
            tel.event("e")
        assert len(tel.events) == 2
        assert tel.dropped_events == 3

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown log level"):
            TelemetrySession(log_level="loud")

    def test_spans_nest_and_record_timers(self):
        tel = TelemetrySession(log_level="debug")
        with tel.span("outer"):
            with tel.span("inner"):
                assert tel.span_path == "outer/inner"
        assert tel.span_path == ""
        assert "span.outer" in tel.timers
        assert "span.outer/inner" in tel.timers
        names = [e["name"] for e in tel.events]
        assert names == ["span.begin", "span.begin", "span.end", "span.end"]
        assert tel.events[1]["span"] == "outer/inner"

    def test_write_trace_round_trips(self, tmp_path):
        tel = TelemetrySession(log_level="debug")
        tel.count("c", 2)
        tel.observe("h", 0.5)
        tel.event("hello", payload=[1, 2])
        path = tel.write_trace(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.telemetry.trace/v1"
        assert payload["metrics"]["counters"]["c"] == 2
        assert payload["metrics"]["histograms"]["h"]["count"] == 1
        assert payload["events"][0]["name"] == "hello"
        assert payload["dropped_events"] == 0


class TestGlobalSession:
    def test_off_by_default(self):
        assert telemetry.active() is None

    def test_enable_disable_cycle(self):
        session = telemetry.enable(log_level="debug")
        assert telemetry.active() is session
        returned = telemetry.disable()
        assert returned is session
        assert telemetry.active() is None

    def test_enabled_scope_restores_previous(self):
        outer = telemetry.enable()
        with telemetry.enabled() as inner:
            assert telemetry.active() is inner
            assert inner is not outer
        assert telemetry.active() is outer

    def test_enabled_scope_restores_none(self):
        with telemetry.enabled():
            assert telemetry.active() is not None
        assert telemetry.active() is None

    def test_enabled_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with telemetry.enabled():
                raise RuntimeError("boom")
        assert telemetry.active() is None
