"""Tests for the engine-backed Monte-Carlo front-end."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.devices.variation import OxideVariation
from repro.engine.jobs import derive_seed
from repro.engine.mc import (
    McMetricSpec,
    MonteCarloBatch,
    escalated_transient_options,
    sample_scales,
)
from repro.engine.scheduler import EngineConfig, run_tasks

from engine_helpers import record_scales


class TestSampleScales:
    def test_deterministic(self):
        v = OxideVariation()
        assert sample_scales(v, 9, 3, 6) == sample_scales(v, 9, 3, 6)

    def test_independent_of_sample_count(self):
        # Scales of sample k never depend on how many samples the run
        # draws — the resume/extend guarantee for Monte-Carlo.
        v = OxideVariation()
        assert [sample_scales(v, 9, k, 6) for k in range(4)] == [
            sample_scales(v, 9, k, 6) for k in range(64)
        ][:4]

    def test_within_variation_band(self):
        v = OxideVariation()
        for k in range(20):
            for scale in sample_scales(v, 1, k, 6):
                assert 0.9 <= scale <= 1.1

    def test_varies_between_samples(self):
        v = OxideVariation()
        assert sample_scales(v, 9, 0, 6) != sample_scales(v, 9, 1, 6)


class TestEscalation:
    def test_first_attempt_uses_experiment_defaults(self):
        assert escalated_transient_options(0) is None

    def test_escalation_is_monotonic(self):
        first = escalated_transient_options(1)
        second = escalated_transient_options(2)
        assert first.solver.max_iterations < second.solver.max_iterations
        assert second.solver.gmin > first.solver.gmin
        assert escalated_transient_options(5) == second  # saturates


class TestMcMetricSpec:
    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError):
            McMetricSpec(metric="snm", beta=1.0)

    def test_spec_is_picklable_and_hashable(self):
        import pickle

        spec = McMetricSpec(metric="drnm", beta=0.6, assist="vgnd_lowering")
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert dataclasses.asdict(spec)["metric"] == "drnm"


class TestMonteCarloBatchTasks:
    def spec(self):
        return McMetricSpec(metric="drnm", beta=0.6, metric_name="probe")

    def test_tasks_carry_derived_seeds_and_scales(self):
        tasks = MonteCarloBatch(self.spec()).tasks(5, seed=9)
        assert [t.index for t in tasks] == list(range(5))
        for task in tasks:
            assert task.seed == derive_seed(9, task.index)
            spec, scales = task.payload
            assert spec == self.spec()
            assert scales == sample_scales(spec.variation, 9, task.index, 6)

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            MonteCarloBatch(self.spec()).tasks(0, seed=9)

    def test_scales_identical_across_jobs(self):
        """The full parallel plumbing hands every worker the same scales
        a serial run would draw (cheap echo task, no circuit solving)."""
        tasks = [
            dataclasses.replace(t, fn=record_scales)
            for t in MonteCarloBatch(self.spec()).tasks(8, seed=9)
        ]
        serial = run_tasks(tasks, EngineConfig(jobs=1))
        parallel = run_tasks(tasks, EngineConfig(jobs=4))
        assert serial.values() == parallel.values()
        assert all(len(v) == 6 for v in serial.values())


class TestMonteCarloBatchRun:
    def test_failed_tasks_become_nan_samples(self, tmp_path):
        from engine_helpers import always_diverges

        batch = MonteCarloBatch(
            McMetricSpec(metric="drnm", beta=0.6, metric_name="probe")
        )
        tasks = [
            dataclasses.replace(t, fn=always_diverges) for t in batch.tasks(3, seed=9)
        ]
        report = run_tasks(tasks, EngineConfig(retries=0))
        values = np.array(
            [v if v is not None else np.nan for v in report.values()], dtype=float
        )
        assert np.all(np.isnan(values))
        assert report.failed_count == 3
