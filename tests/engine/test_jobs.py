"""Tests for the engine's job model and seed derivation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.engine.jobs import Task, TaskContext, TaskOutcome, derive_seed, task_rng

from engine_helpers import seeded_value


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(9, 3) == derive_seed(9, 3)

    def test_varies_with_index_and_root(self):
        seeds = {derive_seed(9, k) for k in range(100)}
        assert len(seeds) == 100
        assert derive_seed(9, 0) != derive_seed(10, 0)

    def test_independent_of_task_count(self):
        # The seed of sample k must not depend on how many samples the
        # run contains — that property is what makes runs extendable.
        short = [derive_seed(5, k) for k in range(4)]
        long = [derive_seed(5, k) for k in range(64)]
        assert long[:4] == short

    def test_64_bit_range(self):
        s = derive_seed(0, 0)
        assert 0 <= s < 2**64

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            derive_seed(0, -1)
        with pytest.raises(ValueError):
            task_rng(0, -1)

    def test_task_rng_streams_differ(self):
        a = task_rng(7, 0).standard_normal(8)
        b = task_rng(7, 1).standard_normal(8)
        assert not np.allclose(a, b)


class TestTaskModel:
    def test_task_rejects_negative_index(self):
        with pytest.raises(ValueError):
            Task(index=-1, fn=seeded_value, payload=0.0, seed=1)

    def test_context_rng_is_seed_deterministic(self):
        ctx0 = TaskContext(index=0, seed=derive_seed(3, 0), attempt=0)
        ctx1 = TaskContext(index=0, seed=derive_seed(3, 0), attempt=2)
        # The rng depends only on the seed, not the attempt — retries
        # resample the same stream.
        assert ctx0.rng().standard_normal() == ctx1.rng().standard_normal()


class TestTaskOutcomeRecords:
    def test_round_trip_ok(self):
        out = TaskOutcome(index=3, status="ok", value=1.5, attempts=2, wall_s=0.25,
                          counters={"engine.retries": 1})
        again = TaskOutcome.from_record(out.to_record())
        assert again == out

    def test_round_trip_failure(self):
        out = TaskOutcome(index=0, status="failed", attempts=3,
                          error_type="ConvergenceError", error="diverged")
        again = TaskOutcome.from_record(out.to_record())
        assert not again.ok
        assert again.error_type == "ConvergenceError"

    def test_non_finite_values_survive_json(self):
        import json

        for value in (math.inf, -math.inf):
            out = TaskOutcome(index=1, status="ok", value=value)
            line = json.dumps(out.to_record())
            assert TaskOutcome.from_record(json.loads(line)).value == value
        nan_out = TaskOutcome(index=1, status="ok", value=math.nan)
        revived = TaskOutcome.from_record(json.loads(json.dumps(nan_out.to_record())))
        assert math.isnan(revived.value)
