"""Module-level task functions for the engine tests.

Pool workers pickle task functions by qualified name, so everything a
multi-worker test submits must live in an importable module — closures
and test-class methods only work on the ``jobs=1`` inline path.
"""

from __future__ import annotations

import time

from repro.circuit.dcop import ConvergenceError


def seeded_value(payload, ctx) -> float:
    """Deterministic float from the task's private rng stream."""
    return float(ctx.rng().standard_normal()) + float(payload)


def succeed_on_attempt(payload, ctx) -> float:
    """Raises ConvergenceError until ``ctx.attempt`` reaches ``payload``."""
    if ctx.attempt < int(payload):
        raise ConvergenceError(f"attempt {ctx.attempt} diverged")
    return float(ctx.attempt)


def always_diverges(payload, ctx) -> float:
    raise ConvergenceError("no operating point")


def raises_value_error(payload, ctx) -> float:
    raise ValueError("bad payload")


def busy_sleep(payload, ctx) -> float:
    """Burns wall-clock without returning; only a deadline stops it."""
    deadline = time.monotonic() + float(payload)
    while time.monotonic() < deadline:
        time.sleep(0.01)
    return 0.0


def record_scales(payload, ctx):
    """Echo task function: returns the (spec, scales) payload's scales."""
    _spec, scales = payload
    return list(scales)
