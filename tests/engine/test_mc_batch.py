"""Tests for the chunked (stacked-batch) Monte-Carlo engine path.

``MonteCarloBatch.run(batch_size=K)`` must be a pure packaging change:
same per-sample seeds, scales, values and audit selection as the
scalar task list, with member-level retry/verify semantics preserved
inside each chunk.  The solver-level bit-identity lives in
``tests/circuit/test_batch.py``; here the fakes pin the *engine*
contract — retry ladders, audit mismatches, and whole-chunk failure
expansion — and one small real study closes the end-to-end loop.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuit.dcop import ConvergenceError
from repro.engine import mc
from repro.engine.mc import McMetricSpec, MonteCarloBatch
from repro.engine.scheduler import EngineConfig
from repro.telemetry import core as telemetry
from repro.verify.core import VerificationError


def _spec(**overrides) -> McMetricSpec:
    defaults = dict(metric="drnm", beta=0.6, metric_name="probe")
    defaults.update(overrides)
    return McMetricSpec(**defaults)


def _value_gen(member, payload, ctx):
    """Fake sample generator: deterministic value, no solver work."""
    _, scales = payload
    return float(sum(scales))
    yield  # pragma: no cover - makes this a generator


class TestChunkLayout:
    def test_chunks_cover_every_sample_with_scalar_seeds(self):
        batch = MonteCarloBatch(_spec())
        scalar = batch.tasks(10, seed=7)
        chunks = batch.chunk_tasks(10, seed=7, config=EngineConfig(), batch_size=4)
        assert [t.index for t in chunks] == [0, 1, 2]

        entries = [e for t in chunks for e in t.payload[1]]
        assert [e[0] for e in entries] == list(range(10))
        for task, (index, seed, scales) in zip(scalar, entries):
            assert seed == task.seed
            assert scales == task.payload[1]

    def test_rejects_degenerate_sizes(self):
        batch = MonteCarloBatch(_spec())
        with pytest.raises(ValueError):
            batch.chunk_tasks(0, seed=1, config=EngineConfig(), batch_size=4)
        with pytest.raises(ValueError):
            batch.chunk_tasks(8, seed=1, config=EngineConfig(), batch_size=1)


class TestChunkSemantics:
    def test_retryable_member_falls_back_to_scalar_path(self, monkeypatch):
        calls = []

        def flaky_gen(member, payload, ctx):
            if ctx.index == 1:
                raise ConvergenceError("batch member diverged")
            return 1.5
            yield  # pragma: no cover

        def scalar_fallback(payload, ctx):
            calls.append((ctx.index, ctx.attempt))
            return 7.25

        monkeypatch.setattr(mc, "_mc_sample_gen", flaky_gen)
        monkeypatch.setattr(mc, "evaluate_mc_sample", scalar_fallback)

        with telemetry.enabled() as tel:
            result = MonteCarloBatch(_spec()).run(
                3, seed=5, engine=EngineConfig(jobs=1, retries=2), batch_size=3
            )
            counters = dict(tel.counters)

        assert result.samples.tolist() == [1.5, 7.25, 1.5]
        retried = next(o for o in result.report.outcomes if o.index == 1)
        assert retried.status == "ok"
        assert retried.attempts == 2
        assert calls == [(1, 1)]  # scalar escalation started at attempt 1
        assert counters["engine.convergence_errors"] == 1
        assert counters["engine.retries"] == 1
        assert counters["batch.member_retries"] == 1

    def test_retry_exhaustion_records_member_failure(self, monkeypatch):
        def always_diverges(member, payload, ctx):
            raise ConvergenceError("no operating point")
            yield  # pragma: no cover

        monkeypatch.setattr(mc, "_mc_sample_gen", always_diverges)
        monkeypatch.setattr(
            mc,
            "evaluate_mc_sample",
            lambda payload, ctx: (_ for _ in ()).throw(
                ConvergenceError("still diverging")
            ),
        )

        with telemetry.enabled() as tel:
            result = MonteCarloBatch(_spec()).run(
                2, seed=5, engine=EngineConfig(jobs=1, retries=1), batch_size=2
            )
            counters = dict(tel.counters)

        assert result.failure_count == 2
        assert all(math.isnan(v) for v in result.samples)
        for outcome in result.report.outcomes:
            assert outcome.status == "failed"
            assert outcome.error_type == "ConvergenceError"
            assert outcome.attempts == 2  # attempt 0 batched + 1 scalar retry
        assert counters["batch.member_failures"] == 2
        # One convergence error per failed attempt, including the last.
        assert counters["engine.convergence_errors"] == 4

    def test_audit_mismatch_fails_the_member(self, monkeypatch):
        monkeypatch.setattr(mc, "_mc_sample_gen", _value_gen)
        monkeypatch.setattr(mc, "evaluate_mc_sample", lambda p, c: -1.0)

        result = MonteCarloBatch(_spec()).run(
            3,
            seed=5,
            engine=EngineConfig(jobs=1, verify_fraction=1.0),
            batch_size=3,
        )

        assert result.failure_count == 3
        for outcome in result.report.outcomes:
            assert outcome.status == "failed"
            assert outcome.error_type == "VerificationError"
            assert "disagrees with the scalar path" in outcome.error

    def test_audit_agreement_passes_and_counts(self, monkeypatch):
        def scalar_twin(payload, ctx):
            _, scales = payload
            return float(sum(scales))

        monkeypatch.setattr(mc, "_mc_sample_gen", _value_gen)
        monkeypatch.setattr(mc, "evaluate_mc_sample", scalar_twin)

        with telemetry.enabled() as tel:
            result = MonteCarloBatch(_spec()).run(
                4,
                seed=5,
                engine=EngineConfig(jobs=1, verify_fraction=1.0),
                batch_size=2,
            )
            counters = dict(tel.counters)

        assert result.failure_count == 0
        assert counters["verify.audited_tasks"] == 4

    def test_audit_selection_matches_scalar_engine(self, monkeypatch):
        """verify_fraction draws the same member subset at any batch size."""
        from repro.engine.worker import verify_selected

        audited = []

        def tracking_scalar(payload, ctx):
            audited.append(ctx.index)
            _, scales = payload
            return float(sum(scales))

        monkeypatch.setattr(mc, "_mc_sample_gen", _value_gen)
        monkeypatch.setattr(mc, "evaluate_mc_sample", tracking_scalar)

        batch = MonteCarloBatch(_spec())
        batch.run(
            8,
            seed=5,
            engine=EngineConfig(jobs=1, verify_fraction=0.5),
            batch_size=3,
        )
        expected = [
            t.index for t in batch.tasks(8, seed=5) if verify_selected(t.seed, 0.5)
        ]
        assert audited == expected
        assert 0 < len(expected) < 8  # the draw actually split the set

    def test_dead_chunk_expands_to_per_sample_failures(self, monkeypatch):
        real_chunk = mc.evaluate_mc_chunk

        def dying_chunk(payload, ctx):
            if payload[1][0][0] == 2:  # the chunk starting at sample 2
                raise RuntimeError("worker exploded")
            return real_chunk(payload, ctx)

        monkeypatch.setattr(mc, "_mc_sample_gen", _value_gen)
        monkeypatch.setattr(mc, "evaluate_mc_chunk", dying_chunk)

        result = MonteCarloBatch(_spec()).run(
            5, seed=5, engine=EngineConfig(jobs=1), batch_size=2
        )

        assert [o.index for o in result.report.outcomes] == list(range(5))
        by_index = {o.index: o for o in result.report.outcomes}
        assert [by_index[k].status for k in range(5)] == [
            "ok", "ok", "failed", "failed", "ok"
        ]
        for k in (2, 3):
            assert by_index[k].error_type == "RuntimeError"
        assert math.isnan(result.samples[2]) and math.isnan(result.samples[3])


class TestEndToEnd:
    def test_batched_study_bit_identical_to_scalar(self):
        """Real physics, small N: any batch size reproduces scalar bits."""
        spec = _spec()
        scalar = MonteCarloBatch(spec).run(3, seed=5, engine=EngineConfig(jobs=1))
        batched = MonteCarloBatch(spec).run(
            3, seed=5, engine=EngineConfig(jobs=1), batch_size=3
        )
        assert batched.samples.tobytes() == scalar.samples.tobytes()
        assert [o.status for o in batched.report.outcomes] == ["ok"] * 3
