"""Tests for worker-side execution: retries, timeouts, structured failure."""

from __future__ import annotations

from repro.engine.jobs import Task, derive_seed
from repro.engine.worker import execute_task

from engine_helpers import (
    always_diverges,
    busy_sleep,
    raises_value_error,
    seeded_value,
    succeed_on_attempt,
)


def make_task(fn, payload, index=0, seed=None):
    return Task(index=index, fn=fn, payload=payload,
                seed=derive_seed(0, index) if seed is None else seed)


class TestRetries:
    def test_convergence_error_is_retried_with_escalated_attempt(self):
        out = execute_task(make_task(succeed_on_attempt, 1), retries=2)
        assert out.ok
        assert out.value == 1.0  # succeeded on the escalated attempt
        assert out.attempts == 2
        assert out.counters["engine.retries"] == 1
        assert out.counters["engine.convergence_errors"] == 1

    def test_retry_exhaustion_is_structured_failure(self):
        out = execute_task(make_task(always_diverges, None), retries=2)
        assert not out.ok
        assert out.attempts == 3
        assert out.error_type == "ConvergenceError"
        assert "no operating point" in out.error
        assert out.counters["engine.convergence_errors"] == 3

    def test_zero_retries_fails_on_first_divergence(self):
        out = execute_task(make_task(succeed_on_attempt, 1), retries=0)
        assert not out.ok
        assert out.attempts == 1

    def test_non_retryable_error_is_not_retried(self):
        out = execute_task(make_task(raises_value_error, None), retries=5)
        assert not out.ok
        assert out.attempts == 1
        assert out.error_type == "ValueError"


class TestTimeout:
    def test_timeout_produces_structured_failure_without_retry(self):
        out = execute_task(make_task(busy_sleep, 30.0), retries=3, timeout_s=0.2)
        assert not out.ok
        assert out.error_type == "TaskTimeout"
        assert out.attempts == 1  # deterministic work: retrying would hang again
        assert out.counters["engine.timeouts"] == 1
        assert out.wall_s < 5.0

    def test_fast_task_unaffected_by_timeout(self):
        out = execute_task(make_task(seeded_value, 0.0), timeout_s=30.0)
        assert out.ok


class TestOutcomeShape:
    def test_ok_outcome_records_wall_time_and_value(self):
        task = make_task(seeded_value, 10.0)
        out = execute_task(task)
        assert out.ok
        assert out.attempts == 1
        assert out.wall_s >= 0.0
        assert 5.0 < out.value < 15.0

    def test_never_raises(self):
        # The wrapper's contract: any exception becomes a failed outcome.
        out = execute_task(make_task(raises_value_error, None))
        assert out.status == "failed"

    def test_telemetry_disabled_still_counts_retries(self):
        out = execute_task(
            make_task(succeed_on_attempt, 1), retries=1, collect_telemetry=False
        )
        assert out.ok
        assert out.counters["engine.retries"] == 1
