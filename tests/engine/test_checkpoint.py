"""Tests for the JSONL checkpoint log."""

from __future__ import annotations

import json
import math

import pytest

from repro.engine.checkpoint import CHECKPOINT_SCHEMA, CheckpointLog, CheckpointMismatch
from repro.engine.jobs import TaskOutcome


def make_log(tmp_path, run_key="test:run", root_seed=9):
    return CheckpointLog(tmp_path / "run.jsonl", run_key, root_seed)


class TestWriteAndLoad:
    def test_fresh_log_round_trips_outcomes(self, tmp_path):
        log = make_log(tmp_path)
        log.open_fresh()
        log.append(TaskOutcome(index=0, status="ok", value=1.0))
        log.append(TaskOutcome(index=2, status="ok", value=math.inf))
        log.close()

        done = make_log(tmp_path).load()
        assert sorted(done) == [0, 2]
        assert done[0].value == 1.0
        assert done[2].value == math.inf

    def test_missing_file_loads_empty(self, tmp_path):
        assert make_log(tmp_path).load() == {}

    def test_header_is_first_line(self, tmp_path):
        log = make_log(tmp_path)
        log.open_fresh()
        log.close()
        header = json.loads((tmp_path / "run.jsonl").read_text().splitlines()[0])
        assert header["schema"] == CHECKPOINT_SCHEMA
        assert header["run_key"] == "test:run"
        assert header["root_seed"] == 9

    def test_append_requires_open(self, tmp_path):
        with pytest.raises(RuntimeError):
            make_log(tmp_path).append(TaskOutcome(index=0, status="ok"))


class TestMismatch:
    def test_wrong_run_key(self, tmp_path):
        log = make_log(tmp_path, run_key="a")
        log.open_fresh()
        log.close()
        with pytest.raises(CheckpointMismatch, match="belongs to run"):
            make_log(tmp_path, run_key="b").load()

    def test_wrong_root_seed(self, tmp_path):
        log = make_log(tmp_path, root_seed=1)
        log.open_fresh()
        log.close()
        with pytest.raises(CheckpointMismatch, match="--seed"):
            make_log(tmp_path, root_seed=2).load()

    def test_wrong_schema(self, tmp_path):
        (tmp_path / "run.jsonl").write_text(
            json.dumps({"schema": "other/v0", "run_key": "test:run", "root_seed": 9})
            + "\n"
        )
        with pytest.raises(CheckpointMismatch, match="schema"):
            make_log(tmp_path).load()

    def test_unreadable_header(self, tmp_path):
        (tmp_path / "run.jsonl").write_text("not json\n")
        with pytest.raises(CheckpointMismatch, match="unreadable"):
            make_log(tmp_path).load()


class TestInterruptedRuns:
    def test_torn_tail_is_ignored(self, tmp_path):
        log = make_log(tmp_path)
        log.open_fresh()
        log.append(TaskOutcome(index=0, status="ok", value=1.0))
        log.close()
        with (tmp_path / "run.jsonl").open("a") as handle:
            handle.write('{"index": 1, "status": "o')  # killed mid-write

        done = make_log(tmp_path).load()
        assert sorted(done) == [0]

    def test_open_resumed_compacts_torn_tail(self, tmp_path):
        log = make_log(tmp_path)
        log.open_fresh()
        log.append(TaskOutcome(index=0, status="ok", value=1.0))
        log.close()
        with (tmp_path / "run.jsonl").open("a") as handle:
            handle.write('{"torn')

        log = make_log(tmp_path)
        done = log.open_resumed()
        assert sorted(done) == [0]
        log.append(TaskOutcome(index=1, status="ok", value=2.0))
        log.close()

        # After compaction + append every line parses again.
        done = make_log(tmp_path).load()
        assert sorted(done) == [0, 1]

    def test_open_resumed_without_file_degrades_to_fresh(self, tmp_path):
        log = make_log(tmp_path)
        assert log.open_resumed() == {}
        log.append(TaskOutcome(index=0, status="ok", value=0.5))
        log.close()
        assert sorted(make_log(tmp_path).load()) == [0]
