"""Tests for the batch scheduler: determinism, resume, fault tolerance.

The determinism tests are the engine's headline contract: the same root
seed produces bit-identical results at ``jobs=1`` and ``jobs=4``, and
across a kill-and-resume cycle.
"""

from __future__ import annotations

import pytest

from repro.engine.checkpoint import CheckpointLog, CheckpointMismatch
from repro.engine.jobs import Task, derive_seed
from repro.engine.scheduler import EngineConfig, run_tasks
from repro.telemetry import core as telemetry

from engine_helpers import always_diverges, raises_value_error, seeded_value, succeed_on_attempt


def make_tasks(count, root_seed=9, fn=seeded_value, payload=0.0):
    return [
        Task(index=k, fn=fn, payload=payload, seed=derive_seed(root_seed, k))
        for k in range(count)
    ]


class TestDeterminism:
    def test_jobs4_bit_identical_to_jobs1(self):
        tasks = make_tasks(12)
        serial = run_tasks(tasks, EngineConfig(jobs=1))
        parallel = run_tasks(tasks, EngineConfig(jobs=4))
        assert serial.values() == parallel.values()
        assert serial.ok_count == parallel.ok_count == 12

    def test_values_are_in_index_order(self):
        tasks = make_tasks(8)
        report = run_tasks(tasks, EngineConfig(jobs=4))
        by_index = {o.index: o.value for o in report.outcomes}
        assert report.values() == [by_index[k] for k in range(8)]

    def test_prefix_of_larger_run_matches_smaller_run(self):
        small = run_tasks(make_tasks(4), EngineConfig())
        large = run_tasks(make_tasks(16), EngineConfig())
        assert large.values()[:4] == small.values()


class TestResume:
    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        """Simulated interruption: the first run checkpoints a prefix of
        the batch (as a killed run would have), the resumed run computes
        only the rest, and the combined values match an uninterrupted run."""
        path = tmp_path / "run.jsonl"
        tasks = make_tasks(10)
        uninterrupted = run_tasks(tasks, EngineConfig())

        interrupted = run_tasks(
            tasks[:6],
            EngineConfig(checkpoint_path=path, run_key="t", root_seed=9),
        )
        assert interrupted.ok_count == 6

        resumed = run_tasks(
            tasks,
            EngineConfig(checkpoint_path=path, run_key="t", root_seed=9, resume=True),
        )
        assert resumed.resumed_count == 6
        assert resumed.values() == uninterrupted.values()

    def test_resume_with_parallel_completion(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tasks = make_tasks(10)
        run_tasks(tasks[:5], EngineConfig(checkpoint_path=path, run_key="t", root_seed=9))
        resumed = run_tasks(
            tasks,
            EngineConfig(
                jobs=4, checkpoint_path=path, run_key="t", root_seed=9, resume=True
            ),
        )
        assert resumed.resumed_count == 5
        assert resumed.values() == run_tasks(tasks, EngineConfig()).values()

    def test_fully_checkpointed_resume_recomputes_nothing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tasks = make_tasks(4)
        first = run_tasks(tasks, EngineConfig(checkpoint_path=path, run_key="t", root_seed=9))
        again = run_tasks(
            tasks,
            EngineConfig(checkpoint_path=path, run_key="t", root_seed=9, resume=True),
        )
        assert again.resumed_count == 4
        assert again.values() == first.values()

    def test_without_resume_flag_checkpoint_is_truncated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tasks = make_tasks(3)
        run_tasks(tasks, EngineConfig(checkpoint_path=path, run_key="t", root_seed=9))
        report = run_tasks(tasks, EngineConfig(checkpoint_path=path, run_key="t", root_seed=9))
        assert report.resumed_count == 0

    def test_resume_rejects_other_runs_checkpoint(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tasks = make_tasks(3)
        run_tasks(tasks, EngineConfig(checkpoint_path=path, run_key="a", root_seed=9))
        with pytest.raises(CheckpointMismatch):
            run_tasks(
                tasks,
                EngineConfig(checkpoint_path=path, run_key="b", root_seed=9, resume=True),
            )

    def test_failures_are_checkpointed_and_replayed(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tasks = make_tasks(3, fn=always_diverges)
        run_tasks(tasks, EngineConfig(retries=0, checkpoint_path=path, run_key="t", root_seed=9))
        resumed = run_tasks(
            tasks,
            EngineConfig(retries=0, checkpoint_path=path, run_key="t", root_seed=9, resume=True),
        )
        assert resumed.resumed_count == 3
        assert resumed.failed_count == 3


class TestFaultTolerance:
    def test_task_failure_does_not_abort_the_batch(self):
        tasks = make_tasks(4) + [
            Task(index=4, fn=raises_value_error, payload=None, seed=derive_seed(9, 4))
        ]
        report = run_tasks(tasks, EngineConfig(jobs=2))
        assert report.ok_count == 4
        assert report.failed_count == 1
        failure = report.failures()[0]
        assert failure.index == 4
        assert failure.error_type == "ValueError"
        assert report.values(failed_value=-1.0)[4] == -1.0

    def test_retry_counts_aggregate_across_workers(self):
        tasks = make_tasks(6, fn=succeed_on_attempt, payload=1)
        report = run_tasks(tasks, EngineConfig(jobs=3, retries=2))
        assert report.ok_count == 6
        assert report.retry_count == 6
        assert report.counters["engine.retries"] == 6


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            EngineConfig(jobs=0)
        with pytest.raises(ValueError):
            EngineConfig(retries=-1)
        with pytest.raises(ValueError):
            EngineConfig(timeout_s=0.0)

    def test_rejects_duplicate_indices(self):
        task = make_tasks(1)[0]
        with pytest.raises(ValueError):
            run_tasks([task, task], EngineConfig())


class TestTelemetryAggregation:
    def test_engine_counters_reach_the_active_session(self):
        tasks = make_tasks(5, fn=succeed_on_attempt, payload=1)
        with telemetry.enabled() as session:
            run_tasks(tasks, EngineConfig(jobs=2, retries=1))
        assert session.counters["engine.tasks_total"] == 5
        assert session.counters["engine.tasks_ok"] == 5
        assert session.counters["engine.retries"] == 5
        assert session.counters["engine.jobs"] == 2

    def test_inline_runs_do_not_double_count(self):
        tasks = make_tasks(3, fn=succeed_on_attempt, payload=1)
        with telemetry.enabled() as session:
            run_tasks(tasks, EngineConfig(jobs=1, retries=1))
        # Counters arrive once via aggregation, not once per nested
        # session plus once via the merge.
        assert session.counters["engine.retries"] == 3
