"""Tests for the on-disk device-table cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.cache import DeviceTableCache


@pytest.fixture
def payload():
    rng = np.random.default_rng(1)
    return {
        "current": rng.standard_normal((5, 5)) * 1e-6,
        "vgs": (0.0, 1.0, 5),
        "vds": (-1.0, 1.0, 5),
        "shape_voltage": 0.15,
    }


class TestRoundTrip:
    def test_store_then_load_is_bit_identical(self, tmp_path, payload):
        cache = DeviceTableCache(tmp_path)
        cache.store(1.0025, 5, payload["current"], payload["vgs"],
                    payload["vds"], payload["shape_voltage"])
        loaded = cache.load(1.0025, 5)
        assert loaded is not None
        assert np.array_equal(loaded["current"], payload["current"])
        assert tuple(loaded["vgs"]) == payload["vgs"]
        assert tuple(loaded["vds"]) == payload["vds"]
        assert loaded["shape_voltage"] == payload["shape_voltage"]

    def test_keys_distinguish_scale_and_points(self, tmp_path, payload):
        cache = DeviceTableCache(tmp_path)
        cache.store(1.0, 5, payload["current"], payload["vgs"],
                    payload["vds"], payload["shape_voltage"])
        assert cache.load(1.0025, 5) is None
        assert cache.load(1.0, 7) is None
        assert cache.load(1.0, 5) is not None


class TestDegradation:
    def test_miss_on_empty_directory(self, tmp_path):
        cache = DeviceTableCache(tmp_path / "nonexistent")
        assert cache.load(1.0, 141) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path, payload):
        cache = DeviceTableCache(tmp_path)
        path = cache.store(1.0, 5, payload["current"], payload["vgs"],
                           payload["vds"], payload["shape_voltage"])
        path.write_bytes(b"garbage, not an npz archive")
        assert cache.load(1.0, 5) is None

    def test_stats_count_activity(self, tmp_path, payload):
        cache = DeviceTableCache(tmp_path)
        cache.load(1.0, 5)
        cache.store(1.0, 5, payload["current"], payload["vgs"],
                    payload["vds"], payload["shape_voltage"])
        cache.load(1.0, 5)
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}


class TestLibraryIntegration:
    def test_cached_device_tables_match_uncached(self, tmp_path):
        """A table rebuilt from the disk cache is bit-identical to one
        sampled fresh — the cache stores the raw physics samples and
        only the (deterministic) interpolant is rebuilt on load."""
        from dataclasses import replace

        from repro.devices.library import (
            _current_table_cached,
            nominal_tfet_physics,
            set_table_cache,
            table_cache,
        )

        nominal = nominal_tfet_physics()
        model = replace(nominal, design=nominal.design.with_oxide_scale(1.0025))
        fresh = _current_table_cached(model, 1.0025, 31)

        previous = table_cache()
        cache = DeviceTableCache(tmp_path)
        set_table_cache(cache)
        try:
            first = _current_table_cached(model, 1.0025, 31)   # miss + store
            second = _current_table_cached(model, 1.0025, 31)  # hit
        finally:
            set_table_cache(previous)

        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}
        assert len(list(tmp_path.glob("tfet_s*.npz"))) == 1
        vgs = np.linspace(0.0, 1.0, 13)
        vds = np.linspace(-0.9, 0.9, 13)
        assert np.array_equal(first(vgs, vds), fresh(vgs, vds))
        assert np.array_equal(second(vgs, vds), fresh(vgs, vds))
        assert first.shape_voltage == second.shape_voltage == fresh.shape_voltage
