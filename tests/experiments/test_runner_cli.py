"""Tests for the runner's telemetry options and new CLI flags."""

from __future__ import annotations

import json

import pytest

import repro.experiments.runner as runner
from repro.circuit.dcop import solve_dc
from repro.circuit.netlist import Circuit
from repro.experiments.common import ExperimentResult
from repro.telemetry import core as telemetry


@pytest.fixture(autouse=True)
def _no_leaked_session():
    telemetry.disable()
    yield
    telemetry.disable()


def fake_run(gain: float = 2.0) -> ExperimentResult:
    """A registry-shaped experiment that performs one real DC solve."""
    c = Circuit()
    c.add_voltage_source("v1", "in", "0", 1.0)
    c.add_resistor("in", "out", 1e3)
    c.add_resistor("out", "0", 1e3)
    op = solve_dc(c)
    result = ExperimentResult("fake", "fake experiment", ["gain", "v(out)"])
    result.add_row(gain, gain * op.voltage("out"))
    return result


@pytest.fixture
def fake_registry(monkeypatch):
    monkeypatch.setitem(runner.REGISTRY, "fake", (fake_run, "fake experiment"))


class TestRunExperiment:
    def test_plain_run_leaves_telemetry_off(self, fake_registry):
        result = runner.run_experiment("fake")
        assert result.column("v(out)") == [pytest.approx(1.0, rel=1e-6)]
        assert telemetry.active() is None

    def test_kwargs_forwarded_to_experiment(self, fake_registry):
        result = runner.run_experiment("fake", gain=3.0)
        assert result.column("gain") == [3.0]

    def test_profile_writes_manifest_with_solver_counters(
        self, fake_registry, tmp_path
    ):
        runner.run_experiment("fake", profile=True, output_dir=tmp_path)
        manifest = json.loads((tmp_path / "fake_manifest.json").read_text())
        assert manifest["experiment_id"] == "fake"
        counters = manifest["telemetry"]["counters"]
        assert counters["dcop.solves"] == 1
        assert counters["dcop.converged.cold_start"] == 1
        assert counters["newton.iterations"] >= 1
        assert "span.experiment.fake" in manifest["telemetry"]["timers"]
        assert manifest["wall_time_s"] > 0.0
        assert len(manifest["result"]["checksum_sha256"]) == 64
        # The session is torn down after the run.
        assert telemetry.active() is None

    def test_trace_written(self, fake_registry, tmp_path):
        trace = tmp_path / "trace.json"
        runner.run_experiment(
            "fake", trace_path=trace, log_level="debug", output_dir=tmp_path
        )
        payload = json.loads(trace.read_text())
        assert payload["schema"] == "repro.telemetry.trace/v1"
        names = [e["name"] for e in payload["events"]]
        assert "dcop.converged" in names
        assert payload["metrics"]["counters"]["newton.solves"] >= 1

    def test_output_dir_saves_result_json(self, fake_registry, tmp_path):
        out = tmp_path / "nested"
        runner.run_experiment("fake", output_dir=out)
        saved = json.loads((out / "fake.json").read_text())
        assert saved["experiment_id"] == "fake"
        # No manifest without telemetry options.
        assert not (out / "fake_manifest.json").exists()

    def test_unknown_id_still_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            runner.run_experiment("fig99")


def fake_sampling_run(
    samples: int = 4,
    seed: int = 0,
    jobs: int = 1,
    resume: bool = False,
    checkpoint_dir=None,
    cache_dir=None,
) -> ExperimentResult:
    """Registry-shaped stand-in for an engine-backed sampling experiment."""
    result = ExperimentResult("fakemc", "fake sampling", ["samples", "seed", "jobs"])
    result.add_row(samples, seed, jobs)
    result.notes.append(f"checkpoint_dir={checkpoint_dir} cache_dir={cache_dir} resume={resume}")
    return result


class TestTracePathSuffixing:
    def test_multi_run_gets_experiment_suffix(self):
        assert (
            str(runner._trace_path_for("out.json", "fig02", multi=True))
            == "out_fig02.json"
        )

    def test_single_run_keeps_the_exact_path(self):
        assert runner._trace_path_for("out.json", "fig02", multi=False) == "out.json"

    def test_none_stays_none(self):
        assert runner._trace_path_for(None, "fig02", multi=True) is None

    def test_suffix_added_when_path_has_no_extension(self):
        assert (
            str(runner._trace_path_for("trace", "fig04", multi=True))
            == "trace_fig04.json"
        )

    def test_all_run_writes_one_trace_per_experiment(
        self, monkeypatch, tmp_path
    ):
        # Regression: `all --trace out.json` used to clobber every trace
        # with the last experiment's.
        monkeypatch.setattr(
            runner,
            "REGISTRY",
            {"fake_a": (fake_run, "a"), "fake_b": (fake_run, "b")},
        )
        trace = tmp_path / "out.json"
        assert (
            runner.main(
                ["all", "--trace", str(trace), "--output-dir", str(tmp_path)]
            )
            == 0
        )
        assert not trace.exists()
        assert (tmp_path / "out_fake_a.json").exists()
        assert (tmp_path / "out_fake_b.json").exists()


class TestEngineFlagPlumbing:
    @pytest.fixture
    def sampling_registry(self, monkeypatch):
        monkeypatch.setitem(
            runner.REGISTRY, "fakemc", (fake_sampling_run, "fake sampling")
        )

    def test_engine_flags_forwarded(self, sampling_registry, tmp_path, capsys):
        assert (
            runner.main(
                [
                    "fakemc",
                    "--samples", "8",
                    "--seed", "3",
                    "--jobs", "2",
                    "--output-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "8" in out and "3" in out and "2" in out
        # The runner always points engine-backed runs at checkpoints
        # under the output directory so ^C runs are resumable.
        assert f"checkpoint_dir={tmp_path}/checkpoints" in out
        assert f"cache_dir={tmp_path}/table_cache" in out

    def test_non_sampling_experiment_ignores_flags_with_note(
        self, fake_registry, tmp_path, capsys
    ):
        assert (
            runner.main(
                ["fake", "--samples", "8", "--output-dir", str(tmp_path)]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "does not take --samples" in captured.err
        assert "fake experiment" in captured.out


class TestMainFlags:
    def test_list_prints_registry(self, capsys):
        assert runner.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out
        assert "DRNM and WL_crit vs beta" in out

    def test_missing_experiment_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            runner.main([])
        assert "required unless --list" in capsys.readouterr().err

    def test_profile_run_prints_manifest_path(
        self, fake_registry, tmp_path, capsys
    ):
        assert (
            runner.main(
                ["fake", "--profile", "--output-dir", str(tmp_path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fake experiment" in out
        assert "fake_manifest.json" in out
        assert (tmp_path / "fake_manifest.json").exists()
        assert (tmp_path / "fake.json").exists()


class TestVerifyFlag:
    def test_verify_run_audits_and_prints_summary(self, fake_registry, capsys):
        from repro.verify import core as verify

        result = runner.run_experiment("fake", verify_run=True)
        assert result.column("gain") == [2.0]
        err = capsys.readouterr().err
        assert err.startswith("verify: ")
        assert "kcl=" in err
        assert "0 violations" in err
        # The session is torn down after the run.
        assert verify.active() is None

    def test_empty_session_notes_worker_scoped_counts(
        self, monkeypatch, capsys
    ):
        # A zero-audit session (no in-process solving, or an engine run
        # at jobs > 1 auditing inside the forked workers) must say why
        # instead of printing a bare zero.
        monkeypatch.setitem(
            runner.REGISTRY,
            "noop",
            (lambda: ExperimentResult("noop", "noop", ["x"]), "noop"),
        )
        runner.run_experiment("noop", verify_run=True)
        err = capsys.readouterr().err
        assert "0 audits" in err
        assert "workers audit" in err

    def test_cli_flag_reaches_the_session(self, fake_registry, capsys):
        assert runner.main(["fake", "--verify"]) == 0
        captured = capsys.readouterr()
        assert "verify:" in captured.err
        assert "0 violations" in captured.err

    def test_plain_run_leaves_verify_off(self, fake_registry):
        from repro.verify import core as verify

        runner.run_experiment("fake")
        assert verify.active() is None
