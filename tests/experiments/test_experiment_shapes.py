"""Reduced-size experiment runs asserting the paper's *shape* claims.

Each test runs a miniature version of one experiment (few betas / few
samples) and checks the qualitative structure the paper reports; the
full-size runs live in the benchmark harness.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    fig02_tfet_iv,
    fig04_cell_stability,
    fig06_write_assist,
    fig07_read_assist,
    fig09_wa_variation,
    fig10_ra_variation,
    fig11_delay,
    fig12_margins,
    table_area,
    table_static_power,
)


class TestFig02:
    @pytest.fixture(scope="class")
    def result(self):
        return fig02_tfet_iv.run(vgs_points=11)

    def test_anchor_currents(self, result):
        forward = result.column("nTFET fwd @vds=+1V (A/um)")
        assert forward[0] == pytest.approx(1e-17, rel=1e-3)
        assert forward[-1] == pytest.approx(1e-4, rel=1e-3)

    def test_p_and_n_symmetric(self, result):
        n = result.column("nTFET fwd @vds=+1V (A/um)")
        p = result.column("pTFET fwd @vds=-1V (A/um)")
        for a, b in zip(n, p):
            assert b == pytest.approx(-a)

    def test_gate_loses_control_at_high_reverse_bias(self, result):
        deep = result.column("nTFET rev @vds=-1V (A/um)")
        assert max(deep) / min(deep) < 1.2
        shallow = result.column("nTFET rev @vds=-0.1V (A/um)")
        assert max(shallow) / min(shallow) > 1e6


class TestFig04:
    @pytest.fixture(scope="class")
    def result(self):
        return fig04_cell_stability.run(betas=(0.5, 1.0, 2.0))

    def test_inward_n_unwritable_everywhere(self, result):
        assert all(math.isinf(v) for v in result.column("WLcrit innTFET (ps)"))

    def test_inward_p_writable_only_at_small_beta(self, result):
        wl = result.column("WLcrit inpTFET (ps)")
        assert math.isfinite(wl[0])
        assert math.isinf(wl[-1])

    def test_cmos_flat_and_fast(self, result):
        wl = result.column("WLcrit CMOS (ps)")
        assert all(math.isfinite(v) for v in wl)
        assert max(wl) < 100.0

    def test_drnm_grows_with_beta(self, result):
        for col in ("DRNM inpTFET (mV)", "DRNM CMOS (mV)"):
            d = result.column(col)
            assert d == sorted(d)

    def test_cmos_beats_tfet_at_small_beta(self, result):
        assert result.column("DRNM CMOS (mV)")[0] > result.column("DRNM inpTFET (mV)")[0]


class TestFig06:
    @pytest.fixture(scope="class")
    def result(self):
        return fig06_write_assist.run(betas=(1.5, 3.0))

    def test_unassisted_write_fails_above_beta_one(self, result):
        assert all(math.isinf(v) for v in result.column("no assist"))

    def test_access_strengthening_best_at_low_beta(self, result):
        # At beta = 1.5 strengthening the access transistor wins.
        assert result.column("wl_lowering")[0] < result.column("vgnd_raising")[0]

    def test_rail_assist_wins_at_high_beta(self, result):
        # The paper's crossover: by beta ~ 3 the rail technique beats
        # the access-strengthening ones (which fail outright in the
        # paper and degrade past the rail curve here).
        rail = result.column("vgnd_raising")[-1]
        wl = result.column("wl_lowering")[-1]
        assert math.isinf(wl) or rail <= wl


class TestFig07:
    @pytest.fixture(scope="class")
    def result(self):
        return fig07_read_assist.run(betas=(0.4, 0.8))

    def test_every_technique_improves_drnm(self, result):
        baseline = result.column("no assist")
        for name in ("vdd_raising", "vgnd_lowering", "wl_raising", "bl_lowering"):
            for base, assisted in zip(baseline, result.column(name)):
                assert assisted > base

    def test_vgnd_lowering_wins_at_design_beta(self, result):
        row = result.rows[-1]
        header = result.header
        best = max(
            ("vdd_raising", "vgnd_lowering", "wl_raising", "bl_lowering"),
            key=lambda n: row[header.index(n)],
        )
        assert best == "vgnd_lowering"


class TestVariationFigures:
    def test_fig09_wa_spreads_wider_than_drnm(self):
        result = fig09_wa_variation.run(samples=4, seed=1)
        spreads = {row[0]: row[4] for row in result.rows}
        assert spreads["vgnd_raising"] > spreads["(no assist)"]

    def test_fig10_drnm_variation_immune(self):
        result = fig10_ra_variation.run(samples=4, seed=1)
        for row in result.rows:
            if row[1].startswith("DRNM"):
                assert row[4] < 0.05  # spread under 5 %

    def test_fig10_ra_sized_cell_always_writable(self):
        result = fig10_ra_variation.run(samples=4, seed=2)
        wl_row = [r for r in result.rows if r[0] == "(no assist)"][0]
        assert wl_row[5] == 0  # no write failures at beta = 0.6


class TestFig11And12:
    @pytest.fixture(scope="class")
    def delays(self):
        return fig11_delay.run(vdds=(0.8,))

    @pytest.fixture(scope="class")
    def margins(self):
        return fig12_margins.run(vdds=(0.8,))

    def test_cmos_fastest_write(self, delays):
        row = delays.rows[0]
        h = delays.header
        cmos = row[h.index("write CMOS")]
        for col in ("write proposed", "write asym", "write 7T"):
            assert cmos < row[h.index(col)]

    def test_all_reads_finite(self, delays):
        row = delays.rows[0]
        for col, value in zip(delays.header[1:], row[1:]):
            assert math.isfinite(value), col

    def test_tfet_wlcrit_above_cmos(self, margins):
        row = margins.rows[0]
        h = margins.header
        assert row[h.index("WLcrit proposed")] > row[h.index("WLcrit CMOS")]
        assert row[h.index("WLcrit 7T")] > row[h.index("WLcrit CMOS")]

    def test_proposed_smallest_wlcrit_among_tfets(self, margins):
        row = margins.rows[0]
        h = margins.header
        assert row[h.index("WLcrit proposed")] < row[h.index("WLcrit 7T")]

    def test_assisted_drnm_highest(self, margins):
        row = margins.rows[0]
        h = margins.header
        proposed = row[h.index("DRNM proposed+RA")]
        assert proposed > row[h.index("DRNM asym")]
        assert proposed > row[h.index("DRNM 7T")]


class TestTables:
    def test_static_power_orders(self):
        result = table_static_power.run(vdds=(0.8,))
        row = result.rows[0]
        h = result.header
        assert row[h.index("orders: outward/inward")] > 8.0
        assert 5.0 < row[h.index("orders: CMOS/proposed")] < 8.0

    def test_asym_penalty_at_low_vdd(self):
        result = table_static_power.run(vdds=(0.5,))
        row = result.rows[0]
        orders = row[result.header.index("orders: asym/proposed")]
        assert 3.0 < orders < 5.0

    def test_area_table(self):
        result = table_area.run()
        ratios = {row[0]: row[3] for row in result.rows}
        assert 1.08 < ratios["7T TFET"] < 1.18
        assert ratios["proposed 6T inpTFET"] == pytest.approx(1.0)
