"""Tests for the Section-5 design definitions and the public API surface."""

from __future__ import annotations

import pytest

from repro.experiments.designs import (
    PROPOSED_BETA,
    asym_cell,
    cmos_cell,
    comparison_designs,
    proposed_cell,
    proposed_read_assist,
    seven_t_cell,
)


class TestDesigns:
    def test_proposed_design_point(self):
        cell = proposed_cell()
        assert cell.sizing.beta == pytest.approx(PROPOSED_BETA)
        assert cell.access.value == "inward_p"

    def test_proposed_assist_is_the_paper_winner(self):
        assist = proposed_read_assist()
        assert assist.name == "vgnd_lowering"
        assert assist.kind == "read"
        assert assist.fraction == 0.3

    def test_comparison_set_has_four_designs(self):
        designs = comparison_designs()
        assert len(designs) == 4
        assert "6T CMOS" in designs

    def test_cells_are_fresh_instances(self):
        assert proposed_cell() is not proposed_cell()

    def test_seven_t_default_sizing_writes(self):
        cell = seven_t_cell()
        # Wide write access vs weak pull-up: the outward-write contest.
        assert cell.sizing.access_width > cell.sizing.pullup_width

    def test_asym_access_narrow(self):
        assert asym_cell().sizing.access_width < cmos_cell().sizing.access_width


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_analysis_exports(self):
        import repro.analysis as analysis

        for name in analysis.__all__:
            assert hasattr(analysis, name), name

    def test_circuit_exports(self):
        import repro.circuit as circuit

        for name in circuit.__all__:
            assert hasattr(circuit, name), name

    def test_quickstart_docstring_snippet_runs(self):
        from repro import AccessConfig, CellSizing, Tfet6TCell
        from repro.analysis import dynamic_read_noise_margin

        cell = Tfet6TCell(CellSizing().with_beta(0.6), AccessConfig.INWARD_P)
        drnm = dynamic_read_noise_margin(cell.read_testbench(0.8))
        assert 0.4 < drnm < 0.8
