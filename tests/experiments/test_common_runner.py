"""Tests for the experiment infrastructure and registry."""

from __future__ import annotations

import math

import pytest

from repro.experiments.common import (
    ExperimentResult,
    fmt_seconds,
    fmt_value,
    fmt_volts,
)
from repro.experiments.runner import REGISTRY, run_experiment


class TestFormatting:
    def test_fmt_seconds(self):
        assert fmt_seconds(1.5e-10) == "150.0 ps"
        assert fmt_seconds(math.inf) == "inf"

    def test_fmt_volts(self):
        assert fmt_volts(0.123) == "123.0 mV"

    def test_fmt_value_scientific_for_extremes(self):
        assert "e" in fmt_value(1e-17)
        assert fmt_value(math.inf) == "inf"
        assert fmt_value("text") == "text"
        assert fmt_value(None) == "-"


class TestExperimentResult:
    def make(self):
        return ExperimentResult("figX", "demo", ["a", "b"])

    def test_add_row_and_column(self):
        r = self.make()
        r.add_row(1.0, 2.0)
        r.add_row(3.0, 4.0)
        assert r.column("b") == [2.0, 4.0]

    def test_row_width_checked(self):
        r = self.make()
        with pytest.raises(ValueError):
            r.add_row(1.0)

    def test_format_contains_header_and_notes(self):
        r = self.make()
        r.add_row(1.0, math.inf)
        r.notes.append("hello")
        text = r.format()
        assert "figX" in text and "a" in text and "inf" in text and "note: hello" in text

    def test_unknown_column(self):
        with pytest.raises(ValueError):
            self.make().column("zzz")


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        paper = {
            "fig02", "fig04", "fig06", "fig07", "fig08",
            "fig09", "fig10", "fig11", "fig12", "tab_power", "tab_area",
        }
        assert paper <= set(REGISTRY)

    def test_extensions_registered(self):
        extensions = {"abl_static_dynamic", "abl_assist_fraction", "ext_half_select"}
        assert extensions <= set(REGISTRY)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_descriptions_present(self):
        for run, description in REGISTRY.values():
            assert callable(run)
            assert description

    def test_main_prints_table(self, capsys):
        from repro.experiments.runner import main

        assert main(["tab_area"]) == 0
        out = capsys.readouterr().out
        assert "tab_area" in out and "7T" in out
