"""Tests for the ablation and extension experiments."""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    abl_assist_fraction,
    abl_static_vs_dynamic,
    ext_half_select,
)


class TestStaticVsDynamic:
    @pytest.fixture(scope="class")
    def result(self):
        return abl_static_vs_dynamic.run(betas=(0.6,), points=17)

    def test_dynamic_margin_dominates_static(self, result):
        row = result.rows[0]
        h = result.header
        assert row[h.index("TFET DRNM/SNM")] > 3.0

    def test_cmos_static_margin_larger_than_tfet(self, result):
        row = result.rows[0]
        h = result.header
        assert row[h.index("CMOS read SNM (mV)")] > row[h.index("TFET read SNM (mV)")]


class TestAssistFraction:
    @pytest.fixture(scope="class")
    def result(self):
        return abl_assist_fraction.run(fractions=(0.15, 0.3, 0.45))

    def test_drnm_monotone_in_fraction(self, result):
        drnm = result.column(result.header[1])
        assert drnm == sorted(drnm)

    def test_wlcrit_improves_with_fraction(self, result):
        wl = result.column(result.header[2])
        finite = [v for v in wl if math.isfinite(v)]
        assert finite == sorted(finite, reverse=True)
        # The strongest assist must enable the write.
        assert math.isfinite(wl[-1])


class TestHalfSelect:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_half_select.run(betas=(0.6,))

    def test_half_select_erodes_unassisted_margin(self, result):
        row = result.rows[0]
        h = result.header
        selected = row[h.index("selected DRNM + RA (mV)")]
        half = row[h.index("half-select DRNM, no RA (mV)")]
        assert half < 0.25 * selected

    def test_segmented_assist_recovers_margin(self, result):
        row = result.rows[0]
        h = result.header
        recovered = row[h.index("half-select DRNM, segmented RA (mV)")]
        plain = row[h.index("half-select DRNM, no RA (mV)")]
        assert recovered > 10.0 * max(plain, 1e-3)

    def test_registered_in_runner(self):
        from repro.experiments.runner import REGISTRY

        for key in ("abl_static_dynamic", "abl_assist_fraction", "ext_half_select"):
            assert key in REGISTRY
