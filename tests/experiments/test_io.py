"""Tests for experiment-result persistence."""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.io import load_json, save_csv, save_json


@pytest.fixture
def result():
    r = ExperimentResult("figX", "demo", ["beta", "wlcrit (ps)", "label"])
    r.add_row(0.6, 742.0, "ok")
    r.add_row(2.0, math.inf, "fails")
    r.notes.append("a note")
    return r


@pytest.fixture
def nonfinite_result():
    r = ExperimentResult("figY", "demo", ["a", "b", "c"])
    r.add_row(math.nan, -math.inf, math.inf)
    return r


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self, result, tmp_path):
        path = save_json(result, tmp_path / "r.json")
        loaded = load_json(path)
        assert loaded.experiment_id == result.experiment_id
        assert loaded.title == result.title
        assert loaded.header == result.header
        assert loaded.notes == result.notes
        assert loaded.rows[0] == result.rows[0]

    def test_infinity_survives(self, result, tmp_path):
        loaded = load_json(save_json(result, tmp_path / "r.json"))
        assert math.isinf(loaded.rows[1][1])

    def test_file_is_valid_json(self, result, tmp_path):
        path = save_json(result, tmp_path / "r.json")
        payload = json.loads(path.read_text())
        assert payload["experiment_id"] == "figX"

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"title": "x"}))
        with pytest.raises(ValueError, match="missing"):
            load_json(path)

    def test_nan_and_negative_infinity_survive(self, nonfinite_result, tmp_path):
        loaded = load_json(save_json(nonfinite_result, tmp_path / "r.json"))
        a, b, c = loaded.rows[0]
        assert math.isnan(a)
        assert b == -math.inf
        assert c == math.inf

    def test_file_is_strict_json_without_bare_tokens(self, nonfinite_result, tmp_path):
        # The whole point of the token encoding: the file must parse
        # under a strict decoder that rejects the Python JSON dialect.
        path = save_json(nonfinite_result, tmp_path / "r.json")
        text = path.read_text()
        payload = json.loads(text, parse_constant=lambda token: pytest.fail(
            f"bare non-finite token {token!r} in output"
        ))
        assert payload["rows"][0][0] == {"__float__": "NaN"}
        assert payload["rows"][0][1] == {"__float__": "-Infinity"}
        assert payload["rows"][0][2] == {"__float__": "Infinity"}


class TestCsv:
    def test_csv_has_header_and_rows(self, result, tmp_path):
        path = save_csv(result, tmp_path / "r.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "beta,wlcrit (ps),label"
        assert len(lines) == 3
        assert "inf" in lines[2]

    def test_csv_spells_out_nonfinite_values(self, nonfinite_result, tmp_path):
        path = save_csv(nonfinite_result, tmp_path / "r.csv")
        assert path.read_text().strip().splitlines()[1] == "nan,-inf,inf"
