"""Tests for the Miller-coupling and energy-scaling extensions."""

from __future__ import annotations

import pytest

from repro.experiments import ext_energy_scaling, ext_miller_coupling


class TestMillerCoupling:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_miller_coupling.run(betas=(0.6,))

    def test_tfet_boost_far_exceeds_cmos(self, result):
        row = result.rows[0]
        h = result.header
        assert row[h.index("TFET peak boost (mV)")] > 5.0 * row[h.index("CMOS peak boost (mV)")]

    def test_tfet_node_stays_boosted(self, result):
        # The unidirectional pull-up cannot drain the injected charge:
        # the node dwells above the rail for a long fraction of the
        # access, while the CMOS node recovers immediately.
        row = result.rows[0]
        h = result.header
        assert row[h.index("TFET dwell above rail (ps)")] > 100.0
        assert row[h.index("CMOS dwell above rail (ps)")] < 50.0


class TestEnergyScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_energy_scaling.run(vdds=(0.6, 0.8))

    def test_standby_advantage_at_every_vdd(self, result):
        h = result.header
        for row in result.rows:
            ratio = row[h.index("CMOS standby (W)")] / row[h.index("TFET standby (W)")]
            assert ratio > 1e5

    def test_energies_positive_and_femtojoule_scale(self, result):
        h = result.header
        for row in result.rows:
            for col in ("TFET write E (fJ)", "TFET read E w/ RA (fJ)", "CMOS write E (fJ)"):
                assert 0.0 < row[h.index(col)] < 100.0

    def test_energy_grows_with_vdd(self, result):
        col = result.column("TFET read E w/ RA (fJ)")
        assert col == sorted(col)

    def test_registered(self):
        from repro.experiments.runner import REGISTRY

        assert "ext_miller" in REGISTRY and "ext_energy" in REGISTRY
