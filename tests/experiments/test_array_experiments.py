"""Tests for the compiled-array validation experiments."""

from __future__ import annotations

import pytest

from repro.experiments import ext_array_area, ext_array_read
from repro.experiments.runner import REGISTRY


class TestArrayRead:
    @pytest.fixture(scope="class")
    def result(self):
        # Small geometry keeps the transients fast; the reference-
        # geometry tolerances are exercised by scripts/array_smoke.py.
        return ext_array_read.run(rows_list=(4,), columns=2)

    def test_every_scenario_reported(self, result):
        scenarios = result.column("scenario")
        assert scenarios == ["read", "write", "half_select"]

    def test_read_ratio_reported(self, result):
        h = result.header
        read_row = result.rows[0]
        assert 0.3 < read_row[h.index("ratio")] < 2.0
        assert read_row[h.index("simulated (ps)")] > 0.0

    def test_half_select_has_disturb_margin(self, result):
        h = result.header
        hs_row = result.rows[2]
        assert hs_row[h.index("disturb (mV)")] > 100.0

    def test_tolerances_documented(self, result):
        notes = " ".join(result.notes)
        assert "read delay" in notes
        assert "band" in notes

    def test_registered(self):
        assert "ext_array_read" in REGISTRY


class TestArrayArea:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_array_area.run(rows=64, columns=32)

    def test_census_within_tolerance_of_analytic(self, result):
        h = result.header
        for row in result.rows:
            assert abs(row[h.index("ratio")] - 1.0) <= ext_array_area.AREA_TOLERANCE

    def test_small_arrays_not_gated(self):
        result = ext_array_area.run(rows=8, columns=4)
        assert any("only at the reference geometry" in n for n in result.notes)

    def test_registered(self):
        assert "ext_array_area" in REGISTRY
