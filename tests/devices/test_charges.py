"""Tests for the charge-based capacitance primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.charges import (
    CompositeCharge,
    LinearCharge,
    MirroredCharge,
    SmoothStepCharge,
)

VOLTAGES = st.floats(-2.0, 2.0)


class TestLinearCharge:
    def test_charge_is_cv(self):
        c = LinearCharge(2e-15)
        assert float(np.asarray(c.charge(0.5))) == pytest.approx(1e-15)

    def test_capacitance_constant(self):
        c = LinearCharge(3e-16)
        v = np.linspace(-1, 1, 5)
        assert np.allclose(np.asarray(c.capacitance(v)), 3e-16)

    def test_negative_capacitance_rejected(self):
        with pytest.raises(ValueError):
            LinearCharge(-1e-15)

    def test_zero_charge_at_zero_volts(self):
        assert float(np.asarray(LinearCharge(1e-15).charge(0.0))) == 0.0


class TestSmoothStepCharge:
    def make(self):
        return SmoothStepCharge(c_low=1e-16, c_high=5e-16, v_step=0.3, width=0.1)

    def test_capacitance_limits(self):
        c = self.make()
        assert float(np.asarray(c.capacitance(-3.0))) == pytest.approx(1e-16, rel=1e-6)
        assert float(np.asarray(c.capacitance(3.0))) == pytest.approx(5e-16, rel=1e-6)

    def test_capacitance_midpoint(self):
        c = self.make()
        assert float(np.asarray(c.capacitance(0.3))) == pytest.approx(3e-16, rel=1e-9)

    @given(v=VOLTAGES)
    @settings(max_examples=60, deadline=None)
    def test_charge_derivative_equals_capacitance(self, v):
        c = self.make()
        h = 1e-6
        dq = (float(np.asarray(c.charge(v + h))) - float(np.asarray(c.charge(v - h)))) / (2 * h)
        assert dq == pytest.approx(float(np.asarray(c.capacitance(v))), rel=1e-5)

    @given(v1=VOLTAGES, v2=VOLTAGES)
    @settings(max_examples=40, deadline=None)
    def test_charge_monotone(self, v1, v2):
        c = self.make()
        q1 = float(np.asarray(c.charge(v1)))
        q2 = float(np.asarray(c.charge(v2)))
        assert (q2 - q1) * (v2 - v1) >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SmoothStepCharge(-1e-16, 1e-16, 0.0)
        with pytest.raises(ValueError):
            SmoothStepCharge(1e-16, 1e-16, 0.0, width=0.0)

    def test_no_overflow_at_extreme_bias(self):
        c = self.make()
        assert np.isfinite(float(np.asarray(c.capacitance(1e3))))
        assert np.isfinite(float(np.asarray(c.charge(-1e3))))


class TestMirroredCharge:
    def make(self):
        return MirroredCharge(SmoothStepCharge(1e-16, 5e-16, 0.3, 0.1))

    @given(v=VOLTAGES)
    @settings(max_examples=40, deadline=None)
    def test_charge_is_point_reflection(self, v):
        m = self.make()
        q_m = float(np.asarray(m.charge(v)))
        q_n = float(np.asarray(m.reference.charge(-v)))
        assert q_m == pytest.approx(-q_n, rel=1e-12, abs=1e-30)

    @given(v=VOLTAGES)
    @settings(max_examples=40, deadline=None)
    def test_capacitance_is_mirrored(self, v):
        m = self.make()
        assert float(np.asarray(m.capacitance(v))) == pytest.approx(
            float(np.asarray(m.reference.capacitance(-v)))
        )

    @given(v=VOLTAGES)
    @settings(max_examples=40, deadline=None)
    def test_mirrored_derivative_still_capacitance(self, v):
        m = self.make()
        h = 1e-6
        dq = (float(np.asarray(m.charge(v + h))) - float(np.asarray(m.charge(v - h)))) / (2 * h)
        assert dq == pytest.approx(float(np.asarray(m.capacitance(v))), rel=1e-5)

    def test_capacitance_positive(self):
        m = self.make()
        v = np.linspace(-2, 2, 21)
        assert np.all(np.asarray(m.capacitance(v)) > 0)


class TestCompositeCharge:
    def test_sum_of_parts(self):
        parts = (LinearCharge(1e-16), SmoothStepCharge(0.0, 2e-16, 0.0, 0.1))
        comp = CompositeCharge(parts)
        v = 0.7
        expected_q = sum(float(np.asarray(p.charge(v))) for p in parts)
        expected_c = sum(float(np.asarray(p.capacitance(v))) for p in parts)
        assert float(np.asarray(comp.charge(v))) == pytest.approx(expected_q)
        assert float(np.asarray(comp.capacitance(v))) == pytest.approx(expected_c)

    def test_empty_composite_is_zero(self):
        comp = CompositeCharge(())
        assert float(np.asarray(comp.charge(1.0))) == 0.0
        assert float(np.asarray(comp.capacitance(1.0))) == 0.0
