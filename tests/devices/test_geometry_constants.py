"""Tests for physical constants and device geometry."""

from __future__ import annotations

import math

import pytest

from repro.constants import (
    HFO2,
    MOSFET_SS_LIMIT_MV_PER_DEC,
    SILICON,
    SIO2,
    Dielectric,
    thermal_voltage,
)
from repro.devices.physics.geometry import TfetDesign


class TestConstants:
    def test_thermal_voltage_at_room_temperature(self):
        assert thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)

    def test_mosfet_limit_is_sixty_mv_per_decade(self):
        assert MOSFET_SS_LIMIT_MV_PER_DEC == pytest.approx(59.5, abs=0.5)

    def test_hfo2_is_high_k(self):
        assert HFO2.relative_permittivity / SIO2.relative_permittivity > 6.0

    def test_silicon_bandgap(self):
        assert SILICON.bandgap_ev == pytest.approx(1.12)

    def test_capacitance_per_area(self):
        # 2 nm HfO2 (k = 25) is an aggressive ~0.31 nm EOT stack.
        cox = HFO2.capacitance_per_area(2e-9)
        assert cox == pytest.approx(0.1107, rel=1e-3)

    def test_capacitance_rejects_bad_thickness(self):
        with pytest.raises(ValueError):
            HFO2.capacitance_per_area(0.0)


class TestTfetDesign:
    def test_paper_defaults(self):
        d = TfetDesign()
        assert d.channel_length == 32e-9
        assert d.gate_underlap == 2e-9
        assert d.oxide_thickness == 2e-9
        assert d.source_doping_cm3 == 1e20
        assert d.channel_doping_cm3 == 1e15
        assert d.dielectric is HFO2

    def test_natural_length_scale(self):
        # lambda = sqrt(eps_si/eps_ox * t_si * t_ox) ~ 3 nm for the
        # default stack: the gate couples tightly to the junction.
        d = TfetDesign()
        assert d.natural_length == pytest.approx(
            math.sqrt(11.7 / 25.0 * 10e-9 * 2e-9), rel=1e-9
        )
        assert 2e-9 < d.natural_length < 4e-9

    def test_thicker_oxide_weakens_coupling(self):
        d = TfetDesign()
        thick = d.with_oxide_scale(1.05)
        assert thick.natural_length > d.natural_length
        assert thick.oxide_capacitance_per_area < d.oxide_capacitance_per_area

    def test_with_oxide_scale_validation(self):
        with pytest.raises(ValueError):
            TfetDesign().with_oxide_scale(0.0)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            TfetDesign(channel_length=0.0)
        with pytest.raises(ValueError):
            TfetDesign(gate_underlap=-1e-9)

    def test_gate_area_per_um_width(self):
        assert TfetDesign().gate_area_per_um_width == pytest.approx(32e-15)
