"""Tests for the TFET calibration procedure."""

from __future__ import annotations

import pytest

from repro.devices.physics.calibration import (
    CalibrationError,
    CalibrationTargets,
    calibrate_tfet,
)
from repro.devices.physics.geometry import TfetDesign
from repro.devices.physics.tfet_model import TfetPhysicalModel


class TestTargets:
    def test_defaults_are_paper_anchors(self):
        t = CalibrationTargets()
        assert t.on_current == 1e-4
        assert t.off_current == 1e-17
        assert t.vdd_ref == 1.0

    def test_rejects_inverted_anchors(self):
        with pytest.raises(ValueError):
            CalibrationTargets(on_current=1e-18, off_current=1e-17)

    def test_rejects_bad_tail_fraction(self):
        with pytest.raises(ValueError):
            CalibrationTargets(tunneling_tail_fraction=1.5)


class TestCalibration:
    def test_nominal_hits_anchors(self, tfet_physics):
        assert tfet_physics.on_current(1.0) == pytest.approx(1e-4, rel=1e-5)
        assert tfet_physics.off_current(1.0) == pytest.approx(1e-17, rel=1e-5)

    def test_custom_targets(self):
        targets = CalibrationTargets(on_current=5e-5, off_current=1e-16)
        model = calibrate_tfet(TfetPhysicalModel(), targets)
        assert model.on_current(1.0) == pytest.approx(5e-5, rel=1e-5)
        assert model.off_current(1.0) == pytest.approx(1e-16, rel=1e-5)

    def test_tail_fraction_respected(self, tfet_physics):
        import numpy as np

        tail = float(np.asarray(tfet_physics.gate_transfer_density(0.0)))
        tail *= float(np.asarray(tfet_physics.drain_saturation_factor(1.0)))
        assert tail == pytest.approx(0.05 * 1e-17, rel=1e-3)

    def test_calibration_is_deterministic(self):
        a = calibrate_tfet(TfetPhysicalModel())
        b = calibrate_tfet(TfetPhysicalModel())
        assert a.flat_band_voltage == b.flat_band_voltage
        assert a.current_scale == b.current_scale

    def test_perturbed_geometry_still_calibrates(self):
        design = TfetDesign().with_oxide_scale(1.05)
        model = calibrate_tfet(TfetPhysicalModel(design=design))
        assert model.on_current(1.0) == pytest.approx(1e-4, rel=1e-5)

    def test_impossible_target_raises(self):
        # An on/off ratio of ~1 cannot be realized by any work function:
        # the transfer curve always spans many decades.
        targets = CalibrationTargets(on_current=1.05e-17, off_current=1e-17)
        with pytest.raises(CalibrationError):
            calibrate_tfet(TfetPhysicalModel(), targets)


class TestVariationResponse:
    """Thickness variation must shift the device, not be re-tuned away."""

    def test_thinner_oxide_steepens_and_strengthens(self, tfet_physics):
        from dataclasses import replace

        thin = replace(
            tfet_physics, design=tfet_physics.design.with_oxide_scale(0.95)
        )
        assert thin.on_current(1.0) > tfet_physics.on_current(1.0)

    def test_thicker_oxide_weakens(self, tfet_physics):
        from dataclasses import replace

        thick = replace(
            tfet_physics, design=tfet_physics.design.with_oxide_scale(1.05)
        )
        assert thick.on_current(1.0) < tfet_physics.on_current(1.0)

    def test_five_percent_band_moves_on_current_noticeably(self, tfet_physics):
        from dataclasses import replace

        thin = replace(tfet_physics, design=tfet_physics.design.with_oxide_scale(0.95))
        thick = replace(tfet_physics, design=tfet_physics.design.with_oxide_scale(1.05))
        ratio = thin.on_current(1.0) / thick.on_current(1.0)
        assert 1.05 < ratio < 10.0
