"""Tests for the device library cache and variation sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.library import (
    nominal_tfet_physics,
    tfet_device,
)
from repro.devices.variation import OxideVariation, quantize_scale


class TestLibrary:
    def test_nominal_device_cached(self):
        assert tfet_device() is tfet_device()
        assert nominal_tfet_physics() is nominal_tfet_physics()

    def test_quantized_scales_share_cards(self):
        # 1.0001 and 1.0002 quantize to the same grid point.
        assert tfet_device(1.0001) is tfet_device(1.0002)

    def test_distinct_scales_distinct_cards(self):
        assert tfet_device(0.95) is not tfet_device(1.05)

    def test_perturbed_card_shifts_current(self):
        nominal = tfet_device()
        thin = tfet_device(0.95)
        assert thin.on_current(1.0) > nominal.on_current(1.0)

    def test_table_matches_physics_at_anchors(self, tfet, tfet_physics):
        assert tfet.on_current(1.0) == pytest.approx(tfet_physics.on_current(1.0), rel=1e-3)
        assert tfet.off_current(1.0) == pytest.approx(
            tfet_physics.off_current(1.0), rel=1e-2
        )

    def test_table_tracks_physics_over_bias_plane(self, tfet, tfet_physics):
        rng = np.random.default_rng(42)
        vgs = rng.uniform(-1.2, 1.2, 200)
        vds = rng.uniform(-1.2, 1.2, 200)
        table = np.asarray(tfet.current_density(vgs, vds))
        truth = np.asarray(tfet_physics.current_density(vgs, vds))
        rel = np.abs(table - truth) / (np.abs(truth) + 1e-22)
        assert np.median(rel) < 1e-3
        assert np.max(rel) < 0.1


class TestQuantize:
    def test_identity_on_grid(self):
        assert quantize_scale(1.0) == 1.0
        assert quantize_scale(0.95) == 0.95

    def test_snaps_to_grid(self):
        assert quantize_scale(1.0012) == pytest.approx(1.0)
        assert quantize_scale(1.0013) == pytest.approx(1.0025)

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            quantize_scale(1.0, quantum=0.0)


class TestOxideVariation:
    def test_uniform_samples_inside_band(self):
        var = OxideVariation(spread=0.05, distribution="uniform")
        samples = var.sample(np.random.default_rng(1), 500)
        assert np.all(samples >= 0.95 - 1e-9)
        assert np.all(samples <= 1.05 + 1e-9)

    def test_normal_samples_clipped_to_band(self):
        var = OxideVariation(spread=0.05, distribution="normal")
        samples = var.sample(np.random.default_rng(2), 500)
        assert np.all(samples >= 0.95 - 1e-9)
        assert np.all(samples <= 1.05 + 1e-9)

    def test_samples_are_quantized(self):
        var = OxideVariation()
        samples = var.sample(np.random.default_rng(3), 50)
        for s in samples:
            assert s == pytest.approx(quantize_scale(s))

    def test_mean_near_nominal(self):
        var = OxideVariation()
        samples = var.sample(np.random.default_rng(4), 2000)
        assert np.mean(samples) == pytest.approx(1.0, abs=0.01)

    def test_per_transistor_shape(self):
        var = OxideVariation()
        scales = var.sample_per_transistor(np.random.default_rng(5), 7, 6)
        assert scales.shape == (7, 6)

    def test_reproducible_with_seed(self):
        var = OxideVariation()
        a = var.sample(np.random.default_rng(9), 10)
        b = var.sample(np.random.default_rng(9), 10)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            OxideVariation(spread=0.0)
        with pytest.raises(ValueError):
            OxideVariation(distribution="cauchy")
        with pytest.raises(ValueError):
            OxideVariation().sample(np.random.default_rng(0), -1)
