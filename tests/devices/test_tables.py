"""Tests for the uniform-grid interpolation tables."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.tables import CubicTable2D, CurrentTable, UniformGrid


def quadratic(x, y):
    return 1.0 + 2.0 * x - 0.5 * y + 0.25 * x * y


def grid_values(xg, yg, fn):
    return fn(xg.points()[:, None], yg.points()[None, :])


class TestUniformGrid:
    def test_points_span_and_count(self):
        g = UniformGrid(-1.0, 1.0, 21)
        pts = g.points()
        assert pts[0] == -1.0 and pts[-1] == 1.0 and len(pts) == 21
        assert g.step == pytest.approx(0.1)

    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError, match="at least 4"):
            UniformGrid(0.0, 1.0, 3)

    def test_rejects_inverted_span(self):
        with pytest.raises(ValueError, match="must exceed"):
            UniformGrid(1.0, 0.0, 11)

    def test_cell_of_interior_point(self):
        g = UniformGrid(0.0, 1.0, 11)
        idx, t = g.cell_of(np.array([0.25]))
        assert idx[0] == 2
        assert t[0] == pytest.approx(0.5)

    def test_cell_of_clamps_out_of_range(self):
        g = UniformGrid(0.0, 1.0, 11)
        idx_lo, t_lo = g.cell_of(np.array([-5.0]))
        idx_hi, t_hi = g.cell_of(np.array([5.0]))
        assert idx_lo[0] == 0 and t_lo[0] == 0.0
        assert idx_hi[0] == 9 and t_hi[0] == pytest.approx(1.0)

    def test_cell_of_last_point_maps_to_last_cell(self):
        g = UniformGrid(0.0, 1.0, 11)
        idx, t = g.cell_of(np.array([1.0]))
        assert idx[0] == 9
        assert t[0] == pytest.approx(1.0)

    def test_cell_of_matches_uncached_formula(self):
        # The cached step/reciprocal must not change cell mapping:
        # compare against the direct division formula on a dense probe
        # set including out-of-range values and the exact endpoints.
        g = UniformGrid(-0.7, 1.3, 37)
        xs = np.concatenate([np.linspace(-1.5, 2.0, 401), [g.start, g.stop]])
        idx, t = g.cell_of(xs)
        step = (g.stop - g.start) / (g.count - 1)
        xc = np.clip(xs, g.start, g.stop)
        pos = (xc - g.start) / step
        idx_ref = np.clip(np.floor(pos).astype(np.intp), 0, g.count - 2)
        t_ref = pos - idx_ref
        # Reconstructed coordinates must agree exactly-ish even if a
        # floor lands one cell over at a representation boundary.
        np.testing.assert_allclose(idx + t, idx_ref + t_ref, rtol=0, atol=1e-12)
        same = idx == idx_ref
        np.testing.assert_allclose(t[same], t_ref[same], rtol=0, atol=1e-12)
        assert np.all(np.abs(idx - idx_ref) <= 1)

    def test_points_are_cached_and_read_only(self):
        g = UniformGrid(0.0, 1.0, 11)
        p1 = g.points()
        assert g.points() is p1  # no per-call allocation
        with pytest.raises(ValueError):
            p1[0] = 99.0

    def test_step_precomputed_value(self):
        g = UniformGrid(-2.0, 2.0, 41)
        assert g.step == pytest.approx(0.1)
        assert g.step * (g.count - 1) == pytest.approx(g.stop - g.start)


class TestCubicTable2D:
    def setup_method(self):
        self.xg = UniformGrid(-1.0, 1.0, 21)
        self.yg = UniformGrid(-2.0, 2.0, 41)
        self.table = CubicTable2D(self.xg, self.yg, grid_values(self.xg, self.yg, quadratic))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            CubicTable2D(self.xg, self.yg, np.zeros((5, 5)))

    def test_nonfinite_values_rejected(self):
        vals = grid_values(self.xg, self.yg, quadratic)
        vals[3, 3] = np.nan
        with pytest.raises(ValueError, match="finite"):
            CubicTable2D(self.xg, self.yg, vals)

    def test_reproduces_samples_exactly_at_grid_points(self):
        for x in (-1.0, -0.3, 0.5, 1.0):
            for y in (-2.0, 0.4, 2.0):
                xi = round((x + 1.0) / self.xg.step)
                yi = round((y + 2.0) / self.yg.step)
                xs = self.xg.points()[xi]
                ys = self.yg.points()[yi]
                assert self.table(xs, ys) == pytest.approx(quadratic(xs, ys), abs=1e-12)

    @given(
        x=st.floats(-0.95, 0.95),
        y=st.floats(-1.9, 1.9),
    )
    @settings(max_examples=60, deadline=None)
    def test_bilinear_polynomial_reproduced_everywhere(self, x, y):
        # Catmull-Rom reproduces polynomials up to cubic in each axis;
        # the x*y cross term is exactly representable.
        assert float(self.table(x, y)) == pytest.approx(quadratic(x, y), abs=1e-10)

    @given(
        x=st.floats(-0.9, 0.9),
        y=st.floats(-1.8, 1.8),
    )
    @settings(max_examples=40, deadline=None)
    def test_derivatives_match_finite_differences(self, x, y):
        smooth = CubicTable2D(
            self.xg,
            self.yg,
            grid_values(self.xg, self.yg, lambda a, b: np.sin(a) * np.cos(0.5 * b)),
        )
        h = 1e-6
        _, fx, fy = smooth.evaluate(x, y)
        fx_fd = (smooth(x + h, y) - smooth(x - h, y)) / (2 * h)
        fy_fd = (smooth(x, y + h) - smooth(x, y - h)) / (2 * h)
        assert float(fx) == pytest.approx(float(fx_fd), abs=1e-5)
        assert float(fy) == pytest.approx(float(fy_fd), abs=1e-5)

    def test_c1_continuity_across_cell_boundary(self):
        smooth = CubicTable2D(
            self.xg,
            self.yg,
            grid_values(self.xg, self.yg, lambda a, b: np.exp(a) + b**2),
        )
        boundary = self.xg.points()[7]
        eps = 1e-9
        f_lo, fx_lo, _ = smooth.evaluate(boundary - eps, 0.3)
        f_hi, fx_hi, _ = smooth.evaluate(boundary + eps, 0.3)
        assert float(f_lo) == pytest.approx(float(f_hi), abs=1e-7)
        assert float(fx_lo) == pytest.approx(float(fx_hi), abs=1e-4)

    def test_extrapolation_is_tangent_plane(self):
        f0, fx0, fy0 = self.table.evaluate(1.0, 0.0)
        f_out, fx_out, _ = self.table.evaluate(1.5, 0.0)
        assert float(f_out) == pytest.approx(float(f0) + 0.5 * float(fx0), rel=1e-9)
        assert float(fx_out) == pytest.approx(float(fx0), rel=1e-9)

    def test_extrapolation_continuous_at_boundary(self):
        eps = 1e-9
        inside = float(self.table(1.0 - eps, 0.7))
        outside = float(self.table(1.0 + eps, 0.7))
        assert inside == pytest.approx(outside, abs=1e-7)

    def test_corner_extrapolation_includes_mixed_term(self):
        f0, fx0, fy0 = self.table.evaluate(1.0, 2.0)
        value = float(self.table(1.2, 2.4))
        # quadratic() is exactly f0 + fx*dx + fy*dy + fxy*dx*dy here.
        assert value == pytest.approx(quadratic(1.2, 2.4), abs=1e-9)

    def test_coefficient_kernel_matches_reference_kernel(self):
        # The baked polynomial-coefficient evaluation must agree with
        # the retained seed (einsum) kernel everywhere, including the
        # tangent-plane extension region.
        smooth = CubicTable2D(
            self.xg,
            self.yg,
            grid_values(self.xg, self.yg, lambda a, b: np.sin(3 * a) * np.exp(0.4 * b)),
        )
        rng = np.random.default_rng(42)
        xs = rng.uniform(-1.4, 1.4, 200)
        ys = rng.uniform(-2.6, 2.6, 200)
        fast = smooth.evaluate(xs, ys)
        CubicTable2D.reference_evaluation = True
        try:
            ref = smooth.evaluate(xs, ys)
        finally:
            CubicTable2D.reference_evaluation = False
        for a, b in zip(fast, ref):
            np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-13)

    def test_scalar_and_array_evaluation_agree(self):
        xs = np.array([0.1, -0.4, 0.9])
        ys = np.array([0.2, 1.1, -1.5])
        vec = self.table(xs, ys)
        for k in range(3):
            assert float(self.table(xs[k], ys[k])) == pytest.approx(float(vec[k]))

    def test_broadcasting(self):
        xs = np.array([0.0, 0.5])[:, None]
        ys = np.array([0.0, 1.0, -1.0])[None, :]
        out = self.table(xs, ys)
        assert out.shape == (2, 3)


class TestCurrentTable:
    def _device_like(self, vgs, vds):
        """A synthetic unidirectional characteristic spanning decades.

        Smooth (C1) through vds = 0, matching the property of the real
        physics model that the factored table relies on.
        """
        gate = 1e-17 + 1e-4 * np.exp((vgs - 1.0) / 0.08)
        shape = np.sign(vds) * (1.0 - np.exp(-np.abs(vds) / 0.1))
        reverse = 1e-12 * np.exp(-vds / 0.05)
        return shape * (gate + reverse)

    def setup_method(self):
        self.vgs_grid = UniformGrid(-1.2, 1.2, 121)
        self.vds_grid = UniformGrid(-1.2, 1.2, 121)
        vgs = self.vgs_grid.points()[:, None]
        vds = self.vds_grid.points()[None, :]
        self.table = CurrentTable(
            self.vgs_grid, self.vds_grid, self._device_like(vgs, vds), shape_voltage=0.1
        )

    def test_rejects_nonpositive_shape_voltage(self):
        with pytest.raises(ValueError, match="shape_voltage"):
            CurrentTable(self.vgs_grid, self.vds_grid, np.ones((121, 121)), shape_voltage=0.0)

    def test_rejects_sign_inconsistent_current(self):
        bad = np.full((121, 121), 1.0)  # positive at negative vds too
        with pytest.raises(ValueError, match="strictly positive"):
            CurrentTable(self.vgs_grid, self.vds_grid, bad)

    @given(vgs=st.floats(-1.0, 1.0), vds=st.floats(-1.0, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_relative_accuracy_across_thirteen_decades(self, vgs, vds):
        truth = float(self._device_like(np.asarray(vgs), np.asarray(vds)))
        value = float(self.table(vgs, vds))
        # The synthetic characteristic has a derivative kink at vds = 0
        # (like the real device); allow a looser band in that column.
        rel = 0.15 if abs(vds) < 0.05 else 0.05
        assert value == pytest.approx(truth, rel=rel, abs=1e-22)

    def test_zero_crossing_current_is_zero(self):
        assert float(self.table(0.7, 0.0)) == 0.0

    def test_linear_region_conductance_preserved(self):
        # The analytic shape restores the exact resistive slope near 0.
        _, _, gds = self.table.evaluate(1.0, 1e-5)
        truth = (
            self._device_like(np.asarray(1.0), np.asarray(1e-4))
            - self._device_like(np.asarray(1.0), np.asarray(-1e-4))
        ) / 2e-4
        assert float(gds) == pytest.approx(float(truth), rel=0.05)

    @given(vgs=st.floats(-0.9, 0.9), vds=st.floats(-0.9, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_derivatives_consistent_with_finite_difference(self, vgs, vds):
        h = 1e-6
        _, gm, gds = self.table.evaluate(vgs, vds)
        gm_fd = (self.table(vgs + h, vds) - self.table(vgs - h, vds)) / (2 * h)
        gds_fd = (self.table(vgs, vds + h) - self.table(vgs, vds - h)) / (2 * h)
        scale = abs(float(gm_fd)) + abs(float(gds_fd)) + 1e-25
        assert abs(float(gm) - float(gm_fd)) / scale < 1e-2
        assert abs(float(gds) - float(gds_fd)) / scale < 1e-2

    def test_grids_exposed(self):
        assert self.table.vgs_grid is self.vgs_grid
        assert self.table.vds_grid is self.vds_grid

    def test_derivatives_finite_difference_across_vds_zero_seam(self):
        # The analytic shape function carries the sign change at
        # V_DS = 0; the reported output conductance there must match a
        # central difference straddling the seam, and gm/gds must stay
        # FD-consistent for evaluation points within microvolts of it.
        h = 1e-7
        for vgs in (-0.5, 0.2, 0.8, 1.1):
            i0, gm0, gds0 = self.table.evaluate(vgs, 0.0)
            assert float(i0) == 0.0
            gds_fd = (self.table(vgs, h) - self.table(vgs, -h)) / (2 * h)
            assert float(gds0) == pytest.approx(float(gds_fd), rel=1e-4)
            gm_fd = (self.table(vgs + h, 0.0) - self.table(vgs - h, 0.0)) / (2 * h)
            assert float(gm0) == pytest.approx(float(gm_fd), abs=1e-20, rel=1e-3)
            for vds in (-3e-6, 3e-6):
                _, gm, gds = self.table.evaluate(vgs, vds)
                gm_fd = (
                    self.table(vgs + h, vds) - self.table(vgs - h, vds)
                ) / (2 * h)
                gds_fd = (
                    self.table(vgs, vds + h) - self.table(vgs, vds - h)
                ) / (2 * h)
                assert float(gm) == pytest.approx(float(gm_fd), abs=1e-20, rel=1e-3)
                assert float(gds) == pytest.approx(float(gds_fd), rel=1e-3)

    @given(
        vgs=st.floats(1.25, 1.6),
        vds=st.floats(1.25, 1.6),
    )
    @settings(max_examples=30, deadline=None)
    def test_derivatives_finite_difference_outside_domain(self, vgs, vds):
        # Beyond the sampled grid the log-residue continues as a
        # tangent plane; the derivatives the solver sees must still be
        # the true derivatives of the extended surface.
        h = 1e-6
        _, gm, gds = self.table.evaluate(vgs, vds)
        gm_fd = (self.table(vgs + h, vds) - self.table(vgs - h, vds)) / (2 * h)
        gds_fd = (self.table(vgs, vds + h) - self.table(vgs, vds - h)) / (2 * h)
        scale = abs(float(gm_fd)) + abs(float(gds_fd)) + 1e-25
        assert abs(float(gm) - float(gm_fd)) / scale < 1e-2
        assert abs(float(gds) - float(gds_fd)) / scale < 1e-2
