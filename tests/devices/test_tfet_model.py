"""Tests for the calibrated TFET physics model (paper Section 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import MOSFET_SS_LIMIT_MV_PER_DEC


def j(model, vgs, vds):
    return float(np.asarray(model.current_density(vgs, vds)))


class TestCalibrationAnchors:
    def test_on_current_anchor(self, tfet_physics):
        assert tfet_physics.on_current(1.0) == pytest.approx(1e-4, rel=1e-4)

    def test_off_current_anchor(self, tfet_physics):
        assert tfet_physics.off_current(1.0) == pytest.approx(1e-17, rel=1e-4)

    def test_on_off_ratio_thirteen_decades(self, tfet_physics):
        assert tfet_physics.on_current(1.0) / tfet_physics.off_current(1.0) == pytest.approx(
            1e13, rel=1e-3
        )

    def test_subthreshold_swing_beats_mosfet_limit(self, tfet_physics):
        # The defining TFET property: sub-60 mV/dec at room temperature.
        ss = tfet_physics.subthreshold_swing_mv_per_dec()
        assert ss < MOSFET_SS_LIMIT_MV_PER_DEC


class TestForwardCharacteristic:
    @given(v1=st.floats(0.0, 1.2), v2=st.floats(0.0, 1.2))
    @settings(max_examples=50, deadline=None)
    def test_transfer_monotone(self, tfet_physics, v1, v2):
        j1 = j(tfet_physics, v1, 0.8)
        j2 = j(tfet_physics, v2, 0.8)
        assert (j2 - j1) * (v2 - v1) >= 0.0

    @given(v1=st.floats(0.0, 1.2), v2=st.floats(0.0, 1.2))
    @settings(max_examples=50, deadline=None)
    def test_output_monotone(self, tfet_physics, v1, v2):
        j1 = j(tfet_physics, 0.8, v1)
        j2 = j(tfet_physics, 0.8, v2)
        assert (j2 - j1) * (v2 - v1) >= 0.0

    def test_output_saturates_early(self, tfet_physics):
        # Tunneling devices saturate within a few hundred millivolts.
        linear = j(tfet_physics, 0.8, 0.3)
        saturated = j(tfet_physics, 0.8, 0.8)
        assert linear > 0.8 * saturated

    def test_zero_vds_zero_current(self, tfet_physics):
        assert j(tfet_physics, 0.8, 0.0) == pytest.approx(0.0, abs=1e-20)

    def test_leakage_floor_dominates_off_state(self, tfet_physics):
        tail = float(np.asarray(tfet_physics.gate_transfer_density(0.0)))
        assert tail < 0.2 * tfet_physics.leakage_floor

    def test_drain_saturation_factor_limits(self, tfet_physics):
        assert float(np.asarray(tfet_physics.drain_saturation_factor(0.0))) == 0.0
        deep = float(np.asarray(tfet_physics.drain_saturation_factor(1.0)))
        assert deep == pytest.approx(1.05, abs=0.05)

    def test_ambipolar_branch_rises_at_negative_gate_bias(self, tfet_physics):
        ambipolar = j(tfet_physics, -1.2, 1.0)
        off = j(tfet_physics, -0.2, 1.0)
        assert ambipolar > off


class TestUnidirectionalConduction:
    """The property that drives the whole paper."""

    def test_reverse_current_sign(self, tfet_physics):
        assert j(tfet_physics, 0.5, -0.5) < 0.0

    def test_gate_loses_control_at_high_reverse_bias(self, tfet_physics):
        # Fig. 2(b): at |V_DS| = 1 V the curves collapse onto the diode.
        spread = abs(j(tfet_physics, 1.0, -1.0) / j(tfet_physics, 0.0, -1.0))
        assert spread < 1.1

    def test_gate_controls_at_low_reverse_bias(self, tfet_physics):
        spread = abs(j(tfet_physics, 1.0, -0.1) / j(tfet_physics, 0.0, -0.1))
        assert spread > 1e6

    def test_reverse_diode_magnitude_near_on_current(self, tfet_physics):
        # "much smaller than the forward on current except for V_DS
        # close to 1 V": at 1 V reverse the diode is within ~an order.
        assert abs(j(tfet_physics, 0.0, -1.0)) > 0.05 * tfet_physics.on_current(1.0)

    def test_reverse_current_far_exceeds_off_current_at_mid_bias(self, tfet_physics):
        assert abs(j(tfet_physics, 0.0, -0.8)) > 1e6 * tfet_physics.off_current(1.0)

    def test_reverse_orders_of_magnitude_ladder(self, tfet_physics):
        # The static-power ladder of Sections 3/5: each 0.2 V of reverse
        # bias costs orders of magnitude.
        j05 = abs(j(tfet_physics, 0.0, -0.5))
        j08 = abs(j(tfet_physics, 0.0, -0.8))
        j10 = abs(j(tfet_physics, 0.0, -1.0))
        assert 1e3 < j08 / j05 < 1e7
        assert 1e1 < j10 / j08 < 1e4

    @given(v=st.floats(0.02, 1.2))
    @settings(max_examples=50, deadline=None)
    def test_reverse_diode_envelope_monotone_in_bias(self, tfet_physics, v):
        # With the gate off, only the p-i-n diode and the floor conduct;
        # that envelope must grow monotonically with reverse bias.
        shallow = abs(j(tfet_physics, 0.0, -v + 0.01))
        deep = abs(j(tfet_physics, 0.0, -v))
        assert deep >= shallow * 0.999

    def test_reverse_gated_to_diode_handover_dips(self, tfet_physics):
        # At high V_GS the gated component fades before the diode takes
        # over, leaving a dip in |I(V_DS)| — the flat spot that the
        # circuit solver's line search exists to handle.
        shallow = abs(j(tfet_physics, 0.8, -0.1))
        mid = abs(j(tfet_physics, 0.8, -0.55))
        deep = abs(j(tfet_physics, 0.8, -1.0))
        assert mid < shallow
        assert mid < deep

    def test_conductance_continuous_through_zero_vds(self, tfet_physics):
        eps = 5e-4
        g_fwd = j(tfet_physics, 0.8, eps) / eps
        g_rev = j(tfet_physics, 0.8, -eps) / (-eps)
        assert g_fwd == pytest.approx(g_rev, rel=0.05)


class TestModelShape:
    def test_broadcasting(self, tfet_physics):
        vgs = np.linspace(0, 1, 5)[:, None]
        vds = np.linspace(-1, 1, 7)[None, :]
        out = np.asarray(tfet_physics.current_density(vgs, vds))
        assert out.shape == (5, 7)

    def test_scalar_returns_float(self, tfet_physics):
        assert isinstance(tfet_physics.current_density(0.5, 0.5), float)

    def test_swing_raises_on_flat_window(self, tfet_physics):
        with pytest.raises(ValueError):
            tfet_physics.subthreshold_swing_mv_per_dec(vgs_low=1.19, vgs_high=1.2, vds=0.0)
