"""Tests for the quasi-1D surface-potential solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.physics.electrostatics import SurfacePotentialSolver
from repro.devices.physics.geometry import TfetDesign


@pytest.fixture(scope="module")
def solver():
    return SurfacePotentialSolver(TfetDesign(), flat_band_voltage=-0.7, channel_qfl=0.8)


class TestSurfacePotential:
    def test_flat_band_condition(self, solver):
        psi = solver.surface_potential(solver.flat_band_voltage)
        assert abs(float(psi)) < 1e-6

    def test_residual_equation_satisfied(self, solver):
        vg = np.array([-0.5, 0.0, 0.4, 1.0, 1.5])
        psi = solver.surface_potential(vg)
        residual, _ = solver._residual(psi, vg)
        assert np.max(np.abs(residual)) < 1e-9

    @given(v1=st.floats(-1.5, 2.0), v2=st.floats(-1.5, 2.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_gate_voltage(self, solver, v1, v2):
        p1 = float(solver.surface_potential(v1))
        p2 = float(solver.surface_potential(v2))
        assert (p2 - p1) * (v2 - v1) >= -1e-9

    def test_depletion_region_follows_gate(self, solver):
        # Far below inversion the lightly doped channel tracks the gate
        # almost one-to-one.
        vg = 0.2
        psi = float(solver.surface_potential(vg))
        assert psi == pytest.approx(vg - solver.flat_band_voltage, abs=0.02)

    def test_pinning_above_inversion(self, solver):
        # Once inversion charge appears the surface potential pins: the
        # incremental gain drops far below 1.
        psi_hi = float(solver.surface_potential(2.5))
        psi_hi2 = float(solver.surface_potential(3.0))
        assert (psi_hi2 - psi_hi) / 0.5 < 0.2

    def test_pinning_level_tracks_channel_qfl(self):
        lo = SurfacePotentialSolver(TfetDesign(), flat_band_voltage=-0.7, channel_qfl=0.4)
        hi = SurfacePotentialSolver(TfetDesign(), flat_band_voltage=-0.7, channel_qfl=0.9)
        psi_lo = float(lo.surface_potential(3.0))
        psi_hi = float(hi.surface_potential(3.0))
        assert psi_hi - psi_lo == pytest.approx(0.5, abs=0.1)

    def test_scalar_and_array_agree(self, solver):
        vg = np.array([0.3, 0.9])
        arr = solver.surface_potential(vg)
        assert float(solver.surface_potential(0.3)) == pytest.approx(float(arr[0]))
        assert float(solver.surface_potential(0.9)) == pytest.approx(float(arr[1]))

    def test_thinner_oxide_has_no_effect_below_inversion(self):
        # With near-intrinsic doping the depletion term is tiny, so the
        # pre-inversion surface potential barely depends on t_ox.
        thick = SurfacePotentialSolver(TfetDesign(), flat_band_voltage=-0.7)
        thin = SurfacePotentialSolver(
            TfetDesign().with_oxide_scale(0.95), flat_band_voltage=-0.7
        )
        assert float(thin.surface_potential(0.5)) == pytest.approx(
            float(thick.surface_potential(0.5)), abs=1e-3
        )


class TestGateCharge:
    def test_gate_charge_sign(self, solver):
        q_pos = float(np.asarray(solver.gate_charge_per_area(1.5)))
        q_neg = float(np.asarray(solver.gate_charge_per_area(-1.5)))
        assert q_pos > 0.0
        assert q_neg < 0.0

    def test_capacitance_positive_and_below_cox(self, solver):
        cox = solver.design.oxide_capacitance_per_area
        for vg in (-1.0, 0.0, 0.8, 2.0):
            c = float(np.asarray(solver.gate_capacitance_per_area(vg)))
            assert 0.0 <= c <= cox * 1.001

    def test_capacitance_approaches_cox_in_strong_inversion(self, solver):
        cox = solver.design.oxide_capacitance_per_area
        c = float(np.asarray(solver.gate_capacitance_per_area(3.0)))
        assert c > 0.5 * cox
