"""Tests for the Kane band-to-band tunneling expressions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.physics.kane import (
    KaneParameters,
    kane_generation_rate,
    tunneling_current_density,
)

PARAMS = KaneParameters()
LAMBDA = 3.0e-9
BANDGAP = 1.12


class TestGenerationRate:
    def test_positive(self):
        assert float(np.asarray(kane_generation_rate(3e8, PARAMS))) > 0.0

    @given(f1=st.floats(1e6, 1e10), f2=st.floats(1e6, 1e10))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_field(self, f1, f2):
        g1 = float(np.asarray(kane_generation_rate(f1, PARAMS)))
        g2 = float(np.asarray(kane_generation_rate(f2, PARAMS)))
        assert (g2 - g1) * (f2 - f1) >= 0.0

    def test_field_floor_prevents_blowup(self):
        assert np.isfinite(float(np.asarray(kane_generation_rate(0.0, PARAMS))))

    def test_exponential_suppression(self):
        weak = float(np.asarray(kane_generation_rate(1e8, PARAMS)))
        strong = float(np.asarray(kane_generation_rate(1e9, PARAMS)))
        assert strong / weak > 1e3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            KaneParameters(prefactor=-1.0)
        with pytest.raises(ValueError):
            KaneParameters(exponent_field=0.0)


class TestTunnelingCurrent:
    def current(self, window):
        return float(
            np.asarray(
                tunneling_current_density(
                    window, LAMBDA, BANDGAP, PARAMS, current_scale=1e-13
                )
            )
        )

    def test_closed_window_suppressed_exponentially(self):
        # Deep below onset each occupation width costs a factor of e
        # (the logistic occupation's exponential tail).
        near = self.current(-10 * 0.015)
        far = self.current(-11 * 0.015)
        assert near / far == pytest.approx(np.e, rel=0.1)

    def test_open_window_grows(self):
        assert self.current(0.5) > self.current(0.1) > self.current(0.0)

    @given(w=st.floats(-0.4, 0.9))
    @settings(max_examples=60, deadline=None)
    def test_smooth_through_onset(self, w):
        h = 1e-7
        lo = self.current(w - h)
        hi = self.current(w + h)
        # No jumps: relative change across an infinitesimal interval is tiny.
        assert abs(hi - lo) <= 0.01 * (abs(hi) + abs(lo))

    @given(w1=st.floats(-0.3, 0.9), w2=st.floats(-0.3, 0.9))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_window(self, w1, w2):
        c1, c2 = self.current(w1), self.current(w2)
        assert (c2 - c1) * (w2 - w1) >= 0.0

    def test_scales_linearly_with_current_scale(self):
        base = tunneling_current_density(0.3, LAMBDA, BANDGAP, PARAMS, current_scale=1e-13)
        doubled = tunneling_current_density(0.3, LAMBDA, BANDGAP, PARAMS, current_scale=2e-13)
        assert float(np.asarray(doubled)) == pytest.approx(2 * float(np.asarray(base)))

    def test_shorter_screening_length_gives_more_current(self):
        tight = tunneling_current_density(0.3, 2e-9, BANDGAP, PARAMS, current_scale=1e-13)
        loose = tunneling_current_density(0.3, 4e-9, BANDGAP, PARAMS, current_scale=1e-13)
        assert float(np.asarray(tight)) > float(np.asarray(loose))
