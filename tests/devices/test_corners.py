"""Tests for process-corner device cards."""

from __future__ import annotations

import pytest

from repro.devices.corners import CORNERS, Corner, corner_device, corner_device_set
from repro.devices.library import tfet_device


class TestCornerCatalog:
    def test_five_standard_corners(self):
        assert set(CORNERS) == {"tt", "ff", "ss", "fs", "sf"}

    def test_typical_corner_is_nominal(self):
        ds = corner_device_set("tt")
        assert ds.pulldown_left is tfet_device()
        assert ds.access_left is tfet_device()

    def test_fast_devices_are_stronger(self):
        fast = corner_device(CORNERS["ff"].inverter_scale)
        slow = corner_device(CORNERS["ss"].inverter_scale)
        nominal = tfet_device()
        assert fast.on_current(1.0) > nominal.on_current(1.0) > slow.on_current(1.0)

    def test_mixed_corners_split_inverter_and_access(self):
        ds = corner_device_set("fs")
        assert ds.pulldown_left.on_current(1.0) > ds.access_left.on_current(1.0)
        ds = corner_device_set("sf")
        assert ds.pulldown_left.on_current(1.0) < ds.access_left.on_current(1.0)

    def test_unknown_corner_raises_and_lists_known_names(self):
        with pytest.raises(KeyError, match="ff.*fs.*sf.*ss.*tt"):
            corner_device_set("xx")

    def test_corner_object_accepted_directly(self):
        by_name = corner_device_set("ff")
        by_object = corner_device_set(CORNERS["ff"])
        assert by_object.pulldown_left is by_name.pulldown_left
        assert by_object.access_left is by_name.access_left

    def test_custom_corner_object(self):
        custom = Corner("hot", 1.02, 0.98)
        ds = corner_device_set(custom)
        assert ds.pulldown_left is corner_device(1.02)
        assert ds.access_left is corner_device(0.98)
        assert ds.read_buffer is ds.access_left

    def test_describe(self):
        assert "fast inverters" in CORNERS["fs"].describe()
        assert "slow access" in CORNERS["fs"].describe()


class TestCornersOnCells:
    def test_write_worst_case_is_fs(self):
        """Strong pull-downs + weak access = hardest write contest."""
        from repro.analysis.stability import critical_wordline_pulse
        from repro.sram import AccessConfig, CellSizing, Tfet6TCell

        sizing = CellSizing().with_beta(0.6)

        def wl_crit(corner):
            cell = Tfet6TCell(
                sizing, AccessConfig.INWARD_P, devices=corner_device_set(corner)
            )
            return critical_wordline_pulse(cell, 0.8)

        assert wl_crit("fs") > wl_crit("tt") > wl_crit("sf")

    def test_read_worst_case_is_sf(self):
        """Weak pull-downs + strong access = biggest read disturb."""
        from repro.analysis.stability import dynamic_read_noise_margin
        from repro.sram import AccessConfig, CellSizing, Tfet6TCell

        sizing = CellSizing().with_beta(0.6)

        def drnm(corner):
            cell = Tfet6TCell(
                sizing, AccessConfig.INWARD_P, devices=corner_device_set(corner)
            )
            return dynamic_read_noise_margin(cell.read_testbench(0.8))

        assert drnm("sf") < drnm("tt") < drnm("fs")
