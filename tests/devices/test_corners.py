"""Tests for process-corner device cards."""

from __future__ import annotations

import pytest

from repro.devices.corners import CORNERS, Corner, corner_device, corner_device_set
from repro.devices.library import tfet_device


class TestCornerCatalog:
    def test_five_standard_corners(self):
        assert set(CORNERS) == {"tt", "ff", "ss", "fs", "sf"}

    def test_typical_corner_is_nominal(self):
        ds = corner_device_set("tt")
        assert ds.pulldown_left is tfet_device()
        assert ds.access_left is tfet_device()

    def test_fast_devices_are_stronger(self):
        fast = corner_device(CORNERS["ff"].inverter_scale)
        slow = corner_device(CORNERS["ss"].inverter_scale)
        nominal = tfet_device()
        assert fast.on_current(1.0) > nominal.on_current(1.0) > slow.on_current(1.0)

    def test_mixed_corners_split_inverter_and_access(self):
        ds = corner_device_set("fs")
        assert ds.pulldown_left.on_current(1.0) > ds.access_left.on_current(1.0)
        ds = corner_device_set("sf")
        assert ds.pulldown_left.on_current(1.0) < ds.access_left.on_current(1.0)

    def test_unknown_corner_raises(self):
        with pytest.raises(KeyError, match="unknown corner"):
            corner_device_set("xx")

    def test_describe(self):
        assert "fast inverters" in CORNERS["fs"].describe()
        assert "slow access" in CORNERS["fs"].describe()


class TestCornersOnCells:
    def test_write_worst_case_is_fs(self):
        """Strong pull-downs + weak access = hardest write contest."""
        from repro.analysis.stability import critical_wordline_pulse
        from repro.sram import AccessConfig, CellSizing, Tfet6TCell

        sizing = CellSizing().with_beta(0.6)

        def wl_crit(corner):
            cell = Tfet6TCell(
                sizing, AccessConfig.INWARD_P, devices=corner_device_set(corner)
            )
            return critical_wordline_pulse(cell, 0.8)

        assert wl_crit("fs") > wl_crit("tt") > wl_crit("sf")

    def test_read_worst_case_is_sf(self):
        """Weak pull-downs + strong access = biggest read disturb."""
        from repro.analysis.stability import dynamic_read_noise_margin
        from repro.sram import AccessConfig, CellSizing, Tfet6TCell

        sizing = CellSizing().with_beta(0.6)

        def drnm(corner):
            cell = Tfet6TCell(
                sizing, AccessConfig.INWARD_P, devices=corner_device_set(corner)
            )
            return dynamic_read_noise_margin(cell.read_testbench(0.8))

        assert drnm("sf") < drnm("tt") < drnm("fs")
