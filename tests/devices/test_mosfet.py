"""Tests for the analytic 32 nm MOSFET baseline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.mosfet import (
    MosfetModel,
    MosfetParameters,
    MosfetTargets,
    calibrate_mosfet,
    mosfet_charges,
)


def i(model, vgs, vds):
    return float(np.asarray(model.current_density(vgs, vds)))


class TestCalibration:
    def test_nmos_anchors(self, nmos):
        assert nmos.on_current(0.8) == pytest.approx(4e-4, rel=1e-6)
        assert nmos.off_current(0.8) == pytest.approx(1e-11, rel=1e-6)

    def test_pmos_anchors(self, pmos):
        assert pmos.on_current(0.8) == pytest.approx(2e-4, rel=1e-6)
        assert pmos.off_current(0.8) == pytest.approx(1e-11, rel=1e-6)

    def test_custom_targets(self):
        model = calibrate_mosfet(
            MosfetModel(), MosfetTargets(on_current=1e-4, off_current=1e-10)
        )
        assert model.on_current(0.8) == pytest.approx(1e-4, rel=1e-6)
        assert model.off_current(0.8) == pytest.approx(1e-10, rel=1e-6)

    def test_pmos_weaker_than_nmos(self, nmos, pmos):
        assert pmos.on_current(0.8) < nmos.on_current(0.8)


class TestSubthreshold:
    def test_swing_near_classic_lp_value(self, nmos):
        # A 32 nm low-power device swings ~85-100 mV/dec — above the
        # 60 mV/dec limit and far above the TFET.
        ss = nmos.subthreshold_swing_mv_per_dec()
        assert 70.0 < ss < 110.0

    def test_dibl_raises_leakage_with_drain_bias(self, nmos):
        assert i(nmos, 0.0, 0.9) > i(nmos, 0.0, 0.5)


class TestSymmetry:
    """MOSFETs conduct in both directions — the property TFETs lack."""

    @given(vg=st.floats(0.0, 1.0), vd=st.floats(0.01, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_source_drain_swap_symmetry(self, nmos, vg, vd):
        forward = i(nmos, vg, vd)
        swapped = i(nmos, vg - vd, -vd)
        assert swapped == pytest.approx(-forward, rel=1e-9, abs=1e-30)

    def test_reverse_on_current_comparable_to_forward(self, nmos):
        # Unlike the TFET, driving the device backwards still conducts.
        forward = i(nmos, 0.8, 0.8)
        backward = abs(i(nmos, 0.0, -0.8))  # gate at source level after swap
        assert backward > 0.1 * forward

    def test_zero_vds_zero_current(self, nmos):
        assert i(nmos, 0.6, 0.0) == pytest.approx(0.0, abs=1e-25)


class TestShape:
    @given(v1=st.floats(0.0, 1.0), v2=st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_transfer_monotone(self, nmos, v1, v2):
        i1, i2 = i(nmos, v1, 0.8), i(nmos, v2, 0.8)
        assert (i2 - i1) * (v2 - v1) >= 0.0

    @given(v1=st.floats(0.0, 1.0), v2=st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_output_monotone(self, nmos, v1, v2):
        i1, i2 = i(nmos, 0.8, v1), i(nmos, 0.8, v2)
        assert (i2 - i1) * (v2 - v1) >= 0.0

    def test_saturation(self, nmos):
        # Beyond vdsat the output current grows only via CLM.
        ratio = i(nmos, 0.8, 0.8) / i(nmos, 0.8, 0.5)
        assert 1.0 < ratio < 1.3

    @given(vgs=st.floats(-0.2, 1.0), vds=st.floats(-1.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_evaluate_density_matches_finite_difference(self, nmos, vgs, vds):
        _, gm, gds = nmos.evaluate_density(vgs, vds)
        h = 1e-6
        gm_fd = (i(nmos, vgs + h, vds) - i(nmos, vgs - h, vds)) / (2 * h)
        gds_fd = (i(nmos, vgs, vds + h) - i(nmos, vgs, vds - h)) / (2 * h)
        scale = abs(gm_fd) + abs(gds_fd) + 1e-20
        assert abs(float(gm) - gm_fd) / scale < 0.02
        assert abs(float(gds) - gds_fd) / scale < 0.02

    def test_broadcasting(self, nmos):
        out = np.asarray(nmos.current_density(np.linspace(0, 1, 4)[:, None], 0.8))
        assert out.shape == (4, 1)


class TestCharges:
    def test_meyer_partition_symmetric(self):
        ch = mosfet_charges(0.45)
        assert ch.cgs_per_um == ch.cgd_per_um

    def test_capacitance_grows_past_threshold(self):
        ch = mosfet_charges(0.45)
        below = float(np.asarray(ch.cgs_per_um.capacitance(0.0)))
        above = float(np.asarray(ch.cgs_per_um.capacitance(1.0)))
        assert above > 2.0 * below


class TestParameters:
    def test_defaults_reasonable(self):
        p = MosfetParameters()
        assert 0.2 < p.threshold_voltage < 0.7
        assert p.subthreshold_slope_factor > 1.0
