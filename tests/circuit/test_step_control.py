"""Regression: breakpoint clamping must not collapse the working step.

The controller keeps a "working step" ``h`` that grows while Newton
converges easily.  Landing exactly on a waveform breakpoint clamps one
*attempt* to the remaining sliver; the old controller then adopted that
sliver as the new working step, forcing a 1.4x-per-step regrowth climb
after every late breakpoint (dozens of sub-picosecond steps in the
middle of a quiet waveform).  Only a shrink that happened *during* the
attempt (Newton failure, dv limit) may pull ``h`` down.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.netlist import Circuit
from repro.circuit.transient import TransientOptions, simulate_transient
from repro.circuit.waveforms import Pulse


def late_edge_circuit():
    # Small amplitude (0.04 V < the 60 mV dv limit) so every step —
    # including the ones crossing the edge — is accepted on the first
    # attempt; any tiny step in the result therefore comes from the
    # controller, not from rejections.
    c = Circuit("late-edge")
    c.add_voltage_source(
        "vin", "in", "0",
        Pulse(0.0, 0.04, t_start=1.0000005e-9, width=0.5e-9, t_edge=1e-12),
    )
    c.add_resistor("in", "out", 1e3)
    c.add_capacitor("out", "0", 1e-15)
    return c


def test_working_step_survives_breakpoint_clamp():
    options = TransientOptions()
    res = simulate_transient(late_edge_circuit(), 1.3e-9, options=options)
    dt = np.diff(res.times)
    t_edge_end = 1.0000005e-9 + 1e-12
    after = np.flatnonzero(res.times >= t_edge_end - 1e-21)[0]
    # The step right after the edge breakpoints must resume at the full
    # working step (max_step here), not regrow from the ~1 ps sliver.
    assert dt[after] > 0.5 * options.max_step, (
        f"controller collapsed to {dt[after]:.3e} s after the breakpoint"
    )
    # Globally: the only sub-0.5 ps steps allowed are the breakpoint
    # slivers themselves.  The old controller produced a ~12-step
    # regrowth ramp here.
    assert int(np.sum(dt < 0.5e-12)) <= 3


def test_rejection_shrink_still_honoured():
    # A full-swing edge does trip the dv limit; the controller must
    # still shrink for genuinely hard steps (no accuracy regression
    # from the clamp fix).
    c = Circuit("hard-edge")
    c.add_voltage_source(
        "vin", "in", "0", Pulse(0.0, 0.8, t_start=2e-10, width=2e-10, t_edge=1e-12)
    )
    c.add_resistor("in", "out", 1e3)
    c.add_capacitor("out", "0", 1e-15)
    res = simulate_transient(c, 5e-10)
    dv = np.abs(np.diff(res.voltage("out")))
    assert float(np.max(dv)) <= 0.06 + 1e-9
