"""``MnaSystem.invalidate_caches``: device mutation on a reused system.

The per-call guards catch waveform swaps (identity-keyed source cache)
and element addition/removal (topology key), but swapping a device in
an existing list slot — the corners/variation reuse idiom — changes
the answer at the same element count, which no key can see.  The
contract is explicit: mutate, then call ``invalidate_caches()``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.circuit.mna import MnaSystem
from repro.circuit.mna_reference import ReferenceMnaSystem
from repro.circuit.netlist import Circuit


@pytest.fixture
def loaded_inverter(tfet):
    c = Circuit("inv")
    c.add_voltage_source("vdd", "vdd", "0", 0.7)
    c.add_voltage_source("vin", "in", "0", 0.35)
    c.add_transistor("mp", "out", "in", "vdd", tfet, polarity="p", width_um=0.2)
    c.add_transistor("mn", "out", "in", "0", tfet, polarity="n", width_um=0.1)
    c.add_capacitor("out", "0", 1e-16, name="cl")
    return c


def residual(system, x):
    return system.assemble_residual(x, 0.0).copy()


def probe_vector(circuit):
    size = circuit.node_count + len(circuit.voltage_sources)
    return np.linspace(0.1, 0.6, size)


class TestInvalidateCaches:
    def test_width_swap_is_stale_until_invalidated(self, loaded_inverter):
        c = loaded_inverter
        system = MnaSystem(c)
        x = probe_vector(c)
        before = residual(system, x)

        c.transistors[1] = replace(c.transistors[1], width_um=0.4)
        # Same element count: the stale compiled stamp still answers.
        np.testing.assert_allclose(residual(system, x), before)

        system.invalidate_caches()
        after = residual(system, x)
        assert float(np.max(np.abs(after - before))) > 0.0
        np.testing.assert_allclose(
            after, ReferenceMnaSystem(c).assemble_residual(x, 0.0),
            rtol=1e-12, atol=1e-18,
        )

    def test_capacitor_charge_swap(self, loaded_inverter):
        c = loaded_inverter
        system = MnaSystem(c)
        x = probe_vector(c)
        q_before = system.capacitor_charges(x).copy()

        from repro.devices.charges import LinearCharge

        c.capacitors[0] = replace(c.capacitors[0], charge=LinearCharge(5e-16))
        system.invalidate_caches()
        q_after = system.capacitor_charges(x)
        np.testing.assert_allclose(q_after, 5.0 * q_before, rtol=1e-12)

    def test_invalidation_preserves_equivalence_with_fresh_system(self, loaded_inverter):
        c = loaded_inverter
        system = MnaSystem(c)
        x = probe_vector(c)
        residual(system, x)  # populate the last-point caches

        c.transistors[0] = replace(c.transistors[0], width_um=0.33)
        system.invalidate_caches()
        f, jac = system.assemble(x, 0.0, copy=True)
        fresh_f, fresh_jac = MnaSystem(c).assemble(x, 0.0, copy=True)
        np.testing.assert_array_equal(f, fresh_f)
        np.testing.assert_array_equal(jac, fresh_jac)
