"""Tests for the trapezoidal integration option."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.transient import TransientOptions, simulate_transient
from repro.circuit.waveforms import PiecewiseLinear, Pulse


def rc_step(r=1e4, c=1e-13):
    ckt = Circuit("rc")
    ckt.add_voltage_source(
        "vin", "in", "0", Pulse(0.0, 1.0, t_start=1e-10, width=1e-7, t_edge=1e-12)
    )
    ckt.add_resistor("in", "out", r)
    ckt.add_capacitor("out", "0", c)
    return ckt


def rc_error(method: str, max_step_v: float) -> float:
    options = TransientOptions(method=method, max_voltage_step=max_step_v)
    res = simulate_transient(rc_step(), 3e-9, options=options)
    tau = 1e-9
    worst = 0.0
    for n_tau in (0.5, 1.0, 1.5, 2.0):
        t = 1.01e-10 + n_tau * tau
        truth = 1.0 - math.exp(-n_tau)
        worst = max(worst, abs(res.at("out", t) - truth))
    return worst


class TestAccuracy:
    def test_trapezoidal_beats_backward_euler(self):
        assert rc_error("trapezoidal", 0.1) < 0.3 * rc_error("backward_euler", 0.1)

    def test_trapezoidal_final_value(self):
        res = simulate_transient(
            rc_step(), 8e-9, options=TransientOptions(method="trapezoidal")
        )
        assert res.final("out") == pytest.approx(1.0, abs=2e-3)

    def test_triangle_wave_tracked(self):
        ckt = Circuit()
        ckt.add_voltage_source(
            "vin",
            "in",
            "0",
            PiecewiseLinear((0.0, 1e-9, 2e-9), (0.0, 1.0, 0.0)),
        )
        ckt.add_resistor("in", "out", 1e2)  # tau = 10 ps << ramp
        ckt.add_capacitor("out", "0", 1e-13)
        res = simulate_transient(
            ckt, 2e-9, options=TransientOptions(method="trapezoidal")
        )
        assert res.at("out", 1.0e-9) == pytest.approx(1.0, abs=0.03)
        assert res.at("out", 0.5e-9) == pytest.approx(0.5, abs=0.03)


class TestStateHandling:
    def test_method_validation(self):
        with pytest.raises(ValueError, match="method"):
            TransientOptions(method="gear2")

    def test_both_methods_agree_on_slow_circuit(self):
        kwargs = dict(initial_conditions=None)
        be = simulate_transient(rc_step(), 5e-9, options=TransientOptions())
        tr = simulate_transient(
            rc_step(), 5e-9, options=TransientOptions(method="trapezoidal")
        )
        for t in np.linspace(2e-9, 5e-9, 7):
            assert be.at("out", t) == pytest.approx(tr.at("out", t), abs=0.02)

    def test_trapezoidal_on_sram_write(self):
        # The default remains BE, but TR must still resolve a flip.
        from repro.sram import AccessConfig, CellSizing, Tfet6TCell

        cell = Tfet6TCell(CellSizing().with_beta(0.5), access=AccessConfig.INWARD_P)
        bench = cell.write_testbench(0.8, 2e-9)
        res = simulate_transient(
            bench.circuit,
            bench.settle_stop(),
            initial_conditions=bench.initial_conditions,
            options=TransientOptions(method="trapezoidal"),
        )
        assert res.final("qb") > res.final("q")
