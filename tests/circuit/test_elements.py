"""Validation tests for circuit element dataclasses."""

from __future__ import annotations

import pytest

from repro.circuit.elements import (
    GROUND,
    Capacitor,
    CurrentSource,
    Resistor,
    Transistor,
    VoltageSource,
)
from repro.circuit.waveforms import Constant
from repro.devices.charges import LinearCharge
from repro.devices.library import tfet_device


class TestResistor:
    def test_valid(self):
        r = Resistor(0, GROUND, 1e3)
        assert r.resistance == 1e3

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ValueError):
            Resistor(0, 1, 0.0)

    def test_rejects_invalid_node(self):
        with pytest.raises(ValueError):
            Resistor(-2, 0, 1.0)


class TestCapacitor:
    def test_valid(self):
        c = Capacitor(0, GROUND, LinearCharge(1e-15), scale=2.0, name="c1")
        assert c.scale == 2.0

    def test_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            Capacitor(0, 1, LinearCharge(1e-15), scale=-1.0)


class TestSources:
    def test_voltage_source_dc_helper(self):
        src = VoltageSource.dc(0, GROUND, 1.2, "vdd")
        assert src.waveform.value(0.0) == 1.2
        assert src.name == "vdd"

    def test_current_source_nodes_validated(self):
        with pytest.raises(ValueError):
            CurrentSource(-5, 0, Constant(1e-6))


class TestTransistor:
    def test_valid(self):
        t = Transistor(0, 1, GROUND, tfet_device(), "p", 0.2, "mp")
        assert t.polarity == "p"

    def test_rejects_bad_polarity(self):
        with pytest.raises(ValueError):
            Transistor(0, 1, 2, tfet_device(), "x", 0.1)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            Transistor(0, 1, 2, tfet_device(), "n", -0.1)

    def test_rejects_invalid_terminal(self):
        with pytest.raises(ValueError):
            Transistor(0, -3, 2, tfet_device(), "n", 0.1)
