"""Stacked-batch Newton must be bit-identical to the scalar solvers.

The generators in :mod:`repro.circuit.batch` are transcriptions of
``solve_dc`` / ``simulate_transient`` — same tolerances, same fallback
ladder, same step control — so a batch of K variants driven by
:func:`run_generators` must reproduce the scalar waveforms *exactly*
(``tobytes`` equality), not merely to tolerance.  Error isolation and
the shared-topology precondition are pinned here too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.batch import (
    BatchMember,
    run_generators,
    solve_dc_gen,
    transient_gen,
)
from repro.circuit.dcop import solve_dc
from repro.circuit.netlist import Circuit
from repro.circuit.transient import simulate_transient
from repro.circuit.waveforms import Pulse
from repro.devices.charges import SmoothStepCharge
from repro.devices.library import tfet_device
from repro.telemetry import core as telemetry

T_STOP = 2e-9


def _inverter(width_n: float, cload: float) -> Circuit:
    """A loaded TFET inverter — small, nonlinear, fast to integrate."""
    c = Circuit("inv")
    model = tfet_device()
    c.add_voltage_source("vdd", "vdd", "0", 0.8)
    c.add_voltage_source(
        "vin", "in", "0", Pulse(0.0, 0.8, t_start=2e-10, width=1e-9, t_edge=5e-11)
    )
    c.add_transistor("mp", "out", "in", "vdd", model, polarity="p", width_um=0.2)
    c.add_transistor("mn", "out", "in", "0", model, polarity="n", width_um=width_n)
    c.add_capacitor("out", "0", SmoothStepCharge(1e-16, 5e-16, 0.4, 0.08))
    c.add_capacitor("out", "0", cload)
    c.add_resistor("out", "0", 1e8)
    return c


VARIANTS = [(0.1, 1e-16), (0.14, 2e-16), (0.2, 5e-17), (0.08, 3e-16)]


def test_batched_transient_bit_identical_to_scalar():
    scalar = [simulate_transient(_inverter(*v), T_STOP) for v in VARIANTS]

    pairs = []
    for k, v in enumerate(VARIANTS):
        member = BatchMember(label=f"v{k}")
        pairs.append((member, transient_gen(member, _inverter(*v), T_STOP)))
    with telemetry.enabled() as tel:
        outcomes = run_generators(pairs)
        counters = dict(tel.counters)

    assert [o.status for o in outcomes] == ["ok"] * len(VARIANTS)
    for ref, outcome in zip(scalar, outcomes):
        result = outcome.value
        assert result.times.tobytes() == ref.times.tobytes()
        assert result.states.tobytes() == ref.states.tobytes()
    assert counters["batch.runs"] == 1
    assert counters["batch.members"] == len(VARIANTS)
    assert counters["batch.ticks"] >= 1
    # One stacked assembly per member per tick, minus early finishers.
    assert counters["batch.member_assemblies"] <= (
        counters["batch.ticks"] * len(VARIANTS)
    )


def test_batched_dc_bit_identical_to_scalar():
    pairs = []
    for k, v in enumerate(VARIANTS):
        member = BatchMember(label=f"v{k}")
        pairs.append((member, solve_dc_gen(member, _inverter(*v))))
    outcomes = run_generators(pairs)
    for v, outcome in zip(VARIANTS, outcomes):
        assert outcome.status == "ok"
        ref = solve_dc(_inverter(*v))
        assert outcome.value.x.tobytes() == ref.x.tobytes()


def test_member_error_is_isolated():
    """One failing member must not disturb the survivors' results."""

    def exploding():
        raise RuntimeError("boom")
        yield  # pragma: no cover - makes this a generator

    good = BatchMember(label="good")
    bad = BatchMember(label="bad")
    pairs = [
        (good, transient_gen(good, _inverter(*VARIANTS[0]), T_STOP)),
        (bad, exploding()),
    ]
    outcomes = run_generators(pairs)
    assert outcomes[0].status == "ok"
    assert outcomes[1].status == "error"
    assert isinstance(outcomes[1].error, RuntimeError)

    ref = simulate_transient(_inverter(*VARIANTS[0]), T_STOP)
    assert outcomes[0].value.states.tobytes() == ref.states.tobytes()


def test_generator_returning_before_first_yield_is_ok():
    def immediate():
        return 42
        yield  # pragma: no cover - makes this a generator

    outcomes = run_generators([(BatchMember(label="fast"), immediate())])
    assert outcomes[0].status == "ok"
    assert outcomes[0].value == 42


def test_mixed_topology_members_rejected():
    small = _inverter(*VARIANTS[0])
    big = _inverter(*VARIANTS[1])
    big.add_resistor("out", "extra", 1e6)
    big.add_capacitor("extra", "0", 1e-16)

    a = BatchMember(label="a")
    b = BatchMember(label="b")
    pairs = [
        (a, transient_gen(a, small, T_STOP)),
        (b, transient_gen(b, big, T_STOP)),
    ]
    with pytest.raises(ValueError, match="share one topology"):
        run_generators(pairs)
