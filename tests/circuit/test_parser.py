"""Tests for the SPICE-subset netlist parser."""

from __future__ import annotations

import pytest

from repro.circuit.dcop import solve_dc
from repro.circuit.parser import NetlistSyntaxError, parse_netlist, parse_value
from repro.circuit.transient import simulate_transient
from repro.circuit.waveforms import Constant, PiecewiseLinear, Pulse


class TestParseValue:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("10k", 1e4),
            ("1.5f", 1.5e-15),
            ("0.8", 0.8),
            ("100n", 1e-7),
            ("2meg", 2e6),
            ("3u", 3e-6),
            ("-5m", -5e-3),
            ("1e-12", 1e-12),
            ("2.5E3", 2500.0),
        ],
    )
    def test_suffixes(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_value("abc")
        with pytest.raises(ValueError):
            parse_value("1x")


class TestParseCards:
    def test_divider_deck(self):
        deck = """* resistive divider
V1 in 0 DC 1.0
R1 in mid 1k
R2 mid 0 3k
.end
"""
        circuit = parse_netlist(deck)
        assert circuit.title == "resistive divider"
        op = solve_dc(circuit)
        assert op.voltage("mid") == pytest.approx(0.75, rel=1e-6)

    def test_comments_and_blanks_skipped(self):
        deck = """
* a comment
V1 a 0 1.0

R1 a 0 1k  * trailing comment
"""
        circuit = parse_netlist(deck)
        assert len(circuit.resistors) == 1

    def test_pulse_source(self):
        circuit = parse_netlist("V1 a 0 PULSE(0 0.8 1n 2n 10p)\n")
        wf = circuit.voltage_sources[0].waveform
        assert isinstance(wf, Pulse)
        assert wf.active == pytest.approx(0.8)
        assert wf.t_start == pytest.approx(1e-9)
        assert wf.t_edge == pytest.approx(1e-11)

    def test_pwl_source(self):
        circuit = parse_netlist("V1 a 0 PWL(0 0 1n 0.8 2n 0.4)\n")
        wf = circuit.voltage_sources[0].waveform
        assert isinstance(wf, PiecewiseLinear)
        assert wf.value(1e-9) == pytest.approx(0.8)

    def test_dc_keyword_optional(self):
        circuit = parse_netlist("V1 a 0 0.8\n")
        assert isinstance(circuit.voltage_sources[0].waveform, Constant)

    def test_current_source(self):
        circuit = parse_netlist("I1 a b DC 1u\n")
        assert circuit.current_sources[0].waveform.value(0.0) == pytest.approx(1e-6)

    def test_transistor_with_width(self):
        circuit = parse_netlist("M1 d g s ntfet W=0.2u\n")
        t = circuit.transistors[0]
        assert t.polarity == "n"
        assert t.width_um == pytest.approx(0.2)

    def test_unknown_model_rejected(self):
        with pytest.raises(NetlistSyntaxError, match="unknown model"):
            parse_netlist("M1 d g s bjt\n")

    def test_unknown_card_rejected(self):
        with pytest.raises(NetlistSyntaxError) as err:
            parse_netlist("Q1 a b c\n")
        assert err.value.line_number == 1

    def test_dot_cards_rejected(self):
        with pytest.raises(NetlistSyntaxError, match="dot-card"):
            parse_netlist(".tran 1n 10n\n")

    def test_short_card_reports_line(self):
        with pytest.raises(NetlistSyntaxError) as err:
            parse_netlist("V1 a 0 1.0\nR1 in\n")
        assert err.value.line_number == 2


class TestEndToEnd:
    def test_tfet_inverter_deck_simulates(self):
        deck = """* tfet inverter
VDD vdd 0 DC 0.8
VIN in 0 PULSE(0 0.8 0.2n 2n)
MP out in vdd ptfet W=0.1u
MN out in 0 ntfet W=0.1u
CL out 0 1f
.end
"""
        circuit = parse_netlist(deck)
        result = simulate_transient(circuit, 3e-9, initial_conditions={"out": 0.8})
        assert result.at("out", 0.1e-9) == pytest.approx(0.8, abs=0.02)
        assert result.at("out", 2e-9) == pytest.approx(0.0, abs=0.05)

    def test_extra_models(self):
        from repro.devices.library import tfet_device

        circuit = parse_netlist(
            "M1 d g s fancy W=0.3u\n", extra_models={"fancy": (tfet_device(), "p")}
        )
        assert circuit.transistors[0].polarity == "p"
