"""Tests for stimulus waveforms."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.waveforms import Constant, PiecewiseLinear, Pulse, pulse_train


class TestConstant:
    def test_value_everywhere(self):
        w = Constant(0.8)
        assert w.value(0.0) == 0.8
        assert w.value(1e-6) == 0.8

    def test_no_breakpoints(self):
        assert Constant(1.0).breakpoints() == ()


class TestPiecewiseLinear:
    def test_interpolates_between_corners(self):
        w = PiecewiseLinear((0.0, 1e-9), (0.0, 1.0))
        assert w.value(0.5e-9) == pytest.approx(0.5)

    def test_holds_outside_corners(self):
        w = PiecewiseLinear((1e-9, 2e-9), (0.2, 0.9))
        assert w.value(0.0) == pytest.approx(0.2)
        assert w.value(5e-9) == pytest.approx(0.9)

    def test_breakpoints_are_corners(self):
        w = PiecewiseLinear((0.0, 1e-9, 3e-9), (0.0, 1.0, 0.5))
        assert w.breakpoints() == (0.0, 1e-9, 3e-9)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinear((0.0, 1.0), (0.0,))

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinear((0.0, 0.0), (0.0, 1.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinear((), ())


class TestPulse:
    def make(self):
        return Pulse(base=0.8, active=0.0, t_start=1e-10, width=5e-10, t_edge=5e-12)

    def test_levels(self):
        p = self.make()
        assert p.value(0.0) == 0.8
        assert p.value(3e-10) == 0.0
        assert p.value(1e-9) == 0.8

    def test_edges_are_linear_ramps(self):
        p = self.make()
        assert p.value(1e-10 + 2.5e-12) == pytest.approx(0.4)

    def test_breakpoints_cover_all_corners(self):
        p = self.make()
        bps = p.breakpoints()
        assert len(bps) == 4
        assert bps[0] == 1e-10
        assert bps[-1] == pytest.approx(1e-10 + 2 * 5e-12 + 5e-10)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            Pulse(0.0, 1.0, 0.0, -1e-10)

    def test_zero_edge_rejected(self):
        with pytest.raises(ValueError):
            Pulse(0.0, 1.0, 0.0, 1e-10, t_edge=0.0)

    @given(t=st.floats(0.0, 2e-9))
    @settings(max_examples=50, deadline=None)
    def test_value_always_between_levels(self, t):
        p = self.make()
        assert 0.0 - 1e-12 <= p.value(t) <= 0.8 + 1e-12

    def test_zero_width_pulse_is_a_spike(self):
        p = Pulse(0.0, 1.0, t_start=1e-10, width=0.0, t_edge=5e-12)
        assert p.value(1.05e-10) == pytest.approx(1.0)


class TestPulseTrain:
    def test_builds_staircase(self):
        w = pulse_train(0.0, [(0.8, 1e-10), (0.4, 5e-10)])
        assert w.value(0.0) == 0.0
        assert w.value(3e-10) == pytest.approx(0.8)
        assert w.value(1e-9) == pytest.approx(0.4)

    def test_overlapping_corners_rejected(self):
        with pytest.raises(ValueError):
            pulse_train(0.0, [(1.0, 1e-11), (0.0, 1.2e-11)], t_edge=5e-12)
