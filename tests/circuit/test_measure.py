"""Tests for waveform measurements."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuit.measure import (
    cross_time,
    fall_time,
    overshoot,
    propagation_delay,
    pulse_width,
    rise_time,
    settling_time,
)
from repro.circuit.netlist import Circuit
from repro.circuit.results import TransientResult


def synthetic_result(times, **node_waves):
    c = Circuit()
    for name in node_waves:
        c.node(name)
    states = np.column_stack([np.asarray(v, dtype=float) for v in node_waves.values()])
    return TransientResult(c, np.asarray(times, dtype=float), states)


@pytest.fixture
def ramp():
    # "a" ramps 0->1 V over 1 ns starting at 1 ns; "b" follows 0.5 ns later.
    t = np.linspace(0.0, 4e-9, 401)
    a = np.clip((t - 1e-9) / 1e-9, 0.0, 1.0)
    b = np.clip((t - 1.5e-9) / 1e-9, 0.0, 1.0)
    return synthetic_result(t, a=a, b=b)


class TestCrossTime:
    def test_linear_interpolation(self, ramp):
        assert cross_time(ramp, "a", 0.5) == pytest.approx(1.5e-9, rel=1e-6)

    def test_never_crossing_is_inf(self, ramp):
        assert math.isinf(cross_time(ramp, "a", 2.0))

    def test_after_parameter(self, ramp):
        assert math.isinf(cross_time(ramp, "a", 0.5, after=3e-9))

    def test_direction_filter(self):
        t = np.linspace(0, 4e-9, 401)
        v = np.where((t > 1e-9) & (t < 3e-9), 1.0, 0.0)
        res = synthetic_result(t, x=v)
        t_rise = cross_time(res, "x", 0.5, direction="rise")
        t_fall = cross_time(res, "x", 0.5, direction="fall")
        assert t_rise < t_fall
        assert t_fall == pytest.approx(3e-9, abs=2e-11)

    def test_occurrence_validation(self, ramp):
        with pytest.raises(ValueError):
            cross_time(ramp, "a", 0.5, occurrence=0)
        with pytest.raises(ValueError):
            cross_time(ramp, "a", 0.5, direction="sideways")


class TestEdgeTimes:
    def test_rise_time_of_linear_ramp(self, ramp):
        # 10 % -> 90 % of a 1 ns full-swing ramp is 0.8 ns.
        assert rise_time(ramp, "a", 0.0, 1.0) == pytest.approx(0.8e-9, rel=1e-3)

    def test_fall_time(self):
        t = np.linspace(0, 2e-9, 201)
        v = np.clip(1.0 - (t - 0.5e-9) / 1e-9, 0.0, 1.0)
        res = synthetic_result(t, y=v)
        assert fall_time(res, "y", 0.0, 1.0) == pytest.approx(0.8e-9, rel=1e-3)

    def test_rise_time_inf_when_incomplete(self):
        t = np.linspace(0, 1e-9, 101)
        v = np.clip(t / 2e-9, 0.0, 1.0)  # only reaches 0.5
        res = synthetic_result(t, z=v)
        assert math.isinf(rise_time(res, "z", 0.0, 1.0))


class TestDelayAndShape:
    def test_propagation_delay(self, ramp):
        d = propagation_delay(ramp, "a", "b", 0.5, 0.5)
        assert d == pytest.approx(0.5e-9, rel=1e-3)

    def test_overshoot(self):
        t = np.linspace(0, 1e-9, 101)
        v = 1.0 + 0.2 * np.exp(-t / 1e-10) * np.cos(t / 2e-11)
        res = synthetic_result(t, x=v)
        assert overshoot(res, "x", 1.0) == pytest.approx(0.2, abs=0.01)

    def test_overshoot_zero_when_below_target(self, ramp):
        assert overshoot(ramp, "a", 1.5) == 0.0

    def test_settling_time(self):
        t = np.linspace(0, 1e-8, 1001)
        v = 1.0 - np.exp(-t / 1e-9)
        res = synthetic_result(t, x=v)
        # Settles within 1 % at t = -tau ln(0.01) ~ 4.6 ns.
        assert settling_time(res, "x", 1.0, 0.01) == pytest.approx(4.6e-9, rel=0.05)

    def test_settling_tolerance_validation(self, ramp):
        with pytest.raises(ValueError):
            settling_time(ramp, "a", 1.0, 0.0)

    def test_pulse_width(self):
        t = np.linspace(0, 4e-9, 401)
        v = np.where((t > 1e-9) & (t < 2.5e-9), 1.0, 0.0)
        res = synthetic_result(t, x=v)
        assert pulse_width(res, "x", 0.5) == pytest.approx(1.5e-9, abs=3e-11)

    def test_unclosed_pulse_is_inf(self, ramp):
        assert math.isinf(pulse_width(ramp, "a", 0.5))


class TestOnRealSimulation:
    def test_inverter_propagation_delay(self):
        from repro.circuit.transient import simulate_transient
        from repro.circuit.waveforms import Pulse
        from repro.devices.library import tfet_device

        c = Circuit()
        c.add_voltage_source("vdd", "vdd", "0", 0.8)
        c.add_voltage_source(
            "vin", "in", "0", Pulse(0.0, 0.8, t_start=2e-10, width=3e-9)
        )
        d = tfet_device()
        c.add_transistor("mp", "out", "in", "vdd", d, "p", 0.1)
        c.add_transistor("mn", "out", "in", "0", d, "n", 0.1)
        c.add_capacitor("out", "0", 5e-16)
        res = simulate_transient(c, 3e-9, initial_conditions={"out": 0.8})
        delay = propagation_delay(res, "in", "out", 0.4, 0.4)
        assert 0.0 < delay < 1e-9
        ft = fall_time(res, "out", 0.0, 0.8, after=2e-10)
        assert 0.0 < ft < 2e-9
