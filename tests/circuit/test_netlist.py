"""Tests for the netlist container."""

from __future__ import annotations

import pytest

from repro.circuit.elements import GROUND
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Pulse


class TestNodes:
    def test_ground_aliases(self):
        c = Circuit()
        for name in ("0", "gnd", "GND"):
            assert c.node(name) == GROUND

    def test_nodes_numbered_in_creation_order(self):
        c = Circuit()
        assert c.node("a") == 0
        assert c.node("b") == 1
        assert c.node("a") == 0

    def test_index_of_unknown_raises(self):
        c = Circuit()
        with pytest.raises(KeyError):
            c.index_of("nope")

    def test_index_of_ground(self):
        assert Circuit().index_of("0") == GROUND

    def test_node_names_ordered(self):
        c = Circuit()
        c.node("x")
        c.node("y")
        assert c.node_names == ["x", "y"]


class TestElements:
    def test_add_resistor(self):
        c = Circuit()
        r = c.add_resistor("a", "0", 1e3)
        assert r.a == 0 and r.b == GROUND
        assert len(c.resistors) == 1

    def test_float_capacitor_becomes_linear_charge(self):
        c = Circuit()
        cap = c.add_capacitor("a", "0", 1e-15)
        assert float(cap.charge.capacitance(0.0)) == pytest.approx(1e-15)

    def test_float_source_becomes_constant(self):
        c = Circuit()
        src = c.add_voltage_source("v1", "a", "0", 1.5)
        assert src.waveform.value(0.0) == 1.5

    def test_source_index(self):
        c = Circuit()
        c.add_voltage_source("v1", "a", "0", 1.0)
        c.add_voltage_source("v2", "b", "0", 2.0)
        assert c.source_index("v2") == 1
        with pytest.raises(KeyError):
            c.source_index("v3")

    def test_unknown_count(self):
        c = Circuit()
        c.add_voltage_source("v1", "a", "0", 1.0)
        c.add_resistor("a", "b", 1.0)
        assert c.node_count == 2
        assert c.unknown_count == 3

    def test_breakpoints_union_sorted(self):
        c = Circuit()
        c.add_voltage_source("v1", "a", "0", Pulse(0, 1, t_start=2e-10, width=1e-10))
        c.add_voltage_source("v2", "b", "0", Pulse(0, 1, t_start=1e-10, width=1e-10))
        bps = c.breakpoints()
        assert bps == sorted(bps)
        assert bps[0] == 1e-10

    def test_transistor_validation(self):
        from repro.devices.library import nmos_device

        c = Circuit()
        with pytest.raises(ValueError, match="polarity"):
            c.add_transistor("m1", "d", "g", "s", nmos_device(), polarity="x")
        with pytest.raises(ValueError, match="width"):
            c.add_transistor("m1", "d", "g", "s", nmos_device(), width_um=0.0)

    def test_resistor_validation(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.add_resistor("a", "0", 0.0)
