"""Tests for the DC operating-point solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.dcop import ConvergenceError, SolverOptions, newton_solve, solve_dc
from repro.circuit.mna import MnaSystem
from repro.circuit.netlist import Circuit
from repro.devices.library import nmos_device, pmos_device, tfet_device


class TestLinear:
    def test_resistive_divider(self):
        c = Circuit()
        c.add_voltage_source("v1", "in", "0", 1.0)
        c.add_resistor("in", "mid", 1e3)
        c.add_resistor("mid", "0", 3e3)
        op = solve_dc(c)
        assert op.voltage("mid") == pytest.approx(0.75, rel=1e-6)

    def test_branch_current_sign_convention(self):
        # 1 V across 1 kOhm: 1 mA flows out of the source's + terminal,
        # so the branch current (a through source to b) is -1 mA.
        c = Circuit()
        c.add_voltage_source("v1", "a", "0", 1.0)
        c.add_resistor("a", "0", 1e3)
        op = solve_dc(c)
        assert op.branch_current("v1") == pytest.approx(-1e-3, rel=1e-6)

    def test_source_power_positive_when_delivering(self):
        c = Circuit()
        c.add_voltage_source("v1", "a", "0", 1.0)
        c.add_resistor("a", "0", 1e3)
        op = solve_dc(c)
        assert op.source_power("v1") == pytest.approx(1e-3, rel=1e-6)
        assert op.total_source_power() == pytest.approx(1e-3, rel=1e-6)

    def test_floating_node_settles_to_ground_via_gmin(self):
        c = Circuit()
        c.node("float")
        op = solve_dc(c)
        assert op.voltage("float") == pytest.approx(0.0, abs=1e-9)


class TestNonlinear:
    def test_cmos_inverter_rails(self):
        for vin, expected in ((0.0, 0.8), (0.8, 0.0)):
            c = Circuit()
            c.add_voltage_source("vdd", "vdd", "0", 0.8)
            c.add_voltage_source("vin", "in", "0", vin)
            c.add_transistor("mp", "out", "in", "vdd", pmos_device(), "p", 0.2)
            c.add_transistor("mn", "out", "in", "0", nmos_device(), "n", 0.1)
            op = solve_dc(c)
            assert op.voltage("out") == pytest.approx(expected, abs=5e-3)

    def test_tfet_inverter_output_high(self):
        c = Circuit()
        c.add_voltage_source("vdd", "vdd", "0", 0.8)
        c.add_voltage_source("vin", "in", "0", 0.0)
        c.add_transistor("mp", "out", "in", "vdd", tfet_device(), "p", 0.1)
        c.add_transistor("mn", "out", "in", "0", tfet_device(), "n", 0.1)
        op = solve_dc(c, initial_guess={"out": 0.8})
        assert op.voltage("out") == pytest.approx(0.8, abs=5e-3)

    def test_bistable_latch_selected_by_clamp(self):
        d = tfet_device()
        for q0, qb0 in ((0.8, 0.0), (0.0, 0.8)):
            c = Circuit()
            c.add_voltage_source("vdd", "vdd", "0", 0.8)
            for out, inp, tag in (("q", "qb", "l"), ("qb", "q", "r")):
                c.add_transistor(f"mp{tag}", out, inp, "vdd", d, "p", 0.1)
                c.add_transistor(f"mn{tag}", out, inp, "0", d, "n", 0.1)
            op = solve_dc(c, clamp_nodes={"q": q0, "qb": qb0})
            assert op.voltage("q") == pytest.approx(q0, abs=0.05)
            assert op.voltage("qb") == pytest.approx(qb0, abs=0.05)

    def test_diode_connected_tfet_operating_point(self):
        # Current source into a diode-connected nTFET: KCL fixes the
        # node where the device absorbs exactly the source current.
        c = Circuit()
        c.add_current_source("ibias", "0", "d", 1e-6)
        c.add_transistor("m1", "d", "d", "0", tfet_device(), "n", 0.1)
        op = solve_dc(c)
        v = op.voltage("d")
        absorbed = float(np.asarray(tfet_device().current_density(v, v))) * 0.1
        assert absorbed == pytest.approx(1e-6, rel=1e-3)


class TestRobustness:
    def test_zero_guess_converges_on_tfet_inverter(self):
        c = Circuit()
        c.add_voltage_source("vdd", "vdd", "0", 0.8)
        c.add_voltage_source("vin", "in", "0", 0.4)
        c.add_transistor("mp", "out", "in", "vdd", tfet_device(), "p", 0.1)
        c.add_transistor("mn", "out", "in", "0", tfet_device(), "n", 0.1)
        op = solve_dc(c)
        assert 0.0 <= op.voltage("out") <= 0.85

    def test_newton_raises_on_exhausted_iterations(self):
        c = Circuit()
        c.add_voltage_source("vdd", "a", "0", 1.0)
        c.add_resistor("a", "b", 1e3)
        system = MnaSystem(c)
        options = SolverOptions(max_iterations=1, voltage_tolerance=1e-30,
                                residual_tolerance=1e-30)
        with pytest.raises(ConvergenceError):
            newton_solve(system, np.ones(system.size), 0.0, options)

    def test_options_validation_fields(self):
        opts = SolverOptions()
        assert opts.gmin > 0
        assert opts.step_limit > 0
