"""Tests for small-signal AC analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.ac import ac_analysis, capacitance_matrix
from repro.circuit.dcop import solve_dc
from repro.circuit.mna import MnaSystem
from repro.circuit.netlist import Circuit
from repro.devices.library import tfet_device


def rc_lowpass(r=1e4, c=1e-13):
    ckt = Circuit("rc")
    ckt.add_voltage_source("vin", "in", "0", 0.0)
    ckt.add_resistor("in", "out", r)
    ckt.add_capacitor("out", "0", c)
    return ckt


class TestRcLowpass:
    def test_dc_gain_unity(self):
        res = ac_analysis(rc_lowpass(), "vin", np.logspace(3, 10, 50))
        assert res.dc_gain("out") == pytest.approx(1.0, rel=1e-3)

    def test_corner_frequency(self):
        r, c = 1e4, 1e-13
        res = ac_analysis(rc_lowpass(r, c), "vin", np.logspace(6, 10, 200))
        expected = 1.0 / (2 * np.pi * r * c)
        assert res.bandwidth_3db("out") == pytest.approx(expected, rel=0.02)

    def test_rolloff_20db_per_decade(self):
        res = ac_analysis(rc_lowpass(), "vin", np.logspace(9, 10, 11))
        mags = res.magnitude_db("out")
        assert mags[-1] - mags[0] == pytest.approx(-20.0, abs=1.0)

    def test_phase_approaches_minus_ninety(self):
        res = ac_analysis(rc_lowpass(), "vin", np.logspace(10, 11, 5))
        assert res.phase_deg("out")[-1] == pytest.approx(-90.0, abs=5.0)

    def test_bandwidth_inf_when_not_reached(self):
        res = ac_analysis(rc_lowpass(), "vin", np.logspace(3, 4, 5))
        assert res.bandwidth_3db("out") == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            ac_analysis(rc_lowpass(), "vin", np.array([]))
        with pytest.raises(ValueError):
            ac_analysis(rc_lowpass(), "vin", np.array([-1.0]))


class TestCapacitanceMatrix:
    def test_grounded_cap_on_diagonal(self):
        ckt = Circuit()
        ckt.add_capacitor("a", "0", 2e-15)
        system = MnaSystem(ckt)
        c = capacitance_matrix(system, np.zeros(system.size))
        assert c[0, 0] == pytest.approx(2e-15)

    def test_floating_cap_symmetric_stamp(self):
        ckt = Circuit()
        ckt.add_capacitor("a", "b", 3e-15)
        system = MnaSystem(ckt)
        c = capacitance_matrix(system, np.zeros(system.size))
        assert c[0, 0] == pytest.approx(3e-15)
        assert c[0, 1] == pytest.approx(-3e-15)
        assert c[1, 0] == pytest.approx(-3e-15)
        assert c[1, 1] == pytest.approx(3e-15)


class TestTfetInverterAc:
    @pytest.fixture(scope="class")
    def inverter(self):
        ckt = Circuit("tfet inverter")
        ckt.add_voltage_source("vdd", "vdd", "0", 0.8)
        ckt.add_voltage_source("vin", "in", "0", 0.4)
        d = tfet_device()
        ckt.add_transistor("mp", "out", "in", "vdd", d, "p", 0.1)
        ckt.add_transistor("mn", "out", "in", "0", d, "n", 0.1)
        ckt.add_capacitor("out", "0", 5e-16)
        return ckt

    def test_gain_above_unity_at_trip_point(self, inverter):
        op = solve_dc(inverter, initial_guess={"out": 0.4})
        res = ac_analysis(inverter, "vin", np.logspace(3, 6, 10), operating_point=op)
        assert res.dc_gain("out") > 1.0

    def test_gain_rolls_off(self, inverter):
        op = solve_dc(inverter, initial_guess={"out": 0.4})
        res = ac_analysis(
            inverter, "vin", np.logspace(3, 13, 60), operating_point=op
        )
        assert np.isfinite(res.bandwidth_3db("out"))
