"""Tests for the adaptive backward-Euler transient integrator."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuit.dcop import ConvergenceError
from repro.circuit.netlist import Circuit
from repro.circuit.transient import TransientOptions, simulate_transient
from repro.circuit.waveforms import Pulse
from repro.devices.charges import SmoothStepCharge
from repro.devices.library import tfet_device


def rc_circuit(tau_resistor=1e4, cap=1e-13):
    c = Circuit("rc")
    c.add_voltage_source(
        "vin", "in", "0", Pulse(0.0, 1.0, t_start=1e-10, width=1e-8, t_edge=1e-12)
    )
    c.add_resistor("in", "out", tau_resistor)
    c.add_capacitor("out", "0", cap)
    return c


class TestRcStep:
    def test_matches_analytic_exponential(self):
        c = rc_circuit()
        res = simulate_transient(c, 4e-9)
        tau = 1e4 * 1e-13
        for n_tau in (0.5, 1.0, 2.0, 3.0):
            t = 1.01e-10 + n_tau * tau
            expected = 1.0 - math.exp(-n_tau)
            assert res.at("out", t) == pytest.approx(expected, abs=0.02)

    def test_tighter_step_limit_improves_accuracy(self):
        c = rc_circuit()
        coarse = simulate_transient(c, 2e-9, options=TransientOptions(max_voltage_step=0.2))
        fine = simulate_transient(c, 2e-9, options=TransientOptions(max_voltage_step=0.01))
        tau = 1e-9
        t = 1.01e-10 + tau
        truth = 1.0 - math.exp(-1.0)
        assert abs(fine.at("out", t) - truth) < abs(coarse.at("out", t) - truth) + 1e-6

    def test_final_value_reaches_rail(self):
        res = simulate_transient(rc_circuit(), 8e-9)
        assert res.final("out") == pytest.approx(1.0, abs=1e-3)


class TestBreakpoints:
    def test_edge_corners_are_sampled_exactly(self):
        c = rc_circuit()
        res = simulate_transient(c, 1e-9)
        for corner in (1e-10, 1.01e-10):
            assert np.min(np.abs(res.times - corner)) < 1e-18

    def test_narrow_pulse_not_skipped(self):
        c = Circuit()
        c.add_voltage_source(
            "vin", "in", "0", Pulse(0.0, 1.0, t_start=5e-10, width=2e-12, t_edge=1e-12)
        )
        c.add_resistor("in", "out", 10.0)
        c.add_capacitor("out", "0", 1e-16)
        res = simulate_transient(c, 1e-9)
        assert np.max(res.voltage("in")) == pytest.approx(1.0, abs=1e-9)


class TestInitialConditions:
    def test_storage_node_starts_at_requested_value(self):
        c = Circuit()
        c.add_capacitor("mem", "0", 1e-15)
        res = simulate_transient(c, 1e-10, initial_conditions={"mem": 0.63})
        assert res.states[0][c.index_of("mem")] == pytest.approx(0.63, abs=1e-3)

    def test_isolated_node_holds_its_charge(self):
        c = Circuit()
        c.add_capacitor("mem", "0", 1e-15)
        res = simulate_transient(c, 1e-9, initial_conditions={"mem": 0.63})
        # Only the solver gmin leaks the node: tau = C/gmin = 1000 s.
        assert res.final("mem") == pytest.approx(0.63, abs=1e-3)

    def test_bistable_cell_holds_state(self):
        d = tfet_device()
        c = Circuit()
        c.add_voltage_source("vdd", "vdd", "0", 0.8)
        for out, inp, tag in (("q", "qb", "l"), ("qb", "q", "r")):
            c.add_transistor(f"mp{tag}", out, inp, "vdd", d, "p", 0.1)
            c.add_transistor(f"mn{tag}", out, inp, "0", d, "n", 0.1)
            c.add_capacitor(out, "0", 2e-16)
        res = simulate_transient(c, 2e-9, initial_conditions={"q": 0.8, "qb": 0.0})
        assert res.final("q") == pytest.approx(0.8, abs=0.01)
        assert res.final("qb") == pytest.approx(0.0, abs=0.01)


class TestNonlinearCapacitor:
    def test_charge_conservation_through_step_region(self):
        # Drive a nonlinear cap through its C(V) step via a resistor and
        # check the final stored charge matches q(V_final).
        step = SmoothStepCharge(1e-16, 5e-16, 0.4, 0.05)
        c = Circuit()
        c.add_voltage_source(
            "vin", "in", "0", Pulse(0.0, 1.0, t_start=1e-10, width=1e-7, t_edge=1e-12)
        )
        c.add_resistor("in", "out", 1e4)
        c.add_capacitor("out", "0", step)
        res = simulate_transient(c, 5e-11 + 8e-9)
        assert res.final("out") == pytest.approx(1.0, abs=5e-3)

    def test_nonlinear_cap_slows_transition_in_step_region(self):
        step = SmoothStepCharge(1e-16, 8e-16, 0.5, 0.05)
        c = Circuit()
        c.add_voltage_source(
            "vin", "in", "0", Pulse(0.0, 1.0, t_start=1e-11, width=1e-7, t_edge=1e-12)
        )
        c.add_resistor("in", "out", 1e4)
        c.add_capacitor("out", "0", step)
        res = simulate_transient(c, 6e-9)
        # Time spent between 0.45 V and 0.7 V (high-C region) exceeds
        # time between 0.1 V and 0.35 V (low-C region).
        v = res.voltage("out")

        def span(lo, hi):
            inside = (v >= lo) & (v <= hi)
            return res.times[inside][-1] - res.times[inside][0]

        assert span(0.45, 0.7) > 2.0 * span(0.1, 0.35)


class TestTelemetryAndForensics:
    @pytest.fixture(autouse=True)
    def _no_leaked_session(self):
        from repro.telemetry import core as telemetry

        telemetry.disable()
        yield
        telemetry.disable()

    def test_step_accounting_counters(self):
        from repro.telemetry import core as telemetry

        with telemetry.enabled() as tel:
            simulate_transient(rc_circuit(), 2e-9)
        c = tel.counters
        assert c["transient.simulations"] == 1
        assert c["transient.steps_accepted"] >= 10
        # The 1 ps pulse edges force dV-limit rejections at the default
        # 60 mV step cap.
        assert c["transient.rejected_dv_limit"] >= 1
        assert c["transient.steps_rejected"] >= c["transient.rejected_dv_limit"]
        assert c["transient.breakpoint_landings"] >= 2
        hist = tel.histograms["transient.step_seconds"]
        assert hist.count == c["transient.steps_accepted"]

    def test_disabled_session_records_nothing(self):
        from repro.telemetry import core as telemetry

        simulate_transient(rc_circuit(), 1e-9)
        assert telemetry.active() is None

    def test_underflow_carries_forensics(self, monkeypatch):
        import repro.circuit.transient as tr
        from repro.telemetry import core as telemetry

        real = tr.newton_solve

        def fail_in_transient(system, x0, t, options, transient=None, **kwargs):
            if transient is not None:
                raise ConvergenceError("forced transient failure")
            return real(system, x0, t, options, transient=transient, **kwargs)

        monkeypatch.setattr(tr, "newton_solve", fail_in_transient)
        with telemetry.enabled() as tel:
            with pytest.raises(ConvergenceError, match="step underflow") as excinfo:
                simulate_transient(rc_circuit(), 1e-9)
        forensics = excinfo.value.forensics
        assert forensics["last_rejection"] == "newton"
        assert forensics["step_s"] < 1e-16
        assert tel.counters["transient.step_underflows"] == 1
        assert tel.counters["transient.rejected_newton"] >= 1


class TestOptionsAndErrors:
    def test_rejects_nonpositive_stop_time(self):
        with pytest.raises(ValueError):
            simulate_transient(rc_circuit(), 0.0)

    def test_result_times_strictly_increasing(self):
        res = simulate_transient(rc_circuit(), 1e-9)
        assert np.all(np.diff(res.times) > 0)

    def test_simulation_reaches_exactly_t_stop(self):
        res = simulate_transient(rc_circuit(), 1.7e-9)
        assert res.times[-1] == pytest.approx(1.7e-9, rel=1e-12)
