"""Analytic-solution accuracy: integration order and charge division.

The RC ramp response has a closed form, so halving a *fixed* step must
shrink the error by the method's order: ~2x for backward Euler (first
order), ~4x for trapezoid (second order).  A controller or companion
bug that quietly degrades the order passes pointwise tolerance tests
but fails the ratio.  The input is a ramp from a consistent zero-current
initial state — a voltage jump at t = 0 would hand the trapezoid a
wrong initial companion current and mask its order with a first-order
startup error.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.transient import TransientOptions, simulate_transient
from repro.circuit.waveforms import PiecewiseLinear, Pulse
from repro.verify import enabled

R = 1e4
C = 1e-13
TAU = R * C  # 1 ns
V_FINAL = 0.8
T_RAMP = 2e-10
T_MEASURE = 1e-9  # integer multiple of every step used below


def ramp_rc():
    c = Circuit("ramp-rc")
    c.add_voltage_source(
        "vin", "in", "0", PiecewiseLinear((0.0, T_RAMP), (0.0, V_FINAL))
    )
    c.add_resistor("in", "out", R)
    c.add_capacitor("out", "0", C)
    return c


def analytic(t: float) -> float:
    """RC response to the ramp input (exact, piecewise)."""
    a = V_FINAL / T_RAMP
    if t <= T_RAMP:
        return a * (t - TAU * (1.0 - math.exp(-t / TAU)))
    v_ramp_end = a * (T_RAMP - TAU * (1.0 - math.exp(-T_RAMP / TAU)))
    return V_FINAL + (v_ramp_end - V_FINAL) * math.exp(-(t - T_RAMP) / TAU)


def fixed_step_error(method: str, h: float) -> float:
    options = TransientOptions(
        initial_step=h, max_step=h, max_voltage_step=10.0, method=method
    )
    res = simulate_transient(ramp_rc(), T_MEASURE, options=options)
    return abs(res.final("out") - analytic(T_MEASURE))


class TestIntegrationOrder:
    def test_backward_euler_is_first_order(self):
        coarse = fixed_step_error("backward_euler", 5e-11)
        fine = fixed_step_error("backward_euler", 2.5e-11)
        assert coarse < 0.05
        assert coarse / fine >= 1.6  # first order: ratio -> 2

    def test_trapezoid_is_second_order(self):
        coarse = fixed_step_error("trapezoidal", 5e-11)
        fine = fixed_step_error("trapezoidal", 2.5e-11)
        assert coarse < 5e-3
        assert coarse / fine >= 3.0  # second order: ratio -> 4

    def test_trapezoid_beats_backward_euler(self):
        h = 5e-11
        assert fixed_step_error("trapezoidal", h) < fixed_step_error(
            "backward_euler", h
        )


class TestFloatingCapacitorDivider:
    @pytest.mark.parametrize("method", ["backward_euler", "trapezoidal"])
    def test_charge_division_on_floating_node(self, method):
        # Two series caps; the middle node is floating, so its voltage
        # is set purely by charge conservation: dv_mid = dv_in * C1 /
        # (C1 + C2).  Any charge leak in the companion model (beyond
        # the 1e-12 S gmin tether, negligible over 1 ns) shows up here.
        c1, c2 = 3e-15, 1e-15
        c = Circuit("cap-divider")
        c.add_voltage_source(
            "vin", "in", "0",
            Pulse(0.0, V_FINAL, t_start=1e-10, width=1e-8, t_edge=5e-11),
        )
        c.add_capacitor("in", "mid", c1, name="c1")
        c.add_capacitor("mid", "0", c2, name="c2")
        with enabled() as session:
            res = simulate_transient(
                c, 1e-9, options=TransientOptions(method=method)
            )
        assert session.violation_count == 0
        assert session.audits.get("charge", 0) > 0
        expected = V_FINAL * c1 / (c1 + c2)
        assert res.final("mid") == pytest.approx(expected, rel=2e-3)
