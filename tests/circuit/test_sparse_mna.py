"""Fixed-pattern CSC stamping vs. the dense and reference assemblers.

:class:`SparseMnaSystem` must produce the same residual and (densified)
Jacobian as :class:`MnaSystem` and the seed's loop-based
:class:`ReferenceMnaSystem` on randomized netlists — in DC and
transient companion form, with clamps, gmin, and scaled sources active,
and again after live element swaps followed by ``invalidate_caches()``
(the corners/variation reuse idiom).  :func:`make_system` selection is
pinned too: size-based auto choice, forced formats, and the dense
fallback for overridden assembler classes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.mna import MnaSystem, TransientState, VoltageClamp
from repro.circuit.mna_reference import ReferenceMnaSystem
from repro.circuit.netlist import Circuit
from repro.circuit.parser import parse_netlist
from repro.circuit.sparse import (
    DEFAULT_SPARSE_THRESHOLD,
    HAVE_SPARSE,
    SparseMnaSystem,
    make_system,
)
from repro.devices.library import nmos_device, tfet_device
from repro.verify.fuzz import generate_deck

from tests.circuit.test_mna_equivalence import random_circuit

pytestmark = pytest.mark.skipif(not HAVE_SPARSE, reason="scipy is unavailable")

RTOL = 1e-12
ATOL = 1e-30


def _dense_jac(jac) -> np.ndarray:
    return np.asarray(jac.toarray()) if hasattr(jac, "toarray") else np.asarray(jac)


def assert_all_equivalent(circuit: Circuit, rng: np.random.Generator) -> None:
    sparse = SparseMnaSystem(circuit)
    dense = MnaSystem(circuit)
    ref = ReferenceMnaSystem(circuit)
    assert sparse.size == dense.size == ref.size

    for _ in range(3):
        x = rng.uniform(-1.0, 1.0, dense.size)
        t = float(rng.uniform(0.0, 1e-9))
        gmin = float(rng.choice([0.0, 1e-12, 1e-4]))
        scale = float(rng.choice([1.0, 0.3]))
        clamps = ()
        if rng.random() < 0.5 and circuit.node_count:
            clamps = (
                VoltageClamp(
                    int(rng.integers(0, circuit.node_count)),
                    float(rng.uniform(0.0, 0.8)),
                ),
            )
        state = None
        if len(circuit.capacitors):
            charges = ref.capacitor_charges(rng.uniform(-1.0, 1.0, dense.size))
            state = TransientState(
                timestep=float(rng.uniform(1e-13, 1e-11)),
                capacitor_charges=charges,
                capacitor_currents=rng.uniform(-1e-6, 1e-6, len(charges)),
                method="trapezoidal" if rng.random() < 0.5 else "backward_euler",
            )

        kwargs = dict(
            gmin=gmin, transient=state, clamps=clamps, source_scale=scale
        )
        f_sp, j_sp = sparse.assemble(x, t, **kwargs)
        f_d, j_d = dense.assemble(x, t, **kwargs)
        f_r, j_r = ref.assemble(x, t, **kwargs)
        np.testing.assert_allclose(f_sp, f_d, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(f_sp, f_r, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(_dense_jac(j_sp), j_d, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(_dense_jac(j_sp), j_r, rtol=RTOL, atol=ATOL)


def test_sparse_matches_dense_and_reference_on_random_circuits():
    rng = np.random.default_rng(20260808)
    for _ in range(8):
        assert_all_equivalent(random_circuit(rng), rng)


def test_sparse_matches_on_fuzz_decks():
    rng = np.random.default_rng(11)
    for _ in range(6):
        circuit = parse_netlist(generate_deck(rng))
        assert_all_equivalent(circuit, rng)


def test_sparse_equivalence_survives_live_element_swaps():
    """The variation idiom: mutate devices in place, invalidate, re-check."""
    rng = np.random.default_rng(7)
    circuit = random_circuit(rng)
    sparse = SparseMnaSystem(circuit)
    dense = MnaSystem(circuit)

    # Swap every transistor's model and width in place (new distinct
    # model objects change the grouping), then recompile both systems.
    fresh = [tfet_device(), nmos_device()]
    for i, tr in enumerate(circuit.transistors):
        circuit.transistors[i] = type(tr)(
            tr.drain,
            tr.gate,
            tr.source,
            fresh[i % 2],
            tr.polarity,
            tr.width_um * 1.7,
            tr.name,
        )
    sparse.invalidate_caches()
    dense.invalidate_caches()

    x = rng.uniform(-1.0, 1.0, dense.size)
    f_sp, j_sp = sparse.assemble(x, 0.0, gmin=1e-12)
    f_d, j_d = dense.assemble(x, 0.0, gmin=1e-12)
    np.testing.assert_allclose(f_sp, f_d, rtol=RTOL, atol=ATOL)
    np.testing.assert_allclose(_dense_jac(j_sp), j_d, rtol=RTOL, atol=ATOL)


def _ladder(n: int) -> Circuit:
    """An RC ladder big enough to cross the auto-sparse threshold."""
    c = Circuit("ladder")
    c.add_voltage_source("vin", "n0", "0", 0.5)
    for k in range(n):
        c.add_resistor(f"n{k}", f"n{k + 1}", 1e3)
    return c


def test_make_system_auto_selection_by_size():
    small = _ladder(4)
    assert type(make_system(small)) is MnaSystem

    big = _ladder(DEFAULT_SPARSE_THRESHOLD + 8)
    assert type(make_system(big)) is SparseMnaSystem

    assert type(make_system(big, matrix_format="dense")) is MnaSystem
    assert type(make_system(small, matrix_format="sparse")) is SparseMnaSystem

    # An overridden dense class (the benchmark monkeypatch path) must
    # win over sparse selection: the caller asked for that assembler.
    assert (
        type(make_system(big, dense_cls=ReferenceMnaSystem))
        is ReferenceMnaSystem
    )

    with pytest.raises(ValueError):
        make_system(small, matrix_format="csr")


def test_sparse_solves_match_dense_end_to_end():
    """solve_dc through both assemblers: same operating point."""
    from repro.circuit.dcop import SolverOptions, solve_dc

    circuit = _ladder(80)
    dense_op = solve_dc(circuit, options=SolverOptions(matrix_format="dense"))
    sparse_op = solve_dc(circuit, options=SolverOptions(matrix_format="sparse"))
    np.testing.assert_allclose(sparse_op.x, dense_op.x, rtol=1e-9, atol=1e-15)
