"""Warm-start seed validation: cross-circuit seeds fail loudly.

A warm-start vector indexed for a *different* circuit used to be
accepted silently — same length, wrong node order — costing the solver
its warm tier at best and converging to a wrong basin at worst.  Seeds
now carry provenance: ``solve_dc`` accepts an :class:`OperatingPoint`
and checks its circuit fingerprint, and name-keyed guesses reject
unknown nodes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.dcop import solve_dc
from repro.circuit.netlist import Circuit
from repro.circuit.sweep import dc_sweep
from repro.circuit.transient import simulate_transient


def divider(names=("top", "mid")):
    c = Circuit("divider")
    c.add_voltage_source("vs", names[0], "0", 0.8)
    c.add_resistor(names[0], names[1], 1e4)
    c.add_resistor(names[1], "0", 1e4)
    return c


class TestOperatingPointSeeds:
    def test_same_circuit_instance_accepted(self):
        c = divider()
        op = solve_dc(c)
        warm = solve_dc(c, x0=op)
        np.testing.assert_allclose(warm.x, op.x)

    def test_identical_twin_circuit_accepted(self):
        # The Monte-Carlo idiom: a fresh per-sample build of the same
        # cell.  Same node names, same source count — the seed is
        # meaningful and must be accepted.
        op = solve_dc(divider())
        twin = solve_dc(divider(), x0=op)
        np.testing.assert_allclose(twin.x, op.x, atol=1e-9)

    def test_foreign_circuit_rejected(self):
        op = solve_dc(divider())
        other = divider(names=("rail", "sense"))
        with pytest.raises(ValueError, match="different circuit"):
            solve_dc(other, x0=op)

    def test_raw_vector_wrong_size_rejected(self):
        c = divider()
        with pytest.raises(ValueError):
            solve_dc(c, x0=np.zeros(99))

    def test_raw_vector_right_size_accepted(self):
        c = divider()
        op = solve_dc(c)
        again = solve_dc(c, x0=op.x.copy())
        np.testing.assert_allclose(again.x, op.x)


class TestNamedGuesses:
    def test_transient_guess_with_unknown_node_rejected(self):
        c = divider()
        c.add_capacitor("mid", "0", 1e-15)
        with pytest.raises(ValueError, match="different circuit"):
            simulate_transient(c, 1e-10, operating_point_guess={"q_bar": 0.4})

    def test_solve_dc_guess_with_unknown_node_rejected(self):
        with pytest.raises(ValueError, match="different circuit"):
            solve_dc(divider(), initial_guess={"nope": 0.1})


class TestSweepWarmStarts:
    def test_sweep_still_correct_with_validated_seeds(self):
        c = divider()
        values = np.linspace(0.0, 0.8, 9)
        points = dc_sweep(c, "vs", values)
        mid = np.array([op.voltage("mid") for op in points])
        np.testing.assert_allclose(mid, values / 2.0, atol=1e-7)
