"""Precompiled stamper vs. the loop-based reference assembler.

The precompiled :class:`MnaSystem` replaces the seed's per-element
Python loops with vectorized scatter-adds over index arrays built at
construction.  This test pins it to :class:`ReferenceMnaSystem` (the
seed implementation, kept verbatim) on randomized circuits: residual
and Jacobian must agree to ~1e-12 relative for every element type, in
DC and in transient companion form, with clamps, gmin, and scaled
sources active.  A stamping regression cannot hide behind the
vectorization if this passes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.mna import MnaSystem, TransientState, VoltageClamp
from repro.circuit.mna_reference import ReferenceMnaSystem
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import PiecewiseLinear, Pulse
from repro.devices.charges import (
    CompositeCharge,
    LinearCharge,
    MirroredCharge,
    SmoothStepCharge,
)
from repro.devices.library import nmos_device, pmos_device, tfet_device

RTOL = 1e-12
ATOL = 1e-30


def random_circuit(rng: np.random.Generator, n_nodes: int = 6) -> Circuit:
    """A randomized netlist exercising every stamp path.

    Nodes are drawn with replacement (parallel elements, self-loops to
    ground) so duplicate-index scatter accumulation is covered.
    """
    c = Circuit()
    names = [f"n{k}" for k in range(n_nodes)] + ["0"]
    for name in names[:-1]:
        c.node(name)

    def pick() -> str:
        return names[rng.integers(0, len(names))]

    for k in range(int(rng.integers(3, 8))):
        a, b = pick(), pick()
        if a == b:
            b = "0" if a != "0" else names[0]
        c.add_resistor(a, b, float(10.0 ** rng.uniform(2, 6)))

    for k in range(int(rng.integers(1, 4))):
        a, b = pick(), pick()
        if a == b:
            b = "0" if a != "0" else names[0]
        wave = (
            Pulse(0.0, float(rng.uniform(0.2, 1.0)), 1e-10, 5e-10, 2e-11)
            if rng.random() < 0.5
            else PiecewiseLinear((0.0, 1e-9), (0.0, float(rng.uniform(-1, 1))))
        )
        c.add_voltage_source(f"v{k}", a, b, wave)

    for k in range(int(rng.integers(0, 3))):
        a, b = pick(), pick()
        if a == b:
            b = "0" if a != "0" else names[0]
        c.add_current_source(f"i{k}", a, b, float(rng.uniform(-1e-6, 1e-6)))

    charges = [
        LinearCharge(1e-15),
        SmoothStepCharge(0.5e-15, 2e-15, 0.3, 0.08),
        MirroredCharge(SmoothStepCharge(0.5e-15, 2e-15, 0.3, 0.08)),
        CompositeCharge((LinearCharge(0.3e-15), SmoothStepCharge(0.2e-15, 1e-15, 0.2, 0.1))),
    ]
    for k in range(int(rng.integers(1, 5))):
        a, b = pick(), pick()
        if a == b:
            b = "0" if a != "0" else names[0]
        c.add_capacitor(a, b, charges[int(rng.integers(0, len(charges)))], name=f"c{k}")

    models = [tfet_device(), nmos_device(), pmos_device()]
    for k in range(int(rng.integers(2, 7))):
        d, g, s = pick(), pick(), pick()
        c.add_transistor(
            f"m{k}", d, g, s,
            models[int(rng.integers(0, len(models)))],
            "n" if rng.random() < 0.5 else "p",
            float(rng.uniform(0.05, 0.5)),
        )
    return c


def assert_equivalent(circuit: Circuit, rng: np.random.Generator) -> None:
    fast = MnaSystem(circuit)
    ref = ReferenceMnaSystem(circuit)
    assert fast.size == ref.size

    for trial in range(3):
        x = rng.uniform(-1.0, 1.0, fast.size)
        t = float(rng.uniform(0.0, 1e-9))
        gmin = float(rng.choice([0.0, 1e-12, 1e-4]))
        scale = float(rng.choice([1.0, 0.3]))
        clamps = ()
        if rng.random() < 0.5 and circuit.node_count:
            clamps = (
                VoltageClamp(int(rng.integers(0, circuit.node_count)),
                             float(rng.uniform(0.0, 0.8))),
            )

        f_fast, j_fast = fast.assemble(
            x, t, gmin=gmin, clamps=clamps, source_scale=scale
        )
        f_ref, j_ref = ref.assemble(
            x, t, gmin=gmin, clamps=clamps, source_scale=scale
        )
        np.testing.assert_allclose(f_fast, f_ref, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(j_fast, j_ref, rtol=RTOL, atol=ATOL)

        if len(circuit.capacitors):
            charges = ref.capacitor_charges(rng.uniform(-1.0, 1.0, fast.size))
            state = TransientState(
                timestep=float(rng.uniform(1e-13, 1e-11)),
                capacitor_charges=charges,
                capacitor_currents=rng.uniform(-1e-6, 1e-6, len(charges)),
                method="trapezoidal" if rng.random() < 0.5 else "backward_euler",
            )
            f_fast, j_fast = fast.assemble(x, t, gmin=gmin, transient=state,
                                           clamps=clamps, source_scale=scale)
            f_ref, j_ref = ref.assemble(x, t, gmin=gmin, transient=state,
                                        clamps=clamps, source_scale=scale)
            np.testing.assert_allclose(f_fast, f_ref, rtol=RTOL, atol=ATOL)
            np.testing.assert_allclose(j_fast, j_ref, rtol=RTOL, atol=ATOL)
            np.testing.assert_allclose(
                fast.capacitor_currents(x, state),
                ref.capacitor_currents(x, state),
                rtol=RTOL, atol=ATOL,
            )
            np.testing.assert_allclose(
                fast.capacitor_charges(x), ref.capacitor_charges(x),
                rtol=RTOL, atol=ATOL,
            )


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_randomized_circuits(self, seed):
        rng = np.random.default_rng(1234 + seed)
        assert_equivalent(random_circuit(rng), rng)

    def test_degenerate_no_transistors(self):
        rng = np.random.default_rng(7)
        c = Circuit()
        c.add_voltage_source("vdd", "a", "0", 0.8)
        c.add_resistor("a", "b", 1e4)
        c.add_resistor("b", "0", 1e4)
        c.add_capacitor("b", "0", 1e-15)
        assert_equivalent(c, rng)

    def test_all_grounded_terminals(self):
        # Elements whose terminals are all at ground exercise the
        # GROUND-alias slot of the gather/scatter index arrays.
        rng = np.random.default_rng(11)
        c = Circuit()
        c.add_voltage_source("vdd", "a", "0", 0.5)
        c.add_transistor("m0", "0", "a", "0", tfet_device(), "n", 0.1)
        c.add_transistor("m1", "a", "0", "0", tfet_device(), "p", 0.2)
        c.add_resistor("a", "0", 1e5)
        assert_equivalent(c, rng)

    def test_topology_change_recompiles(self):
        # Appending an element after construction must be picked up by
        # the precompiled system (the topology guard re-compiles).
        rng = np.random.default_rng(3)
        c = Circuit()
        c.add_voltage_source("vdd", "a", "0", 0.8)
        c.add_resistor("a", "b", 1e4)
        fast = MnaSystem(c)
        x = rng.uniform(-1, 1, fast.size)
        fast.assemble(x, 0.0)
        c.add_resistor("b", "0", 2e4)
        f_fast, j_fast = fast.assemble(x, 0.0)
        f_ref, j_ref = ReferenceMnaSystem(c).assemble(x, 0.0)
        np.testing.assert_allclose(f_fast, f_ref, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(j_fast, j_ref, rtol=RTOL, atol=ATOL)
