"""Tests for MNA assembly: residuals and Jacobians."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.mna import MnaSystem, TransientState, VoltageClamp
from repro.circuit.netlist import Circuit
from repro.devices.charges import ChargeFunction, MirroredCharge, SmoothStepCharge
from repro.devices.library import nmos_device, tfet_device


def jacobian_fd(system, x, t, **kwargs):
    """Finite-difference Jacobian of the assembled residual."""
    f0, _ = system.assemble(x, t, **kwargs)
    jac = np.zeros((len(x), len(x)))
    h = 1e-7
    for k in range(len(x)):
        xp = x.copy()
        xp[k] += h
        fp, _ = system.assemble(xp, t, **kwargs)
        jac[:, k] = (fp - f0) / h
    return jac


def build_mixed_circuit():
    c = Circuit("mixed")
    c.add_voltage_source("vdd", "vdd", "0", 0.8)
    c.add_voltage_source("vin", "in", "0", 0.35)
    c.add_resistor("vdd", "out", 5e4)
    c.add_transistor("mn", "out", "in", "0", nmos_device(), "n", 0.1)
    c.add_transistor("mp", "out", "in", "vdd", tfet_device(), "p", 0.1)
    c.add_capacitor("out", "0", 1e-15)
    c.add_capacitor("out", "in", SmoothStepCharge(1e-16, 4e-16, 0.2, 0.1))
    return c


class TestResidual:
    def test_kcl_residual_zero_at_solution(self):
        from repro.circuit.dcop import solve_dc

        c = build_mixed_circuit()
        op = solve_dc(c)
        system = MnaSystem(c)
        f, _ = system.assemble(op.x, 0.0, gmin=1e-12)
        assert np.max(np.abs(f)) < 1e-9

    def test_voltage_source_row_enforces_level(self):
        c = Circuit()
        c.add_voltage_source("v1", "a", "0", 1.5)
        system = MnaSystem(c)
        x = np.array([1.5, 0.0])
        f, _ = system.assemble(x, 0.0)
        assert f[1] == pytest.approx(0.0)
        x_bad = np.array([1.0, 0.0])
        f, _ = system.assemble(x_bad, 0.0)
        assert f[1] == pytest.approx(-0.5)

    def test_gmin_adds_diagonal_leak(self):
        c = Circuit()
        c.node("a")
        system = MnaSystem(c)
        x = np.array([2.0])
        f, jac = system.assemble(x, 0.0, gmin=1e-9)
        assert f[0] == pytest.approx(2e-9)
        assert jac[0, 0] == pytest.approx(1e-9)

    def test_clamp_pulls_toward_target(self):
        c = Circuit()
        idx = c.node("a")
        system = MnaSystem(c)
        x = np.array([0.0])
        clamp = VoltageClamp(idx, 0.8, conductance=10.0)
        f, jac = system.assemble(x, 0.0, clamps=(clamp,))
        assert f[0] == pytest.approx(-8.0)
        assert jac[0, 0] == pytest.approx(10.0)

    def test_source_scaling(self):
        c = Circuit()
        c.add_voltage_source("v1", "a", "0", 2.0)
        system = MnaSystem(c)
        x = np.array([1.0, 0.0])
        f, _ = system.assemble(x, 0.0, source_scale=0.5)
        assert f[1] == pytest.approx(0.0)

    def test_current_source_stamps_both_nodes(self):
        c = Circuit()
        c.add_current_source("i1", "a", "b", 1e-6)
        system = MnaSystem(c)
        f, _ = system.assemble(np.zeros(2), 0.0)
        assert f[0] == pytest.approx(1e-6)
        assert f[1] == pytest.approx(-1e-6)


class TestJacobian:
    def test_dc_jacobian_matches_finite_difference(self):
        c = build_mixed_circuit()
        system = MnaSystem(c)
        rng = np.random.default_rng(3)
        x = rng.uniform(0.0, 0.8, system.size)
        _, jac = system.assemble(x, 0.0, gmin=1e-12)
        fd = jacobian_fd(system, x, 0.0, gmin=1e-12)
        assert np.allclose(jac, fd, rtol=5e-3, atol=1e-9)

    def test_transient_jacobian_matches_finite_difference(self):
        c = build_mixed_circuit()
        system = MnaSystem(c)
        rng = np.random.default_rng(4)
        x = rng.uniform(0.0, 0.8, system.size)
        state = TransientState(
            timestep=1e-12, capacitor_charges=system.capacitor_charges(x * 0.9)
        )
        _, jac = system.assemble(x, 0.0, transient=state)
        fd = jacobian_fd(system, x, 0.0, transient=state)
        assert np.allclose(jac, fd, rtol=5e-3, atol=1e-6)


class TestCapacitorBank:
    def test_mirrored_step_charge_vectorized_correctly(self):
        ref = SmoothStepCharge(1e-16, 4e-16, 0.25, 0.08)
        mirrored = MirroredCharge(ref)
        c = Circuit()
        c.add_capacitor("a", "0", mirrored, scale=2.0)
        system = MnaSystem(c)
        x = np.array([-0.6])
        q = system.capacitor_charges(x)
        assert q[0] == pytest.approx(2.0 * float(np.asarray(mirrored.charge(-0.6))))

    def test_custom_charge_function_fallback(self):
        class CubicCharge(ChargeFunction):
            def charge(self, v):
                return 1e-15 * np.asarray(v) ** 3

            def capacitance(self, v):
                return 3e-15 * np.asarray(v) ** 2

        c = Circuit()
        c.add_capacitor("a", "0", CubicCharge())
        system = MnaSystem(c)
        q = system.capacitor_charges(np.array([0.5]))
        assert q[0] == pytest.approx(1e-15 * 0.125)

    def test_empty_circuit_charges(self):
        system = MnaSystem(Circuit())
        assert system.capacitor_charges(np.zeros(0)).size == 0


class TestTransistorBatching:
    def test_same_model_grouped(self):
        c = Circuit()
        d = tfet_device()
        c.add_transistor("m1", "a", "b", "0", d, "n", 0.1)
        c.add_transistor("m2", "b", "a", "0", d, "p", 0.2)
        system = MnaSystem(c)
        assert len(system._groups) == 1
        assert len(system._groups[0].members) == 2

    def test_different_models_separate_groups(self):
        c = Circuit()
        c.add_transistor("m1", "a", "b", "0", tfet_device(), "n", 0.1)
        c.add_transistor("m2", "b", "a", "0", nmos_device(), "n", 0.2)
        assert len(MnaSystem(c)._groups) == 2

    def test_polarity_mirror_current_sign(self):
        # A pTFET with source above drain conducts into the drain.
        c = Circuit()
        c.add_voltage_source("vs", "s", "0", 0.8)
        c.add_transistor("mp", "d", "0", "s", tfet_device(), "p", 0.1)
        system = MnaSystem(c)
        x = np.zeros(system.size)
        x[c.index_of("s")] = 0.8
        f, _ = system.assemble(x, 0.0)
        # Current out of node d must be negative (being charged).
        assert f[c.index_of("d")] < 0.0
