"""Physics-invariant tests: charge and energy bookkeeping.

These catch integrator and stamping bugs that pointwise tests miss —
if the companion model leaks charge, every SRAM metric downstream is
quietly wrong.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.mna import MnaSystem
from repro.circuit.netlist import Circuit
from repro.circuit.transient import TransientOptions, simulate_transient
from repro.circuit.waveforms import Pulse
from repro.devices.charges import SmoothStepCharge


def charged_rc(cap_charge, r=1e4):
    ckt = Circuit()
    ckt.add_voltage_source(
        "vin", "in", "0", Pulse(0.0, 1.0, t_start=5e-11, width=1e-6, t_edge=1e-12)
    )
    ckt.add_resistor("in", "out", r)
    ckt.add_capacitor("out", "0", cap_charge)
    return ckt


def source_charge(result, source="vin"):
    """Integral of the source branch current over the whole run."""
    i = result.branch_current(source)
    return float(np.trapezoid(i, result.times))


class TestChargeConservation:
    @given(c_high=st.floats(2e-16, 1e-15), v_step=st.floats(0.2, 0.8))
    @settings(max_examples=10, deadline=None)
    def test_source_charge_equals_capacitor_charge(self, c_high, v_step):
        charge_fn = SmoothStepCharge(1e-16, c_high, v_step, 0.08)
        ckt = charged_rc(charge_fn)
        result = simulate_transient(ckt, 2e-8)
        system = MnaSystem(ckt)
        q_final = system.capacitor_charges(result.states[-1])[0]
        q_initial = system.capacitor_charges(result.states[0])[0]
        delivered = -source_charge(result)  # branch current flows a->b
        assert delivered == pytest.approx(q_final - q_initial, rel=0.02)

    def test_both_integrators_conserve_charge(self):
        charge_fn = SmoothStepCharge(1e-16, 8e-16, 0.5, 0.06)
        for method in ("backward_euler", "trapezoidal"):
            ckt = charged_rc(charge_fn)
            result = simulate_transient(
                ckt, 2e-8, options=TransientOptions(method=method)
            )
            system = MnaSystem(ckt)
            q_final = system.capacitor_charges(result.states[-1])[0]
            delivered = -source_charge(result)
            assert delivered == pytest.approx(q_final, rel=0.02), method


class TestEnergyBookkeeping:
    def test_resistor_dissipates_half_of_linear_cap_energy(self):
        # Classic result: charging C through R costs CV^2, half stored,
        # half burnt in the resistor regardless of R.
        ckt = charged_rc(6e-16)
        result = simulate_transient(ckt, 4e-8)
        v_in = result.voltage("in")
        i = -result.branch_current("vin")
        delivered = float(np.trapezoid(v_in * i, result.times))
        stored = 0.5 * 6e-16 * 1.0**2
        assert delivered == pytest.approx(2.0 * stored, rel=0.05)

    def test_sram_hold_dissipation_matches_delivery(self):
        from repro.experiments.designs import proposed_cell
        from repro.analysis.leakage import leakage_breakdown
        from repro.analysis.power import static_power

        cell = proposed_cell()
        bench = cell.hold_testbench(0.8)
        delivered = static_power(bench)
        dissipated = leakage_breakdown(cell.hold_testbench(0.8)).total_dissipation
        assert delivered == pytest.approx(dissipated, rel=0.3)
