"""Fallback-escalation and forensics tests for the DC solver.

The escalation ladder (warm start -> cold start -> gmin stepping ->
source stepping) is exercised deterministically by gating the real
``newton_solve`` so that only chosen call shapes succeed, and the tier
that finally converged is asserted through telemetry counters — the
same signal ``repro diag`` reads from run manifests.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.circuit.dcop as dcop
from repro.circuit.mna import MnaSystem
from repro.circuit.netlist import Circuit
from repro.telemetry import core as telemetry


@pytest.fixture(autouse=True)
def _no_leaked_session():
    telemetry.disable()
    yield
    telemetry.disable()


def divider():
    c = Circuit()
    c.add_voltage_source("v1", "in", "0", 1.0)
    c.add_resistor("in", "mid", 1e3)
    c.add_resistor("mid", "0", 3e3)
    return c


REAL_NEWTON = dcop.newton_solve


class TestTierTelemetry:
    def test_warm_start_tier(self):
        with telemetry.enabled() as tel:
            op = dcop.solve_dc(divider(), initial_guess={"mid": 0.7})
        assert op.voltage("mid") == pytest.approx(0.75, rel=1e-6)
        assert tel.counters["dcop.converged.warm_start"] == 1
        assert tel.counters["dcop.solves"] == 1

    def test_cold_start_tier_without_guess(self):
        with telemetry.enabled() as tel:
            dcop.solve_dc(divider())
        assert tel.counters["dcop.converged.cold_start"] == 1

    def test_cold_start_tier_after_warm_failure(self, monkeypatch):
        def gated(system, x0, t, options, **kwargs):
            if np.any(x0 != 0.0) and kwargs.get("extra_gmin", 0.0) == 0.0:
                raise dcop.ConvergenceError("forced warm-start failure")
            return REAL_NEWTON(system, x0, t, options, **kwargs)

        monkeypatch.setattr(dcop, "newton_solve", gated)
        with telemetry.enabled() as tel:
            op = dcop.solve_dc(divider(), initial_guess={"mid": 0.7})
        assert op.voltage("mid") == pytest.approx(0.75, rel=1e-6)
        assert tel.counters["dcop.converged.cold_start"] == 1
        assert "dcop.converged.warm_start" not in tel.counters

    def test_gmin_stepping_tier(self, monkeypatch):
        seen_gmin = {"yes": False}

        def gated(system, x0, t, options, **kwargs):
            if kwargs.get("extra_gmin", 0.0) > 0.0:
                seen_gmin["yes"] = True
            elif not seen_gmin["yes"]:
                raise dcop.ConvergenceError("forced plain-Newton failure")
            return REAL_NEWTON(system, x0, t, options, **kwargs)

        monkeypatch.setattr(dcop, "newton_solve", gated)
        with telemetry.enabled() as tel:
            op = dcop.solve_dc(divider())
        assert op.voltage("mid") == pytest.approx(0.75, rel=1e-6)
        assert tel.counters["dcop.converged.gmin_stepping"] == 1
        assert tel.counters.get("dcop.converged.cold_start", 0) == 0

    def test_source_stepping_tier(self, monkeypatch):
        seen_ramp = {"yes": False}

        def gated(system, x0, t, options, **kwargs):
            if kwargs.get("source_scale", 1.0) < 1.0:
                seen_ramp["yes"] = True
            elif kwargs.get("extra_gmin", 0.0) > 0.0 or not seen_ramp["yes"]:
                raise dcop.ConvergenceError("forced failure outside the ramp")
            return REAL_NEWTON(system, x0, t, options, **kwargs)

        monkeypatch.setattr(dcop, "newton_solve", gated)
        with telemetry.enabled() as tel:
            op = dcop.solve_dc(divider())
        assert op.voltage("mid") == pytest.approx(0.75, rel=1e-6)
        assert tel.counters["dcop.converged.source_stepping"] == 1

    def test_total_failure_reports_tier_in_forensics(self, monkeypatch):
        def always_fail(system, x0, t, options, **kwargs):
            raise dcop.ConvergenceError(
                "forced", forensics={"last_dv": 1.0, "max_residual": 2.0}
            )

        monkeypatch.setattr(dcop, "newton_solve", always_fail)
        with telemetry.enabled() as tel:
            with pytest.raises(dcop.ConvergenceError) as excinfo:
                dcop.solve_dc(divider())
        assert excinfo.value.forensics["fallback_tier"] == "source_stepping"
        assert "fallback_tier=source_stepping" in str(excinfo.value)
        assert tel.counters["dcop.failures"] == 1
        assert tel.counters.get("dcop.converged.cold_start", 0) == 0


class TestNewtonErrors:
    def test_zero_max_iterations_is_a_clear_error(self):
        c = divider()
        system = MnaSystem(c)
        options = dcop.SolverOptions(max_iterations=0)
        with pytest.raises(ValueError, match="max_iterations must be >= 1"):
            dcop.newton_solve(system, np.zeros(system.size), 0.0, options)

    def test_failure_carries_forensic_snapshot(self):
        c = divider()
        system = MnaSystem(c)
        options = dcop.SolverOptions(
            max_iterations=1, voltage_tolerance=1e-30, residual_tolerance=1e-30
        )
        with pytest.raises(dcop.ConvergenceError) as excinfo:
            dcop.newton_solve(system, np.ones(system.size), 0.0, options)
        forensics = excinfo.value.forensics
        assert "last_dv" in forensics and "max_residual" in forensics
        names = " ".join(forensics["worst_residual_nodes"])
        assert "in" in names or "mid" in names
        assert "worst_residual_nodes=" in str(excinfo.value)

    def test_newton_counters_roll_up(self):
        with telemetry.enabled() as tel:
            dcop.solve_dc(divider())
        assert tel.counters["newton.solves"] >= 1
        assert tel.counters["newton.iterations"] >= 1
        hist = tel.histograms["newton.iterations_per_solve"]
        assert hist.count == tel.counters["newton.solves"]
        assert tel.timers["newton.wall_s"].count == tel.counters["newton.solves"]
