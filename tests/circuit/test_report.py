"""Tests for netlist and operating-point reports."""

from __future__ import annotations

from repro.circuit.dcop import solve_dc
from repro.circuit.netlist import Circuit
from repro.circuit.report import format_netlist, format_operating_point
from repro.circuit.waveforms import Pulse
from repro.devices.library import tfet_device
from repro.sram import Tfet6TCell


class TestFormatNetlist:
    def test_lists_all_elements(self):
        c = Circuit("demo")
        c.add_voltage_source("vdd", "vdd", "0", 0.8)
        c.add_voltage_source("vin", "in", "0", Pulse(0, 0.8, 1e-10, 1e-9))
        c.add_resistor("vdd", "out", 1e3)
        c.add_capacitor("out", "0", 1e-15, name="cload")
        c.add_transistor("mn", "out", "in", "0", tfet_device(), "n", 0.1)
        text = format_netlist(c)
        assert "demo" in text
        assert "M0 out in 0 ntype W=0.1u * mn" in text
        assert "R0 vdd out 1000" in text
        assert "cload" in text
        assert "DC 0.8V" in text
        assert "Pulse" in text
        assert text.endswith(".end")

    def test_ground_rendered_as_zero(self):
        c = Circuit()
        c.add_resistor("a", "0", 1.0)
        assert "R0 a 0 1" in format_netlist(c)

    def test_sram_cell_netlist_complete(self):
        bench = Tfet6TCell().hold_testbench(0.8)
        text = format_netlist(bench.circuit)
        assert text.count("type W=") == 6
        for name in ("m1_pd", "m2_pu", "m3_ax", "m6_ax"):
            assert name in text


class TestFormatOperatingPoint:
    def test_reports_voltages_and_power(self):
        c = Circuit()
        c.add_voltage_source("v1", "a", "0", 1.0)
        c.add_resistor("a", "0", 1e3)
        op = solve_dc(c)
        text = format_operating_point(op)
        assert "v(a) = +1.000000 V" in text
        assert "i(v1)" in text
        assert "total delivered power" in text
