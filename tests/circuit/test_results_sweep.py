"""Tests for result containers and DC sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.results import TransientResult
from repro.circuit.sweep import dc_sweep
from repro.devices.library import tfet_device


def make_result():
    c = Circuit()
    c.node("a")
    c.node("b")
    times = np.linspace(0.0, 1e-9, 11)
    states = np.zeros((11, 2))
    states[:, 0] = np.linspace(0.0, 1.0, 11)  # a ramps up
    states[:, 1] = np.linspace(1.0, 0.0, 11)  # b ramps down
    return c, TransientResult(c, times, states)


class TestTransientResult:
    def test_voltage_and_at(self):
        _, res = make_result()
        assert res.at("a", 0.5e-9) == pytest.approx(0.5)
        assert res.final("b") == pytest.approx(0.0)

    def test_ground_voltage_is_zero(self):
        _, res = make_result()
        assert np.all(res.voltage("0") == 0.0)

    def test_min_difference(self):
        _, res = make_result()
        # a - b goes from -1 to +1; min over the full window is -1.
        assert res.min_difference("a", "b", 0.0, 1e-9) == pytest.approx(-1.0)

    def test_min_difference_window_validation(self):
        _, res = make_result()
        with pytest.raises(ValueError):
            res.min_difference("a", "b", 1e-9, 0.0)

    def test_crossing_time_interpolated(self):
        _, res = make_result()
        # a and b cross at t = 0.5 ns exactly.
        assert res.crossing_time("a", "b") == pytest.approx(0.5e-9, rel=1e-9)

    def test_crossing_time_none_when_no_cross(self):
        _, res = make_result()
        assert res.crossing_time("a", "b", after=0.7e-9) is None

    def test_length_mismatch_rejected(self):
        c = Circuit()
        c.node("a")
        with pytest.raises(ValueError):
            TransientResult(c, np.zeros(3), np.zeros((4, 1)))


class TestDcSweep:
    def build_inverter(self):
        c = Circuit()
        c.add_voltage_source("vdd", "vdd", "0", 0.8)
        c.add_voltage_source("vin", "in", "0", 0.0)
        d = tfet_device()
        c.add_transistor("mp", "out", "in", "vdd", d, "p", 0.1)
        c.add_transistor("mn", "out", "in", "0", d, "n", 0.1)
        return c

    def test_vtc_is_monotone_decreasing(self):
        c = self.build_inverter()
        vins = np.linspace(0.0, 0.8, 17)
        ops = dc_sweep(c, "vin", vins, initial_guess={"out": 0.8})
        vouts = [op.voltage("out") for op in ops]
        assert vouts[0] == pytest.approx(0.8, abs=5e-3)
        assert vouts[-1] == pytest.approx(0.0, abs=5e-3)
        assert all(b <= a + 1e-6 for a, b in zip(vouts, vouts[1:]))

    def test_vtc_has_high_gain_transition(self):
        c = self.build_inverter()
        vins = np.linspace(0.2, 0.6, 41)
        ops = dc_sweep(c, "vin", vins, initial_guess={"out": 0.8})
        vouts = np.array([op.voltage("out") for op in ops])
        gain = np.abs(np.diff(vouts) / np.diff(vins))
        assert np.max(gain) > 3.0

    def test_original_waveform_restored(self):
        c = self.build_inverter()
        before = c.voltage_sources[c.source_index("vin")].waveform
        dc_sweep(c, "vin", [0.0, 0.4], initial_guess={"out": 0.8})
        after = c.voltage_sources[c.source_index("vin")].waveform
        assert after is before

    def test_unknown_source_raises(self):
        c = self.build_inverter()
        with pytest.raises(KeyError):
            dc_sweep(c, "nope", [0.0])
