"""Tests for the top-level command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestDeviceInfo:
    def test_prints_anchors(self, capsys):
        assert main(["device-info"]) == 0
        out = capsys.readouterr().out
        assert "1.000e-04" in out
        assert "1.000e-17" in out
        assert "MOSFET" in out


class TestCell:
    def test_proposed_cell_report(self, capsys):
        assert main(["cell", "proposed", "--vdd", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "hold power" in out
        assert "WL_crit" in out
        assert "read assist" in out

    def test_asym_wlcrit_undefined(self, capsys):
        assert main(["cell", "asym"]) == 0
        assert "undefined (no separatrix)" in capsys.readouterr().out

    def test_unknown_cell_rejected(self):
        with pytest.raises(SystemExit):
            main(["cell", "nonsense"])

    def test_corner_flag_annotates_report(self, capsys):
        assert main(["cell", "proposed", "--corner", "ss"]) == 0
        assert "[ss corner]" in capsys.readouterr().out

    def test_unknown_corner_lists_known_names(self, capsys):
        assert main(["cell", "proposed", "--corner", "zz"]) == 2
        err = capsys.readouterr().err
        assert "zz" in err
        for name in ("ff", "fs", "sf", "ss", "tt"):
            assert name in err

    def test_cmos_rejects_non_nominal_corner(self, capsys):
        assert main(["cell", "cmos", "--corner", "ff"]) == 2
        assert "CMOS" in capsys.readouterr().err


class TestExperiment:
    def test_delegates_to_runner(self, capsys):
        assert main(["experiment", "tab_area"]) == 0
        assert "7T" in capsys.readouterr().out


class TestExperimentTelemetryFlags:
    def test_profile_flags_forwarded(self, tmp_path, capsys):
        assert (
            main(
                [
                    "experiment",
                    "tab_area",
                    "--profile",
                    "--trace",
                    str(tmp_path / "trace.json"),
                    "--output-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "tab_area_manifest.json" in out
        assert (tmp_path / "tab_area_manifest.json").exists()
        assert (tmp_path / "trace.json").exists()


class TestDiag:
    def test_summarizes_manifests(self, tmp_path, capsys):
        assert main(["experiment", "tab_area", "--profile",
                     "--output-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["diag", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "solver diagnostics" in out
        assert "tab_area" in out

    def test_empty_directory_fails_with_hint(self, tmp_path, capsys):
        assert main(["diag", str(tmp_path)]) == 1
        assert "no run manifests" in capsys.readouterr().out


class TestNetlist:
    def test_op_analysis(self, tmp_path, capsys):
        deck = tmp_path / "div.sp"
        deck.write_text("* divider\nV1 in 0 1.0\nR1 in mid 1k\nR2 mid 0 1k\n.end\n")
        assert main(["netlist", str(deck)]) == 0
        out = capsys.readouterr().out
        assert "v(mid) = +0.500000 V" in out

    def test_transient(self, tmp_path, capsys):
        deck = tmp_path / "rc.sp"
        deck.write_text("V1 in 0 PULSE(0 1 0.1n 100n)\nR1 in out 1k\nC1 out 0 10f\n")
        assert main(["netlist", str(deck), "--tran", "1e-9"]) == 0
        out = capsys.readouterr().out
        assert "transient" in out
        assert "v(out) final" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestCharStatusJson:
    def test_empty_store_reports_coverage(self, tmp_path, capsys):
        import json

        assert main(
            ["char", "status", "--spec", "nominal", "--store", str(tmp_path),
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"] == "nominal"
        assert payload["present"] == 0
        assert payload["missing"] == payload["total"] > 0
        assert payload["store"] == str(tmp_path)
        assert payload["index"]["entries"] == 0

    def test_plain_output_unchanged(self, tmp_path, capsys):
        assert main(
            ["char", "status", "--spec", "nominal", "--store", str(tmp_path)]
        ) == 0
        assert "entries present" in capsys.readouterr().out


class TestServeCLIOffline:
    def test_status_without_a_daemon_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "no-daemon.sock"
        assert main(["serve", "status", "--socket", str(missing)]) == 2
        assert "cannot reach a serve daemon" in capsys.readouterr().err

    def test_query_without_a_daemon_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "no-daemon.sock"
        assert main(
            ["serve", "query", "hold_power", "--design", "cmos", "--vdd", "0.6",
             "--socket", str(missing)]
        ) == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_start_rejects_unknown_spec(self, tmp_path, capsys):
        assert main(
            ["serve", "start", "--spec", "made-up",
             "--socket", str(tmp_path / "s.sock"), "--store", str(tmp_path)]
        ) == 2
        assert "unknown spec" in capsys.readouterr().err


class TestArrayCLI:
    def test_build_prints_structure(self, capsys):
        assert main(["array", "build", "--rows", "8", "--columns", "2"]) == 0
        out = capsys.readouterr().out
        assert "unknowns" in out
        assert "census" in out
        assert "replica" in out

    def test_measure_half_select_with_profile_manifest(self, tmp_path, capsys):
        code = main(
            ["array", "measure", "--rows", "4", "--columns", "2",
             "--scenario", "half_select", "--profile",
             "--output-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "disturb margin" in out
        assert (tmp_path / "array_measure_manifest.json").exists()
        assert main(["diag", str(tmp_path)]) == 0
        assert "array_measure" in capsys.readouterr().out

    def test_sense_none_skips_the_sense_amp(self, capsys):
        assert main(
            ["array", "build", "--rows", "4", "--columns", "2",
             "--sense", "none"]
        ) == 0
        assert "replica" not in capsys.readouterr().out

    def test_corner_error_reported(self, capsys):
        assert main(
            ["array", "build", "--design", "cmos", "--corner", "ss"]
        ) == 2
        assert "corner" in capsys.readouterr().err

    def test_sweep_checkpoints_and_resumes(self, tmp_path, capsys):
        argv = ["array", "sweep", "--rows-list", "4", "--columns", "2",
                "--output-dir", str(tmp_path)]
        assert main(argv) == 0
        assert "4" in capsys.readouterr().out
        assert (tmp_path / "checkpoints" / "array_sweep.jsonl").exists()
        assert main(argv + ["--resume"]) == 0
        assert "1 resumed" in capsys.readouterr().out

    def test_bad_rows_list_is_an_error(self, capsys):
        assert main(["array", "sweep", "--rows-list", "4,x"]) == 2
        assert "rows-list" in capsys.readouterr().err
