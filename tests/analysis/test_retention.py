"""Tests for the data-retention-voltage analysis."""

from __future__ import annotations

import pytest

from repro.analysis.retention import holds_state_at, retention_voltage
from repro.experiments.designs import cmos_cell, proposed_cell


class TestHoldsStateAt:
    def test_holds_at_nominal(self):
        assert holds_state_at(proposed_cell(), 0.8)

    def test_fails_near_zero(self):
        assert not holds_state_at(proposed_cell(), 0.05)


class TestRetentionVoltage:
    @pytest.fixture(scope="class")
    def tfet_drv(self):
        return retention_voltage(proposed_cell(), points=17)

    @pytest.fixture(scope="class")
    def cmos_drv(self):
        return retention_voltage(cmos_cell(), points=17)

    def test_drv_in_plausible_window(self, tfet_drv, cmos_drv):
        assert 0.1 < tfet_drv < 0.4
        assert 0.05 < cmos_drv < 0.3

    def test_tfet_retention_floor_above_cmos(self, tfet_drv, cmos_drv):
        # The non-obvious result: the late tunneling onset costs the
        # TFET cell retention-voltage headroom.
        assert tfet_drv > cmos_drv

    def test_cell_holds_at_its_drv(self, tfet_drv):
        assert holds_state_at(proposed_cell(), tfet_drv, points=17)

    def test_cell_fails_below_its_drv(self, tfet_drv):
        assert not holds_state_at(proposed_cell(), tfet_drv - 0.05, points=17)

    def test_validation(self):
        with pytest.raises(ValueError):
            retention_voltage(proposed_cell(), vdd_max=0.1, vdd_min=0.2)


class TestRetentionExperiment:
    def test_experiment_runs_and_reports_saving(self):
        from repro.experiments import ext_retention

        result = ext_retention.run(points=17)
        rows = {row[0]: row for row in result.rows}
        h = result.header
        tfet = rows["proposed TFET"]
        cmos = rows["6T CMOS"]
        # Standby saving from V_DD scaling is positive for both ...
        assert tfet[h.index("standby saving")] > 1.0
        # ... but the absolute TFET floor is orders below CMOS's.
        assert cmos[h.index("standby @ retention (W)")] > 1e4 * tfet[
            h.index("standby @ retention (W)")
        ]
