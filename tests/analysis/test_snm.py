"""Tests for the static-noise-margin (butterfly) analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.snm import ButterflyCurves, butterfly_curves, static_noise_margin
from repro.sram import AccessConfig, CellSizing, Cmos6TCell, Tfet6TCell


class TestButterflyGeometry:
    def test_ideal_inverter_pair_margin(self):
        # Two ideal rail-to-rail inverters switching at VDD/2: the lobe
        # square has side VDD/2 (classic textbook result is ~VDD/2 for
        # a step VTC).
        vdd = 1.0
        x = np.linspace(0.0, vdd, 201)
        step = np.where(x < vdd / 2, vdd, 0.0)
        curves = ButterflyCurves(inputs=x, forward=step, reverse=step)
        assert curves.noise_margin() == pytest.approx(vdd / 2, abs=0.02)

    def test_degenerate_curves_give_zero_margin(self):
        # Both "inverters" are wires: the butterfly has no lobes.
        x = np.linspace(0.0, 1.0, 51)
        curves = ButterflyCurves(inputs=x, forward=x.copy(), reverse=x.copy())
        assert curves.noise_margin() == pytest.approx(0.0, abs=1e-9)


class TestOnCells:
    @pytest.fixture(scope="class")
    def tfet_cell(self):
        return Tfet6TCell(CellSizing().with_beta(0.6), access=AccessConfig.INWARD_P)

    def test_hold_snm_healthy(self, tfet_cell):
        snm = static_noise_margin(tfet_cell, 0.8, read_condition=False, points=21)
        assert 0.2 < snm < 0.45

    def test_read_snm_much_smaller_than_hold(self, tfet_cell):
        hold = static_noise_margin(tfet_cell, 0.8, read_condition=False, points=21)
        read = static_noise_margin(tfet_cell, 0.8, read_condition=True, points=21)
        assert read < 0.5 * hold

    def test_cmos_read_snm_beats_write_sized_tfet(self, tfet_cell):
        cmos = Cmos6TCell(CellSizing().with_beta(1.3))
        snm_cmos = static_noise_margin(cmos, 0.8, read_condition=True, points=21)
        snm_tfet = static_noise_margin(tfet_cell, 0.8, read_condition=True, points=21)
        assert snm_cmos > snm_tfet

    def test_dynamic_margin_exceeds_static_read_margin(self, tfet_cell):
        from repro.analysis.stability import dynamic_read_noise_margin

        static = static_noise_margin(tfet_cell, 0.8, read_condition=True, points=21)
        dynamic = dynamic_read_noise_margin(tfet_cell.read_testbench(0.8))
        assert dynamic > 3.0 * static

    def test_butterfly_curves_monotone(self, tfet_cell):
        curves = butterfly_curves(tfet_cell, 0.8, read_condition=False, points=15)
        assert all(b <= a + 1e-6 for a, b in zip(curves.forward, curves.forward[1:]))
