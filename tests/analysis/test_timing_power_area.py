"""Tests for delay, power, and area analyses."""

from __future__ import annotations

import math

import pytest

from repro.analysis.area import AreaModel, area_report, cell_area_um2
from repro.analysis.power import hold_power
from repro.analysis.timing import read_delay, write_delay
from repro.sram import (
    AccessConfig,
    CellSizing,
    Cmos6TCell,
    Tfet6TCell,
    Tfet7TCell,
)

VDD = 0.8


@pytest.fixture(scope="module")
def proposed():
    return Tfet6TCell(CellSizing().with_beta(0.6), access=AccessConfig.INWARD_P)


@pytest.fixture(scope="module")
def cmos():
    return Cmos6TCell(CellSizing().with_beta(1.3))


class TestWriteDelay:
    def test_cmos_faster_than_tfet(self, proposed, cmos):
        assert write_delay(cmos, VDD) < write_delay(proposed, VDD, pulse_width=4e-9)

    def test_unwritable_cell_reports_infinity(self):
        cell = Tfet6TCell(CellSizing().with_beta(2.5), access=AccessConfig.INWARD_P)
        assert math.isinf(write_delay(cell, VDD, pulse_width=2e-9))

    def test_delay_positive(self, cmos):
        assert write_delay(cmos, VDD) > 0.0

    def test_delay_shrinks_with_supply(self, cmos):
        assert write_delay(cmos, 0.9) < write_delay(cmos, 0.6)


class TestReadDelay:
    def test_positive_and_finite(self, proposed):
        d = read_delay(proposed, VDD)
        assert 0.0 < d < 4e-9

    def test_faster_at_higher_vdd(self, proposed):
        assert read_delay(proposed, 0.9) < read_delay(proposed, 0.6, duration=8e-9)

    def test_higher_threshold_takes_longer(self, proposed):
        fast = read_delay(proposed, VDD, threshold=0.02)
        slow = read_delay(proposed, VDD, threshold=0.10)
        assert slow > fast

    def test_infinite_when_threshold_unreachable(self, proposed):
        assert math.isinf(read_delay(proposed, VDD, duration=5e-11, threshold=0.5))

    def test_single_ended_7t_read(self):
        d = read_delay(Tfet7TCell(), VDD)
        assert 0.0 < d < 4e-9


class TestHoldPower:
    def test_state_averaging(self, proposed):
        averaged = hold_power(proposed, VDD)
        single = hold_power(proposed, VDD, average_states=False)
        # The symmetric proposed cell leaks the same in both states.
        assert averaged == pytest.approx(single, rel=0.1)

    def test_grows_with_supply(self, proposed):
        assert hold_power(proposed, 0.8) > hold_power(proposed, 0.5)

    def test_positive(self, proposed):
        assert hold_power(proposed, 0.5) > 0.0


class TestArea:
    def test_seven_t_in_paper_band(self, proposed):
        ratio = cell_area_um2(Tfet7TCell()) / cell_area_um2(proposed)
        assert 1.08 <= ratio <= 1.18

    def test_area_grows_with_width(self):
        small = Tfet6TCell(CellSizing().with_beta(0.5))
        large = Tfet6TCell(CellSizing().with_beta(2.0))
        assert cell_area_um2(large) > cell_area_um2(small)

    def test_transistor_area_model(self):
        m = AreaModel()
        assert m.transistor_area(0.2) > m.transistor_area(0.1)

    def test_report_covers_all_cells(self, proposed):
        report = area_report({"a": proposed, "b": Tfet7TCell()})
        assert set(report) == {"a", "b"}
        assert all(v > 0 for v in report.values())
