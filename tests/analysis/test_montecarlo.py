"""Tests for the Monte-Carlo engine."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    MonteCarloResult,
    MonteCarloStudy,
    varied_device_set,
)
from repro.devices.library import tfet_device
from repro.sram import AccessConfig, CellSizing, Tfet6TCell
from repro.sram.cell import TfetDeviceSet


class TestVariedDeviceSet:
    def test_nominal_scales_reuse_cached_card(self):
        ds = varied_device_set([1.0] * 7)
        assert ds.pulldown_left is tfet_device()
        assert ds.read_buffer is tfet_device()

    def test_positions_follow_order(self):
        scales = [0.95, 1.05, 1.0, 1.0, 1.0, 1.0, 1.0]
        ds = varied_device_set(scales)
        assert ds.pulldown_left is tfet_device(0.95)
        assert ds.pulldown_right is tfet_device(1.05)

    def test_short_scale_list_pads_with_nominal(self):
        ds = varied_device_set([0.95])
        assert ds.pulldown_left is tfet_device(0.95)
        assert ds.access_left is tfet_device()


class TestMonteCarloResult:
    def test_statistics_with_failures(self):
        samples = np.array([1.0, 2.0, 3.0, math.inf])
        r = MonteCarloResult("m", samples)
        assert r.failure_count == 1
        assert r.failure_fraction == pytest.approx(0.25)
        assert r.mean() == pytest.approx(2.0)
        assert r.std() == pytest.approx(np.std([1.0, 2.0, 3.0]))

    def test_spread(self):
        r = MonteCarloResult("m", np.array([1.0, 3.0]))
        assert r.spread() == pytest.approx(0.5)

    def test_all_failures(self):
        r = MonteCarloResult("m", np.array([math.inf, math.inf]))
        assert math.isinf(r.mean())
        assert r.failure_count == 2

    def test_histogram(self):
        r = MonteCarloResult("m", np.linspace(0.0, 1.0, 100))
        counts, edges = r.histogram(bins=10)
        assert counts.sum() == 100
        assert len(edges) == 11

    def test_empty_histogram(self):
        r = MonteCarloResult("m", np.array([math.inf]))
        counts, _ = r.histogram()
        assert counts.sum() == 0


class TestMonteCarloStudy:
    def make_study(self, metric):
        sizing = CellSizing().with_beta(0.6)
        return MonteCarloStudy(
            cell_factory=lambda d: Tfet6TCell(sizing, AccessConfig.INWARD_P, devices=d),
            metric=metric,
            metric_name="probe",
        )

    def test_reproducible_with_seed(self):
        seen = []

        def metric(cell):
            seen.append(cell.devices.pulldown_left.on_current(1.0))
            return seen[-1]

        a = self.make_study(metric).run(4, seed=7)
        b = self.make_study(metric).run(4, seed=7)
        assert np.array_equal(a.samples, b.samples)

    def test_samples_vary_between_draws(self):
        def metric(cell):
            return cell.devices.pulldown_left.on_current(1.0)

        result = self.make_study(metric).run(8, seed=11)
        assert np.std(result.samples) > 0.0

    def test_each_sample_gets_independent_devices(self):
        def metric(cell):
            cards = {
                id(getattr(cell.devices, p))
                for p in TfetDeviceSet.POSITIONS
                if getattr(cell.devices, p) is not None
            }
            return float(len(cards))

        result = self.make_study(metric).run(5, seed=3)
        # With 7 independent draws per sample, most samples should see
        # several distinct cards.
        assert result.mean() > 2.0

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            self.make_study(lambda c: 0.0).run(0)

    def test_real_metric_smoke(self):
        from repro.analysis.stability import dynamic_read_noise_margin

        study = self.make_study(
            lambda c: dynamic_read_noise_margin(c.read_testbench(0.8))
        )
        result = study.run(3, seed=5)
        assert result.failure_count == 0
        assert 0.3 < result.mean() < 0.8
        assert result.spread() < 0.2


class TestYieldEstimates:
    def make(self, values):
        return MonteCarloResult("m", np.asarray(values, dtype=float))

    def test_yield_below_counts_finite_passes(self):
        r = self.make([1.0, 2.0, 3.0, math.inf])
        assert r.yield_below(2.5) == pytest.approx(0.5)

    def test_yield_above(self):
        r = self.make([0.1, 0.5, 0.9])
        assert r.yield_above(0.4) == pytest.approx(2 / 3)

    def test_failures_count_against_yield(self):
        r = self.make([1.0, math.inf])
        assert r.yield_below(10.0) == pytest.approx(0.5)
        assert r.yield_above(0.0) == pytest.approx(0.5)

    def test_gaussian_yield_matches_empirical_for_large_sample(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(1.0, 0.1, 4000)
        r = self.make(samples)
        assert r.gaussian_yield_below(1.1) == pytest.approx(r.yield_below(1.1), abs=0.02)

    def test_gaussian_yield_scales_with_failures(self):
        samples = np.array([1.0, 1.01, 0.99, math.inf])
        r = self.make(samples)
        assert r.gaussian_yield_below(5.0) == pytest.approx(0.75, abs=0.01)

    def test_gaussian_yield_nan_for_tiny_sample(self):
        assert math.isnan(self.make([1.0]).gaussian_yield_below(2.0))

    def test_gaussian_yield_nan_for_empty_samples(self):
        assert math.isnan(self.make([]).gaussian_yield_below(2.0))

    def test_gaussian_yield_nan_when_no_finite_samples(self):
        r = self.make([math.inf, math.nan, math.inf])
        assert math.isnan(r.gaussian_yield_below(2.0))

    def test_gaussian_yield_degenerate_spread_is_step_function(self):
        # All finite samples identical: the clamped-std fit degenerates
        # to a step at the common value (documented contract).
        r = self.make([1.0, 1.0, 1.0])
        assert r.gaussian_yield_below(0.5) == pytest.approx(0.0)
        assert r.gaussian_yield_below(1.0) == pytest.approx(0.5)
        assert r.gaussian_yield_below(1.5) == pytest.approx(1.0)

    def test_gaussian_yield_degenerate_spread_scales_with_failures(self):
        r = self.make([1.0, 1.0, math.inf, math.inf])
        assert r.gaussian_yield_below(2.0) == pytest.approx(0.5)

    def test_counting_yields_nan_for_empty_samples(self):
        r = self.make([])
        assert math.isnan(r.yield_below(1.0))
        assert math.isnan(r.yield_above(1.0))
        assert r.failure_fraction == 0.0
