"""Tests for the stability metrics (DRNM and WL_crit)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.stability import (
    WlCritSearch,
    critical_wordline_pulse,
    dynamic_read_noise_margin,
)
from repro.sram import AccessConfig, CellSizing, Tfet6TCell


class FakeBenchFactory:
    """Synthetic write: flips iff the pulse is at least ``threshold``."""

    def __init__(self, threshold):
        self.threshold = threshold
        self.calls = []

    def __call__(self, width):
        self.calls.append(width)
        return width


class ThresholdSearch(WlCritSearch):
    """WlCritSearch with the simulation replaced by a width threshold."""

    def __init__(self, threshold, **kwargs):
        super().__init__(**kwargs)
        self.threshold = threshold

    def _flips(self, bench_factory, width):
        bench_factory(width)
        return width >= self.threshold


class TestWlCritSearch:
    def test_finds_threshold(self):
        factory = FakeBenchFactory(3.3e-10)
        search = ThresholdSearch(3.3e-10)
        result = search.search(factory)
        assert result == pytest.approx(3.3e-10, rel=0.03)

    def test_infinite_when_upper_bound_fails(self):
        factory = FakeBenchFactory(1.0)
        search = ThresholdSearch(1.0, upper_bound=4e-9)
        assert math.isinf(search.search(factory))

    def test_lower_bound_returned_when_everything_flips(self):
        search = ThresholdSearch(0.0, lower_bound=1e-12)
        assert search.search(FakeBenchFactory(0.0)) == 1e-12

    def test_result_always_flips_and_is_conservative(self):
        threshold = 7.7e-10
        search = ThresholdSearch(threshold)
        result = search.search(FakeBenchFactory(threshold))
        assert result >= threshold

    def test_bisection_is_logarithmic(self):
        factory = FakeBenchFactory(5e-10)
        search = ThresholdSearch(5e-10, relative_tolerance=0.02)
        search.search(factory)
        # 3.6 decades at 2 % tolerance: well under 25 evaluations.
        assert len(factory.calls) < 25

    def test_validation(self):
        with pytest.raises(ValueError):
            WlCritSearch(lower_bound=1e-9, upper_bound=1e-10)
        with pytest.raises(ValueError):
            WlCritSearch(relative_tolerance=0.0)


class TestOnRealCell:
    @pytest.fixture(scope="class")
    def cell(self):
        return Tfet6TCell(CellSizing().with_beta(0.5), access=AccessConfig.INWARD_P)

    def test_wlcrit_consistent_with_direct_simulation(self, cell):
        from repro.analysis.stability import write_flips_cell

        wl = critical_wordline_pulse(cell, 0.8)
        assert math.isfinite(wl)
        assert write_flips_cell(cell.write_testbench(0.8, 1.1 * wl))
        assert not write_flips_cell(cell.write_testbench(0.8, 0.8 * wl))

    def test_drnm_requires_read_bench(self, cell):
        with pytest.raises(ValueError, match="read"):
            dynamic_read_noise_margin(cell.write_testbench(0.8, 1e-9))

    def test_drnm_bounded_by_supply(self, cell):
        drnm = dynamic_read_noise_margin(cell.read_testbench(0.8))
        assert 0.0 < drnm < 0.8 + 1e-6
