"""Tests for dynamic energy and leakage attribution."""

from __future__ import annotations

import pytest

from repro.analysis.energy import read_energy, write_energy
from repro.analysis.leakage import leakage_breakdown
from repro.sram import (
    READ_ASSISTS,
    AccessConfig,
    CellSizing,
    Cmos6TCell,
    Tfet6TCell,
)

VDD = 0.8


@pytest.fixture(scope="module")
def proposed():
    return Tfet6TCell(CellSizing().with_beta(0.6), access=AccessConfig.INWARD_P)


class TestOperationEnergy:
    def test_write_energy_in_femtojoule_regime(self, proposed):
        e = write_energy(proposed, VDD)
        # Node charges are ~fC at 0.8 V: the energy must land in the
        # sub-10 fJ window, orders above the leakage baseline.
        assert 1e-17 < e < 1e-14

    def test_read_energy_positive(self, proposed):
        e = read_energy(proposed, VDD)
        assert e > 0.0

    def test_assisted_read_costs_more(self, proposed):
        plain = read_energy(proposed, VDD)
        assisted = read_energy(proposed, VDD, assist=READ_ASSISTS["vgnd_lowering"])
        # The paper's caveat: generating the lowered V_GND costs
        # dynamic power.
        assert assisted > plain

    def test_higher_vdd_costs_more(self, proposed):
        assert write_energy(proposed, 0.9) > write_energy(proposed, 0.6)


class TestLeakageBreakdown:
    def test_total_matches_hold_power_scale(self, proposed):
        from repro.analysis.power import hold_power

        breakdown = leakage_breakdown(proposed.hold_testbench(VDD))
        total = breakdown.total_dissipation
        reference = hold_power(proposed, VDD, average_states=False)
        assert total == pytest.approx(reference, rel=0.5)

    def test_outward_cell_dominated_by_reverse_biased_access(self):
        cell = Tfet6TCell(CellSizing(), access=AccessConfig.OUTWARD_N)
        breakdown = leakage_breakdown(cell.hold_testbench(VDD))
        dominant = breakdown.dominant()
        assert dominant.name in ("m3_ax", "m6_ax")
        assert dominant.is_reverse_biased
        assert breakdown.fraction(dominant.name) > 0.9

    def test_inward_cell_has_no_reverse_biased_device(self, proposed):
        breakdown = leakage_breakdown(proposed.hold_testbench(VDD))
        significant = [
            d for d in breakdown.devices if d.dissipation > 0.01 * breakdown.total_dissipation
        ]
        assert all(not d.is_reverse_biased for d in significant)

    def test_cmos_breakdown_spreads_over_off_devices(self):
        cell = Cmos6TCell(CellSizing().with_beta(1.3))
        breakdown = leakage_breakdown(cell.hold_testbench(VDD))
        assert breakdown.total_dissipation > 1e-13
        assert breakdown.fraction(breakdown.dominant().name) < 0.9

    def test_unknown_device_fraction_raises(self, proposed):
        breakdown = leakage_breakdown(proposed.hold_testbench(VDD))
        with pytest.raises(KeyError):
            breakdown.fraction("m99")
