"""CLI tests for ``repro trace`` and ``repro bench``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.engine import EngineConfig, Task, derive_seed, run_tasks
from repro.obs.sink import reset_worker_sinks

from obs_helpers import flaky_once, seeded_value

TRACE_ID = "c11c11c11c11c11c"


@pytest.fixture(autouse=True)
def _clean_sinks():
    reset_worker_sinks()
    yield
    reset_worker_sinks()


@pytest.fixture()
def traced_dir(tmp_path):
    trace_dir = tmp_path / "trace"
    tasks = [
        Task(index=k, fn=seeded_value, payload=k, seed=derive_seed(3, k))
        for k in range(3)
    ] + [Task(index=3, fn=flaky_once, payload=None, seed=derive_seed(3, 3))]
    run_tasks(
        tasks,
        EngineConfig(
            retries=1, trace_dir=trace_dir, trace_id=TRACE_ID, run_key="cli"
        ),
    )
    return trace_dir


class TestTraceVerbs:
    def test_summary(self, traced_dir, capsys):
        assert main(["trace", "summary", "--trace", str(traced_dir)]) == 0
        out = capsys.readouterr().out
        assert "== trace summary ==" in out
        assert TRACE_ID in out
        assert "4 tasks" in out

    def test_timeline(self, traced_dir, capsys):
        assert main(
            ["trace", "timeline", "--trace", str(traced_dir), "--width", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "== task timeline ==" in out
        assert "lane  0" in out

    def test_slowest(self, traced_dir, capsys):
        assert main(["trace", "slowest", "--trace", str(traced_dir), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "== slowest tasks (top 2 of 4) ==" in out
        assert "newton iters" in out

    def test_convergence(self, traced_dir, capsys):
        assert main(["trace", "convergence", "--trace", str(traced_dir)]) == 0
        out = capsys.readouterr().out
        assert "== convergence forensics ==" in out
        assert "task 3:" in out

    def test_accepts_merged_file_path(self, traced_dir, capsys):
        path = traced_dir / "trace.json"
        assert main(["trace", "summary", "--trace", str(path)]) == 0
        assert "== trace summary ==" in capsys.readouterr().out

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        assert main(["trace", "summary", "--trace", str(tmp_path / "none")]) == 2
        assert "no merged trace" in capsys.readouterr().err


class TestBenchVerbs:
    def write_bench(self, root, speedup, created=1.0):
        (root / "BENCH_engine.json").write_text(
            json.dumps(
                {
                    "schema": "repro.bench.engine/v1",
                    "created_unix": created,
                    "speedup": speedup,
                    "min_speedup": 2.0,
                }
            )
        )

    def test_history_records_and_prints(self, tmp_path, capsys):
        self.write_bench(tmp_path, 3.5)
        hist = tmp_path / "hist.jsonl"
        args = ["bench", "history", "--root", str(tmp_path), "--history", str(hist)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "recorded 1 new bench result(s)" in out
        assert "== bench history ==" in out
        # idempotent on the second pass over the same BENCH file
        assert main(args) == 0
        assert "recorded" not in capsys.readouterr().out

    def test_check_passes_when_healthy(self, tmp_path, capsys):
        self.write_bench(tmp_path, 3.5)
        hist = tmp_path / "hist.jsonl"
        assert main(
            ["bench", "check", "--root", str(tmp_path), "--history", str(hist)]
        ) == 0
        assert "no regressions detected" in capsys.readouterr().out

    def test_check_flags_regression(self, tmp_path, capsys):
        hist = tmp_path / "hist.jsonl"
        self.write_bench(tmp_path, 3.5, created=1.0)
        assert main(
            ["bench", "history", "--root", str(tmp_path), "--history", str(hist)]
        ) == 0
        self.write_bench(tmp_path, 1.2, created=2.0)
        assert main(
            ["bench", "check", "--root", str(tmp_path), "--history", str(hist)]
        ) == 1
        out = capsys.readouterr().out
        assert "REGRESSION:" in out
        assert "hard gate" in out
