"""Module-level task functions for the trace-pipeline tests.

Pool workers pickle task functions by qualified name, so everything a
multi-worker traced test submits must live in an importable module —
same constraint as ``tests/engine/engine_helpers.py``.
"""

from __future__ import annotations

from repro.circuit.dcop import ConvergenceError


def seeded_value(payload, ctx) -> float:
    """Deterministic float from the task's private rng stream."""
    return float(ctx.rng().standard_normal()) + float(payload)


def flaky_once(payload, ctx) -> float:
    """Diverges on the first attempt; succeeds once retried."""
    if ctx.attempt == 0:
        raise ConvergenceError(f"task {ctx.index}: first attempt diverges")
    return float(ctx.attempt)


def always_diverges(payload, ctx) -> float:
    raise ConvergenceError("no operating point found")
