"""Tests for the metrics export layer (JSON envelope + Prometheus text)."""

from __future__ import annotations

import json

from repro.obs.export import (
    METRICS_SCHEMA,
    metrics_payload,
    to_prometheus,
    write_metrics,
)
from repro.telemetry.core import TelemetrySession, TraceContext


def make_session() -> TelemetrySession:
    tel = TelemetrySession(trace=TraceContext(trace_id="abad1deaabad1dea"))
    tel.count("dcop.solves", 7)
    tel.count("dcop.converged.warm_start", 5)
    tel.observe("newton.iters_per_solve", 4.0)
    tel.observe("newton.iters_per_solve", 8.0)
    tel.add_time("dcop.wall", 0.25)
    return tel


class TestEnvelope:
    def test_payload_shape(self):
        payload = metrics_payload(
            make_session().snapshot(), run="fig09", trace_id="x", duration_s=1.5
        )
        assert payload["schema"] == METRICS_SCHEMA
        assert payload["run"] == "fig09"
        assert payload["trace_id"] == "x"
        assert payload["duration_s"] == 1.5
        assert payload["metrics"]["counters"]["dcop.solves"] == 7

    def test_bare_defaults(self):
        payload = metrics_payload({})
        assert payload["run"] is None
        assert payload["trace_id"] is None


class TestPrometheus:
    def test_counters_sanitized_and_suffixed(self):
        text = to_prometheus(make_session().snapshot())
        assert "# TYPE repro_dcop_solves_total counter" in text
        assert "repro_dcop_solves_total 7" in text
        assert "repro_dcop_converged_warm_start_total 5" in text

    def test_leading_digit_names_stay_legal(self):
        text = to_prometheus({"counters": {"6t.cell": 1}})
        assert "repro__6t_cell_total 1" in text

    def test_histograms_render_as_summaries(self):
        text = to_prometheus(make_session().snapshot())
        assert "# TYPE repro_newton_iters_per_solve summary" in text
        assert "repro_newton_iters_per_solve_count 2" in text
        assert 'repro_newton_iters_per_solve{quantile="0.5"}' in text

    def test_timers_suffixed_seconds(self):
        text = to_prometheus(make_session().snapshot())
        assert "# TYPE repro_dcop_wall_seconds summary" in text
        assert "repro_dcop_wall_seconds_sum 0.25" in text

    def test_run_label_applied_and_escaped(self):
        payload = metrics_payload(
            make_session().snapshot(), run='fig"09"', duration_s=2.0
        )
        text = to_prometheus(payload)
        assert 'repro_dcop_solves_total{run="fig\\"09\\""} 7' in text
        assert "# TYPE repro_run_duration_seconds gauge" in text
        assert 'repro_run_duration_seconds{run="fig\\"09\\""} 2.0' in text
        assert '{run="fig\\"09\\"",quantile="0.5"}' in text

    def test_non_finite_values_rendered_per_spec(self):
        text = to_prometheus(
            {"counters": {}, "timers": {"t": {"count": 1, "total": float("inf")}}}
        )
        assert "repro_t_seconds_sum +Inf" in text
        nan_text = to_prometheus(
            {"timers": {"t": {"count": 1, "total": float("nan")}}}
        )
        assert "repro_t_seconds_sum NaN" in nan_text

    def test_ends_with_newline(self):
        assert to_prometheus({}).endswith("\n")


class TestWriteMetrics:
    def test_writes_both_formats_atomically(self, tmp_path):
        json_path = tmp_path / "m.json"
        prom_path = tmp_path / "m.prom"
        written = write_metrics(
            make_session(), json_path, prom_path, run="fig09", duration_s=1.0
        )
        assert written == [json_path, prom_path]
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == METRICS_SCHEMA
        assert prom_path.read_text().startswith("#")
        assert not list(tmp_path.glob("*.tmp"))

    def test_trace_id_defaults_to_session(self, tmp_path):
        write_metrics(make_session(), tmp_path / "m.json")
        payload = json.loads((tmp_path / "m.json").read_text())
        assert payload["trace_id"] == "abad1deaabad1dea"

    def test_accepts_pretaken_snapshot(self, tmp_path):
        write_metrics(make_session().snapshot(), tmp_path / "m.json", run="r")
        payload = json.loads((tmp_path / "m.json").read_text())
        assert payload["trace_id"] is None
        assert payload["metrics"]["counters"]["dcop.solves"] == 7
