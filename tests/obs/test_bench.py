"""Tests for bench-regression tracking (headline records + history gate)."""

from __future__ import annotations

import json

import pytest

from repro.obs.bench import (
    RECORD_SCHEMA,
    append_history,
    bench_record,
    check_history,
    collect_bench_files,
    format_history,
    load_history,
)


def engine_payload(speedup=3.5, created=1.0):
    return {
        "schema": "repro.bench.engine/v1",
        "created_unix": created,
        "speedup": speedup,
        "min_speedup": 2.0,
    }


def telemetry_payload(overhead=0.001, created=1.0):
    return {
        "schema": "repro.bench.telemetry/v1",
        "created_unix": created,
        "disabled_overhead_guard": {
            "overhead_fraction": overhead,
            "budget_fraction": 0.03,
        },
    }


def record(payload, source="BENCH_x.json"):
    rec = bench_record(payload, source)
    assert rec is not None
    return rec


class TestBenchRecord:
    def test_engine_headline(self):
        rec = record(engine_payload(), "BENCH_engine.json")
        assert rec["schema"] == RECORD_SCHEMA
        assert rec["bench"] == "engine"
        assert rec["metric"] == "speedup"
        assert rec["direction"] == "higher"
        assert rec["value"] == 3.5
        assert rec["limit"] == 2.0
        assert rec["source"] == "BENCH_engine.json"

    def test_telemetry_headline_is_nested_and_lower_is_better(self):
        rec = record(telemetry_payload())
        assert rec["bench"] == "telemetry"
        assert rec["metric"] == "disabled_overhead_guard.overhead_fraction"
        assert rec["direction"] == "lower"
        assert rec["value"] == 0.001
        assert rec["limit"] == 0.03

    def test_serve_headline_gates_warm_p99(self):
        rec = record(
            {
                "schema": "repro.bench.serve/v1",
                "created_unix": 2.0,
                "p50_warm_s": 0.002,
                "p99_warm_s": 0.004,
                "gate_p99_s": 0.25,
            },
            "BENCH_serve.json",
        )
        assert rec["bench"] == "serve"
        assert rec["metric"] == "p99_warm_s"
        assert rec["direction"] == "lower"
        assert rec["value"] == 0.004
        assert rec["limit"] == 0.25

    def test_unknown_schema_falls_back_to_top_level_speedup(self):
        rec = record({"schema": "repro.bench.future/v9", "speedup": 4.0})
        assert rec["value"] == 4.0
        assert rec["limit"] is None

    def test_unrecognizable_payload_skipped(self):
        assert bench_record({"schema": "x/v1", "other": 1}, "s") is None
        assert bench_record({"schema": "repro.bench.engine/v1"}, "s") is None


class TestHistory:
    def test_append_is_idempotent_on_created_stamp(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        recs = [record(engine_payload(created=1.0))]
        assert append_history(recs, path) == 1
        assert append_history(recs, path) == 0
        assert append_history([record(engine_payload(created=2.0))], path) == 1
        assert len(load_history(path)) == 2

    def test_load_skips_torn_and_foreign_lines(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history([record(engine_payload())], path)
        with path.open("a") as handle:
            handle.write('{"schema": "other"}\n')
            handle.write('{"torn')
        assert len(load_history(path)) == 1

    def test_missing_history_is_empty(self, tmp_path):
        assert load_history(tmp_path / "none.jsonl") == []

    def test_collects_bench_files_sorted(self, tmp_path):
        for name in ("BENCH_b.json", "BENCH_a.json", "other.json"):
            (tmp_path / name).write_text("{}")
        assert [p.name for p in collect_bench_files(tmp_path)] == [
            "BENCH_a.json",
            "BENCH_b.json",
        ]


class TestCheckHistory:
    def history(self, *values, payload=engine_payload):
        return [
            record(payload(v, created=float(i))) for i, v in enumerate(values)
        ]

    def test_healthy_history_passes(self):
        assert check_history(self.history(3.5, 3.6, 3.7)) == []

    def test_hard_gate_breach_flagged(self):
        problems = check_history(self.history(3.5, 1.2))
        assert any("hard gate" in p for p in problems)

    def test_trajectory_drop_flagged_even_above_gate(self):
        # 2.4x still beats the 2.0x gate but is a >25% drop from the
        # 3.6x median — exactly the silent erosion the tracker exists for.
        problems = check_history(self.history(3.5, 3.6, 3.7, 2.4))
        assert len(problems) == 1
        assert "below its baseline median" in problems[0]

    def test_trajectory_drop_within_tolerance_passes(self):
        assert check_history(self.history(3.5, 3.6, 3.7, 3.0)) == []

    def test_lower_is_better_judged_on_budget_only(self):
        # overhead doubling is jitter while under budget...
        doubled = self.history(0.001, 0.002, payload=telemetry_payload)
        assert check_history(doubled) == []
        # ...but breaching the hard budget is a regression
        over = self.history(0.001, 0.05, payload=telemetry_payload)
        problems = check_history(over)
        assert any("exceeds its budget" in p for p in problems)

    def test_tolerance_validated(self):
        with pytest.raises(ValueError, match="tolerance"):
            check_history([], tolerance=1.5)
        with pytest.raises(ValueError, match="tolerance"):
            check_history([], tolerance=-0.1)

    def test_single_record_judged_on_gate_only(self):
        assert check_history(self.history(3.5)) == []
        assert check_history(self.history(1.0)) != []


class TestFormatHistory:
    def test_status_column(self, tmp_path):
        healthy = [record(engine_payload(3.5, 1.0)), record(engine_payload(3.6, 2.0))]
        text = format_history(healthy)
        assert "== bench history ==" in text
        assert "ok" in text and "REGRESSED" not in text

        regressed = healthy + [record(engine_payload(1.2, 3.0))]
        assert "REGRESSED" in format_history(regressed)

    def test_empty_history_hint(self):
        assert "bench_track" in format_history([])

    def test_records_round_trip_as_json_lines(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history([record(engine_payload())], path)
        for line in path.read_text().splitlines():
            assert json.loads(line)["schema"] == RECORD_SCHEMA
