"""End-to-end tests for the cross-process trace pipeline.

The properties pinned here are the observability contract: every task
of a traced batch leaves a span tree in the merged trace, span ids are
a pure function of the trace id and logical position (so any
``--jobs J`` merges to the same tree modulo timestamps), failures leave
forensics, and the merge tolerates torn sink tails from killed
processes.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import EngineConfig, Task, derive_seed, run_tasks
from repro.obs.context import TraceSpec, attempt_span_id, batch_span_id, task_span_id
from repro.obs.sink import SpanSink, reset_worker_sinks
from repro.obs.trace import (
    format_convergence,
    load_trace,
    merge_trace,
    summarize_trace,
)

from obs_helpers import always_diverges, flaky_once, seeded_value

TRACE_ID = "feedfacefeedface"
N_TASKS = 6


@pytest.fixture(autouse=True)
def _clean_sinks():
    reset_worker_sinks()
    yield
    reset_worker_sinks()


def make_tasks(fn=seeded_value, n=N_TASKS):
    return [
        Task(index=k, fn=fn, payload=k, seed=derive_seed(3, k)) for k in range(n)
    ]


def run_traced(tmp_path, jobs, *, fn=seeded_value, retries=1, tag=""):
    trace_dir = tmp_path / f"trace_j{jobs}{tag}"
    report = run_tasks(
        make_tasks(fn),
        EngineConfig(
            jobs=jobs,
            retries=retries,
            trace_dir=trace_dir,
            trace_id=TRACE_ID,
            run_key="pipeline-test",
        ),
    )
    return trace_dir, report


def shape(trace: dict) -> set[tuple[str, str, str]]:
    """The timestamp-free identity of a merged trace."""
    return {(s["id"], s["parent"], s["name"]) for s in trace["spans"]}


class TestSpanTree:
    def test_every_task_leaves_a_parented_span_tree(self, tmp_path):
        trace_dir, report = run_traced(tmp_path, jobs=1)
        assert report.ok_count == N_TASKS
        trace = load_trace(trace_dir)

        batch_id = batch_span_id(TRACE_ID, "pipeline-test")
        by_id = {s["id"]: s for s in trace["spans"]}
        assert by_id[batch_id]["parent"] == ""
        for k in range(N_TASKS):
            task_id = task_span_id(TRACE_ID, batch_id, k)
            assert by_id[task_id]["parent"] == batch_id
            assert by_id[task_id]["fields"]["status"] == "ok"
            attempt_id = attempt_span_id(TRACE_ID, task_id, 0)
            assert by_id[attempt_id]["parent"] == task_id

    def test_summary_counts(self, tmp_path):
        trace_dir, _ = run_traced(tmp_path, jobs=1)
        summary = summarize_trace(load_trace(trace_dir))
        assert summary["batches"] == 1
        assert summary["tasks"] == N_TASKS
        assert summary["attempts"] == N_TASKS
        assert summary["failed_tasks"] == 0
        assert summary["trace_ids"] == [TRACE_ID]

    def test_checkpoint_io_span_recorded(self, tmp_path):
        trace_dir = tmp_path / "trace_ckpt"
        run_tasks(
            make_tasks(),
            EngineConfig(
                retries=1,
                trace_dir=trace_dir,
                trace_id=TRACE_ID,
                run_key="ckpt",
                checkpoint_path=tmp_path / "ckpt.jsonl",
            ),
        )
        trace = load_trace(trace_dir)
        io_spans = [s for s in trace["spans"] if s["name"] == "checkpoint.io"]
        assert len(io_spans) == 1
        assert io_spans[0]["fields"]["appends"] == N_TASKS
        assert io_spans[0]["parent"] == batch_span_id(TRACE_ID, "ckpt")


class TestMergeDeterminism:
    def test_jobs_invariant_span_tree(self, tmp_path):
        """Same seed + same trace id => identical merged span tree at
        any worker count, modulo timestamps (the ISSUE acceptance
        property)."""
        shapes = []
        for jobs in (1, 2):
            trace_dir, _ = run_traced(tmp_path, jobs=jobs)
            shapes.append(shape(load_trace(trace_dir)))
            reset_worker_sinks()
        assert shapes[0] == shapes[1]

    def test_retries_are_traced_identically_across_jobs(self, tmp_path):
        shapes = []
        for jobs in (1, 2):
            trace_dir, report = run_traced(
                tmp_path, jobs=jobs, fn=flaky_once, retries=2
            )
            assert report.ok_count == N_TASKS
            summary = summarize_trace(load_trace(trace_dir))
            assert summary["attempts"] == 2 * N_TASKS
            assert summary["retried_tasks"] == N_TASKS
            shapes.append(shape(load_trace(trace_dir)))
            reset_worker_sinks()
        assert shapes[0] == shapes[1]

    def test_remerge_is_idempotent(self, tmp_path):
        trace_dir, _ = run_traced(tmp_path, jobs=1)
        first = shape(load_trace(trace_dir))
        merge_trace(trace_dir)
        assert shape(load_trace(trace_dir)) == first


class TestFailureForensics:
    def test_failed_task_spans_and_events(self, tmp_path):
        trace_dir, report = run_traced(
            tmp_path, jobs=1, fn=always_diverges, retries=1
        )
        assert report.failed_count == N_TASKS
        trace = load_trace(trace_dir)
        summary = summarize_trace(trace)
        assert summary["failed_tasks"] == N_TASKS
        # one forensics event per ConvergenceError attempt
        assert summary["convergence_events"] == 2 * N_TASKS
        tasks = [s for s in trace["spans"] if s["name"] == "task"]
        assert all(s["fields"]["status"] == "failed" for s in tasks)
        assert all(s["fields"]["error_type"] == "ConvergenceError" for s in tasks)

    def test_convergence_report_groups_per_task(self, tmp_path):
        trace_dir, _ = run_traced(tmp_path, jobs=1, fn=always_diverges, retries=0)
        report = format_convergence(load_trace(trace_dir))
        for k in range(N_TASKS):
            assert f"task {k}:" in report
        assert "ConvergenceError" in report
        assert "no operating point" in report

    def test_clean_trace_reports_no_failures(self, tmp_path):
        trace_dir, _ = run_traced(tmp_path, jobs=1)
        assert "no convergence failures" in format_convergence(load_trace(trace_dir))


class TestMergeRobustness:
    def test_torn_sink_tail_tolerated(self, tmp_path):
        trace_dir, _ = run_traced(tmp_path, jobs=1)
        before = shape(load_trace(trace_dir))
        sink = sorted(trace_dir.glob("worker-*.jsonl"))[0]
        with sink.open("a") as handle:
            handle.write('{"kind": "span", "id": "dead')  # SIGKILL mid-write
        merge_trace(trace_dir)
        assert shape(load_trace(trace_dir)) == before

    def test_merge_is_atomic_and_loadable_from_dir_or_file(self, tmp_path):
        trace_dir, _ = run_traced(tmp_path, jobs=1)
        from_dir = load_trace(trace_dir)
        from_file = load_trace(trace_dir / "trace.json")
        assert shape(from_dir) == shape(from_file)
        assert not list(trace_dir.glob("*.tmp"))

    def test_load_missing_trace_raises_with_hint(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="--trace-dir"):
            load_trace(tmp_path / "nowhere")

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"schema": "other/v1", "spans": []}))
        with pytest.raises(ValueError, match="other/v1"):
            load_trace(path)


class TestCoverage:
    def _trace(self, batch, tasks):
        spans = [
            {"id": "b", "parent": "", "name": "batch",
             "t0_unix": batch[0], "dur_s": batch[1] - batch[0]},
        ]
        for i, (lo, hi) in enumerate(tasks):
            spans.append(
                {"id": f"t{i}", "parent": "b", "name": "task",
                 "t0_unix": lo, "dur_s": hi - lo}
            )
        return {"spans": spans, "events": []}

    def test_full_coverage(self):
        trace = self._trace((0.0, 10.0), [(0.0, 5.0), (5.0, 10.0)])
        assert summarize_trace(trace)["task_coverage"] == pytest.approx(1.0)

    def test_partial_coverage(self):
        trace = self._trace((0.0, 10.0), [(0.0, 5.0)])
        assert summarize_trace(trace)["task_coverage"] == pytest.approx(0.5)

    def test_overlapping_tasks_not_double_counted(self):
        trace = self._trace((0.0, 10.0), [(0.0, 6.0), (2.0, 6.0)])
        assert summarize_trace(trace)["task_coverage"] == pytest.approx(0.6)

    def test_task_time_outside_batch_window_clipped(self):
        trace = self._trace((0.0, 10.0), [(8.0, 14.0)])
        assert summarize_trace(trace)["task_coverage"] == pytest.approx(0.2)


class TestSinkHygiene:
    def test_one_sink_file_per_role_and_pid(self, tmp_path):
        trace_dir, _ = run_traced(tmp_path, jobs=1)
        names = sorted(p.name for p in trace_dir.glob("*.jsonl"))
        assert any(n.startswith("scheduler-") for n in names)
        assert any(n.startswith("worker-") for n in names)

    def test_sink_meta_header_carries_trace_id(self, tmp_path):
        sink = SpanSink(tmp_path, role="worker", trace_id=TRACE_ID)
        sink.write_event("hello")
        sink.close()
        first = json.loads(sink.path.read_text().splitlines()[0])
        assert first["kind"] == "meta"
        assert first["trace_id"] == TRACE_ID

    def test_spec_for_batch_reuses_pinned_trace_id(self, tmp_path):
        spec = TraceSpec.for_batch(tmp_path, "k", trace_id=TRACE_ID)
        assert spec.trace_id == TRACE_ID
        assert spec.parent_span_id == batch_span_id(TRACE_ID, "k")
        fresh = TraceSpec.for_batch(tmp_path, "k")
        assert fresh.trace_id != TRACE_ID
