"""Shared serve-test fixtures: a tiny pre-built store + a daemon harness.

The seed store is built once per session (two cmos hold-power points —
the cheapest entries in the suite); tests that mutate the store get a
private copy.  The harness runs the real daemon event loop on a
background thread over a per-test unix socket.
"""

from __future__ import annotations

import asyncio
import shutil
import threading
import time
from pathlib import Path

import pytest

from repro.char import CharSpec, CharStore, build_grid
from repro.serve import ServeConfig, ServeDaemon
from repro.serve.client import ServeClient
from repro.serve.front import Front, FrontConfig, ShardAddress

SERVE_SPEC = CharSpec(
    name="servetest", designs=("cmos",), vdds=(0.6, 0.8), metrics=("hold_power",)
)


@pytest.fixture(scope="session")
def serve_spec() -> CharSpec:
    return SERVE_SPEC


@pytest.fixture(scope="session")
def seed_store_dir(tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("serve_seed")
    report = build_grid(SERVE_SPEC, CharStore(directory))
    assert report.failed == 0
    return directory


class DaemonHarness:
    """One daemon on a background thread; `client()` connects to it."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.daemon = ServeDaemon(config)
        self.loop: asyncio.AbstractEventLoop | None = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        await self.daemon.run()

    def _run(self) -> None:
        asyncio.run(self._main())

    def start(self) -> "DaemonHarness":
        self.thread.start()
        deadline = time.monotonic() + 15.0
        path = Path(self.config.socket_path)
        while time.monotonic() < deadline:
            if path.exists():
                return self
            if not self.thread.is_alive():
                raise RuntimeError("daemon thread died during startup")
            time.sleep(0.01)
        raise RuntimeError("daemon socket never appeared")

    def stop(self, timeout_s: float = 20.0) -> None:
        if self.thread.is_alive() and self.loop is not None:
            try:
                self.loop.call_soon_threadsafe(self.daemon.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        self.thread.join(timeout_s)
        assert not self.thread.is_alive(), "daemon failed to drain"

    def client(self, **kwargs) -> ServeClient:
        return ServeClient(socket_path=self.config.socket_path, **kwargs)


class FrontHarness:
    """One fleet front on a background thread; `client()` connects."""

    def __init__(self, config: FrontConfig):
        self.config = config
        self.front = Front(config)
        self.loop: asyncio.AbstractEventLoop | None = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        await self.front.run()

    def _run(self) -> None:
        asyncio.run(self._main())

    def start(self) -> "FrontHarness":
        self.thread.start()
        deadline = time.monotonic() + 15.0
        path = Path(self.config.socket_path)
        while time.monotonic() < deadline:
            if path.exists():
                return self
            if not self.thread.is_alive():
                raise RuntimeError("front thread died during startup")
            time.sleep(0.01)
        raise RuntimeError("front socket never appeared")

    def stop(self, timeout_s: float = 20.0) -> None:
        if self.thread.is_alive() and self.loop is not None:
            try:
                self.loop.call_soon_threadsafe(self.front.request_shutdown)
            except RuntimeError:
                pass
        self.thread.join(timeout_s)
        assert not self.thread.is_alive(), "front failed to drain"

    def client(self, **kwargs) -> ServeClient:
        return ServeClient(socket_path=self.config.socket_path, **kwargs)


class Fleet:
    """A front plus its in-process shard daemons, as one handle."""

    def __init__(self, front: FrontHarness, shards: list[DaemonHarness]):
        self.front = front
        self.shards = shards

    def client(self, **kwargs) -> ServeClient:
        return self.front.client(**kwargs)


@pytest.fixture
def fleet_factory(tmp_path, seed_store_dir):
    """Callable building a running 2+-shard fleet over one store copy.

    All shards and the front share this process (and therefore one
    telemetry session) — routing assertions should use the front's
    ``serve.front.routed.shard<i>`` counters and each shard's
    ``status.shard.index`` identity, not per-shard request counters.
    """
    started: list[object] = []
    counter = [0]

    def factory(workers: int = 2, http_port: int | None = None,
                **daemon_overrides) -> Fleet:
        counter[0] += 1
        n = counter[0]
        store_dir = tmp_path / f"fleet_store{n}"
        shutil.copytree(seed_store_dir, store_dir)
        shards, addresses = [], []
        for index in range(workers):
            sock = tmp_path / f"fleet{n}.shard{index}.sock"
            config = ServeConfig(
                store_dir=store_dir, specs=[SERVE_SPEC], socket_path=sock,
                shard_index=index, shard_count=workers, **daemon_overrides,
            )
            shards.append(DaemonHarness(config).start())
            addresses.append(ShardAddress(socket_path=sock))
        front_config = FrontConfig(
            shards=addresses,
            socket_path=tmp_path / f"fleet{n}.sock",
            http_port=http_port,
            request_timeout_s=60.0,
            connect_timeout_s=2.0,
        )
        front = FrontHarness(front_config).start()
        fleet = Fleet(front, shards)
        started.append(fleet)
        return fleet

    yield factory
    for fleet in started:
        fleet.front.stop()
        for shard in fleet.shards:
            shard.stop()


@pytest.fixture
def daemon_factory(tmp_path, seed_store_dir):
    """Callable building a running harness over a copy of the seed store."""
    started: list[DaemonHarness] = []
    counter = [0]

    def factory(**overrides) -> DaemonHarness:
        counter[0] += 1
        store_dir = overrides.pop("store_dir", None)
        if store_dir is None:
            store_dir = tmp_path / f"store{counter[0]}"
            shutil.copytree(seed_store_dir, store_dir)
        overrides.setdefault("specs", [SERVE_SPEC])
        overrides.setdefault("socket_path", tmp_path / f"serve{counter[0]}.sock")
        config = ServeConfig(store_dir=store_dir, **overrides)
        harness = DaemonHarness(config).start()
        started.append(harness)
        return harness

    yield factory
    for harness in started:
        harness.stop()
