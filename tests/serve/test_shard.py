"""Shard-map properties the fleet depends on: determinism across
processes, balanced key distribution, minimal remapping on resize, and
the address-derivation helpers."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.serve.shard import (
    ShardMap,
    routing_key,
    shard_socket_path,
    shard_tcp_port,
)


class TestRoutingKey:
    def test_beta_formatting_is_canonical(self):
        assert routing_key("cmos", "tt", 1.5) == routing_key("cmos", "tt", 1.50)
        # A float that took a JSON round trip hashes identically.
        import json

        assert routing_key("cmos", "tt", json.loads(json.dumps(0.9))) == \
            routing_key("cmos", "tt", 0.9)

    def test_none_beta_is_its_own_token(self):
        assert routing_key("cmos", "tt", None) == "cmos|tt|-"
        assert routing_key("cmos", "tt", None) != routing_key("cmos", "tt", 1.0)

    def test_key_axes_are_independent(self):
        assert routing_key("cmos", "tt", None) != routing_key("proposed", "tt", None)
        assert routing_key("proposed", "tt", None) != routing_key("proposed", "ff", None)


class TestShardMap:
    def test_golden_assignments_are_pinned(self):
        """Ownership is a pure function of the key — pinned here so an
        accidental hash change (which would orphan every warm store in
        every deployed fleet) fails loudly."""
        m = ShardMap(4)
        assert m.owner("cmos", "tt", None) == 0
        assert m.owner("cmos", "tt", 0.8) == 3
        assert m.owner("cmos", "tt", 1.2) == 2
        assert m.owner("proposed", "tt", None) == 0
        assert m.owner("proposed", "ff", None) == 2
        assert m.owner("proposed", "ss", None) == 3

    def test_deterministic_across_instances(self):
        a, b = ShardMap(8), ShardMap(8)
        keys = [routing_key("cmos", "tt", 0.5 + 0.01 * i) for i in range(200)]
        assert [a.owner_of(k) for k in keys] == [b.owner_of(k) for k in keys]

    def test_distribution_is_roughly_balanced(self):
        m = ShardMap(4)
        counts = [0, 0, 0, 0]
        for i in range(400):
            counts[m.owner("cmos", "tt", 0.5 + 0.01 * i)] += 1
        # 64 virtual nodes/shard keeps every shard within a loose band
        # of the 25% ideal (observed 20-30% on this ring).
        assert all(count >= 0.10 * 400 for count in counts), counts

    def test_resize_remaps_only_to_the_new_shard(self):
        """Growing N -> N+1 must only move keys *onto* the new shard —
        a key that changed owners between two old shards would strand
        its warm grids and duplicate its backfills."""
        m4, m5 = ShardMap(4), ShardMap(5)
        keys = [routing_key("cmos", "tt", 0.5 + 0.01 * i) for i in range(400)]
        moved = [k for k in keys if m4.owner_of(k) != m5.owner_of(k)]
        assert moved, "resize should capture some keys"
        assert len(moved) <= 0.45 * len(keys), len(moved)
        assert all(m5.owner_of(k) == 4 for k in moved)

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ShardMap(0)
        with pytest.raises(ValueError, match="replicas"):
            ShardMap(2, replicas=0)

    def test_equality_and_json(self):
        assert ShardMap(4) == ShardMap(4)
        assert ShardMap(4) != ShardMap(5)
        payload = ShardMap(4).to_json()
        assert payload["workers"] == 4
        assert payload["scheme"] == "repro.serve.shard/v1"


class TestAddressDerivation:
    def test_socket_path(self):
        assert shard_socket_path("results/serve.sock", 0) == \
            Path("results/serve.shard0.sock")
        assert shard_socket_path(Path("/tmp/a.sock"), 3) == \
            Path("/tmp/a.shard3.sock")

    def test_tcp_port(self):
        assert shard_tcp_port(7070, 0) == 7071
        assert shard_tcp_port(7070, 3) == 7074
