"""Daemon behavior over a live socket: hits, backfill, admission
control, and the protocol edge cases the serving contract promises —
malformed JSON, oversized lines, mid-backfill disconnects, double
shutdown."""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.serve import protocol
from repro.serve.client import ServeError

COLD = {"metric": "hold_power", "design": "cmos", "vdd": 0.55}


def _wait(predicate, timeout_s=30.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


class TestWarmPath:
    def test_ping_and_warm_queries(self, daemon_factory):
        daemon = daemon_factory()
        with daemon.client() as client:
            assert client.ping()
            exact = client.query("hold_power", design="cmos", vdd=0.6)
            assert exact["served"] == "memory"
            assert exact["result"]["method"] == "exact"
            assert exact["wall_us"] > 0
            interp = client.query(
                "hold_power", design="cmos", vdd=0.7, request_id="q1"
            )
            assert interp["id"] == "q1"
            assert interp["result"]["method"] == "linear"

    def test_status_payload(self, daemon_factory):
        daemon = daemon_factory()
        with daemon.client() as client:
            client.ping()
            status = client.status()
        assert status["schema"] == protocol.PROTOCOL_SCHEMA
        assert isinstance(status["pid"], int)
        assert status["specs"] == ["servetest"]
        assert status["coverage"][0]["present"] == 2
        assert status["index"]["entries"] == 2
        assert status["draining"] is False
        assert status["backfill"]["pending"] == 0
        assert status["counters"]["serve.requests"] >= 1

    def test_metrics_payload(self, daemon_factory):
        daemon = daemon_factory()
        with daemon.client() as client:
            client.query("hold_power", design="cmos", vdd=0.6)
            metrics = client.metrics()
        counters = metrics["json"]["metrics"]["counters"]
        assert counters["serve.hits"] == 1
        assert "repro_serve_hits_total" in metrics["prom"]

    def test_tcp_listener_speaks_the_same_protocol(self, daemon_factory):
        import socket as socketlib

        probe = socketlib.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        daemon = daemon_factory(tcp_port=port)
        from repro.serve.client import ServeClient

        with ServeClient(tcp_port=port) as client:
            assert client.ping()
            answer = client.query("hold_power", design="cmos", vdd=0.6)
            assert answer["served"] == "memory"


class TestProtocolEdges:
    def test_malformed_json_keeps_the_connection(self, daemon_factory):
        daemon = daemon_factory()
        with daemon.client() as client:
            response = client.raw(b'{"op": nope}\n')
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
            assert client.ping()  # same connection still serves

    def test_unknown_op_keeps_the_connection(self, daemon_factory):
        daemon = daemon_factory()
        with daemon.client() as client:
            response = client.raw(b'{"op": "explode"}\n')
            assert response["error"]["code"] == "bad_request"
            assert client.ping()

    def test_oversized_line_answers_then_closes(self, daemon_factory):
        daemon = daemon_factory(max_line_bytes=512)
        with daemon.client() as client:
            line = json.dumps({"op": "ping", "pad": "x" * 2048}).encode() + b"\n"
            response = client.raw(line)
            assert response["ok"] is False
            assert response["error"]["code"] == "oversized"
            assert client._file.readline() == b""  # daemon hung up
        with daemon.client() as client:
            assert client.ping()  # daemon itself is fine

    def test_semantically_invalid_queries(self, daemon_factory):
        daemon = daemon_factory()
        with daemon.client() as client:
            with pytest.raises(ServeError) as excinfo:
                client.query("made_up_metric", design="cmos", vdd=0.6)
            assert excinfo.value.code == "bad_request"
            with pytest.raises(ServeError) as excinfo:
                client.query("drnm", design="proposed", vdd=0.65, beta=1.2)
            assert excinfo.value.code == "bad_request"
            assert client.ping()

    def test_client_disconnect_mid_backfill(self, daemon_factory):
        daemon = daemon_factory(coalesce_s=0.2)
        # Fire a cold query and hang up before the answer exists.
        doomed = daemon.client()
        doomed._sock.sendall(protocol.encode_line({"op": "query", **COLD}))
        doomed.close()

        with daemon.client() as client:
            assert _wait(
                lambda: client.status()["backfill"]["batches_completed"] >= 1
            ), "backfill never completed after the client vanished"
            assert _wait(
                lambda: client.status()["counters"].get("serve.disconnects", 0) >= 1
            )
            # The daemon survived and the point landed warm.
            answer = client.query(**COLD)
            assert answer["served"] == "memory"
            assert answer["result"]["method"] == "exact"


class TestBackfill:
    def test_cold_query_backfills_and_stays_warm(self, daemon_factory):
        daemon = daemon_factory(coalesce_s=0.05)
        with daemon.client() as client:
            cold = client.query(**COLD)
            assert cold["served"] == "backfill"
            assert cold["result"]["method"] == "exact"
            warm = client.query(**COLD)
            assert warm["served"] == "memory"
            assert warm["result"]["value"] == cold["result"]["value"]
            status = client.status()
        assert status["counters"]["serve.misses"] == 1
        assert status["backfill"]["batches_completed"] == 1
        assert status["backfill"]["points_completed"] == 1

    def test_coalesced_clients_share_one_build(self, daemon_factory):
        daemon = daemon_factory(coalesce_s=0.4)

        def ask():
            with daemon.client() as client:
                return client.query(**COLD)

        with ThreadPoolExecutor(max_workers=2) as pool:
            first, second = (f.result(timeout=60) for f in
                             [pool.submit(ask), pool.submit(ask)])
        assert first["served"] == second["served"] == "backfill"
        assert first["result"]["value"] == second["result"]["value"]
        with daemon.client() as client:
            status = client.status()
        assert status["counters"]["serve.backfill.requests"] == 2
        assert status["backfill"]["points_completed"] == 1
        assert status["backfill"]["batches_completed"] == 1

    def test_backfill_depth_rejects_with_overloaded(self, daemon_factory):
        daemon = daemon_factory(coalesce_s=0.6, backfill_depth=1)

        def ask(vdd):
            with daemon.client() as client:
                try:
                    return client.query("hold_power", design="cmos", vdd=vdd)
                except ServeError as exc:
                    return exc

        with ThreadPoolExecutor(max_workers=2) as pool:
            results = [
                f.result(timeout=60)
                for f in [pool.submit(ask, 0.55), pool.submit(ask, 0.52)]
            ]
        errors = [r for r in results if isinstance(r, ServeError)]
        answers = [r for r in results if isinstance(r, dict)]
        assert len(errors) == 1 and errors[0].code == "overloaded"
        assert len(answers) == 1 and answers[0]["served"] == "backfill"

    def test_timeout_leaves_the_backfill_running(self, daemon_factory):
        daemon = daemon_factory(coalesce_s=0.5, request_timeout_s=0.15)
        with daemon.client() as client:
            with pytest.raises(ServeError) as excinfo:
                client.query(**COLD)
            assert excinfo.value.code == "timeout"
            assert _wait(
                lambda: client.status()["backfill"]["batches_completed"] >= 1
            ), "the timed-out backfill was abandoned"
            retry = client.query(**COLD)
            assert retry["served"] == "memory"
            status = client.status()
        assert status["counters"]["serve.timeouts"] == 1

    def test_backfill_landing_race_answers_backfill_failed(self, daemon_factory):
        """A backfill can land and *still* not be servable — a
        concurrent ``char build`` with a newer solver fingerprint can
        recalibrate the store between the batch landing and the
        post-backfill lookup.  That race must come back as a structured
        ``backfill_failed``, not a daemon-side traceback."""
        from repro.char.query import CharQueryError

        daemon = daemon_factory(coalesce_s=0.05)

        def always_missing(**_kwargs):
            raise CharQueryError(
                "entry recalibrated away", reason="missing-entry"
            )

        daemon.daemon.registry.answer = always_missing
        with daemon.client() as client:
            with pytest.raises(ServeError) as excinfo:
                client.query(**COLD)
            assert excinfo.value.code == "backfill_failed"
            assert "retry" in excinfo.value.message
            # The daemon survives the race and keeps serving.
            assert client.ping()
            status = client.status()
        assert status["counters"]["serve.backfill.lost"] == 1
        assert status["backfill"]["batches_completed"] == 1

    def test_map_op_outside_a_fleet(self, daemon_factory):
        daemon = daemon_factory()
        with daemon.client() as client:
            assert client.map() == {"fleet": False, "workers": 1}


class TestShutdown:
    def test_double_shutdown_is_idempotent(self, daemon_factory, tmp_path):
        metrics_out = tmp_path / "final_metrics.json"
        daemon = daemon_factory(metrics_out=metrics_out)
        with daemon.client() as client:
            first = client.request({"op": "shutdown"})
            assert first["stopping"] is True and first["already"] is False
            try:
                second = client.request({"op": "shutdown"})
            except (ConnectionError, OSError):
                second = None  # drained before the second line arrived
        if second is not None:
            assert second["stopping"] is True and second["already"] is True

        daemon.thread.join(20)
        assert not daemon.thread.is_alive()
        assert not Path(daemon.config.socket_path).exists()
        assert metrics_out.exists()
        assert metrics_out.with_suffix(".prom").exists()
        payload = json.loads(metrics_out.read_text())
        assert payload["run"] == "serve"

    def test_queries_rejected_while_draining(self, daemon_factory):
        daemon = daemon_factory()
        # Drain with no listeners left: new connections fail, and a
        # repeated programmatic shutdown stays a no-op.
        with daemon.client() as client:
            client.request({"op": "shutdown"})
        daemon.thread.join(20)
        assert not daemon.thread.is_alive()
        with pytest.raises((ConnectionError, OSError, FileNotFoundError)):
            daemon.client()


class TestServeCLI:
    def test_status_and_query_verbs(self, daemon_factory, capsys):
        from repro.cli import main

        daemon = daemon_factory()
        socket_arg = ["--socket", str(daemon.config.socket_path)]

        assert main(["serve", "status", *socket_arg]) == 0
        out = capsys.readouterr().out
        assert "serve daemon pid" in out
        assert "servetest: 2/2 present" in out

        assert main(
            ["serve", "query", "hold_power", "--design", "cmos",
             "--vdd", "0.6", *socket_arg]
        ) == 0
        out = capsys.readouterr().out
        assert "hold_power" in out
        assert "served: memory" in out

        assert main(
            ["serve", "query", "hold_power", "--design", "cmos",
             "--vdd", "0.7", "--json", *socket_arg]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["served"] == "memory"
        assert payload["result"]["method"] == "linear"

    def test_query_error_paths(self, daemon_factory, capsys):
        from repro.cli import main

        daemon = daemon_factory()
        socket_arg = ["--socket", str(daemon.config.socket_path)]
        assert main(
            ["serve", "query", "made_up", "--design", "cmos",
             "--vdd", "0.6", *socket_arg]
        ) == 2
        assert "bad_request" in capsys.readouterr().err
