"""Wire-protocol unit tests: request validation, framing, float encoding."""

from __future__ import annotations

import json
import math

import pytest

from repro.serve import protocol
from repro.serve.protocol import ProtocolError, parse_request


def _code(excinfo) -> str:
    return excinfo.value.code


class TestParseRequest:
    def test_minimal_ops(self):
        for op in ("ping", "status", "metrics", "shutdown"):
            assert parse_request(json.dumps({"op": op}).encode()) == {"op": op}

    def test_query_defaults(self):
        request = parse_request(
            b'{"op": "query", "metric": "drnm", "design": "proposed", "vdd": 0.65}'
        )
        assert request == {
            "op": "query", "metric": "drnm", "design": "proposed",
            "vdd": 0.65, "beta": None, "corner": "tt", "method": "auto",
        }

    def test_id_passthrough(self):
        assert parse_request(b'{"op": "ping", "id": "q1"}')["id"] == "q1"
        assert parse_request(b'{"op": "ping", "id": 7}')["id"] == 7

    def test_bad_id_type(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'{"op": "ping", "id": [1]}')
        assert _code(excinfo) == "bad_request"

    def test_malformed_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'{"op": nope}')
        assert _code(excinfo) == "bad_request"
        assert "not valid JSON" in excinfo.value.message

    def test_invalid_utf8(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'\xff\xfe{"op": "ping"}')
        assert _code(excinfo) == "bad_request"

    def test_non_object(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'[1, 2, 3]')
        assert _code(excinfo) == "bad_request"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'{"op": "explode"}')
        assert "explode" in excinfo.value.message

    def test_oversized(self):
        line = json.dumps({"op": "ping", "pad": "x" * 100}).encode()
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line, max_bytes=64)
        assert _code(excinfo) == "oversized"

    def test_query_missing_field(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'{"op": "query", "metric": "drnm", "vdd": 0.6}')
        assert "design" in excinfo.value.message

    @pytest.mark.parametrize(
        "patch",
        [
            {"vdd": "zero point six-ish"},
            {"beta": "wide"},
            {"corner": 12},
            {"method": "quantum"},
            {"metric": 3},
        ],
    )
    def test_query_bad_values(self, patch):
        payload = {"op": "query", "metric": "drnm", "design": "proposed",
                   "vdd": 0.65, **patch}
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(json.dumps(payload).encode())
        assert _code(excinfo) == "bad_request"

    def test_numeric_strings_accepted(self):
        request = parse_request(
            b'{"op": "query", "metric": "drnm", "design": "proposed",'
            b' "vdd": "0.65", "beta": "1.5"}'
        )
        assert request["vdd"] == 0.65
        assert request["beta"] == 1.5

    @pytest.mark.parametrize("literal", ["NaN", "Infinity", "-Infinity"])
    def test_rejects_nonstandard_json_literals(self, literal):
        """Python's json module happily *parses* NaN/Infinity, but the
        protocol's egress is strict JSON (``allow_nan=False``) — an
        accepted non-finite vdd would make the daemon's own response
        unencodable.  Reject at the door instead."""
        raw = (f'{{"op": "query", "metric": "drnm", "design": "proposed",'
               f' "vdd": {literal}}}').encode()
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(raw)
        assert _code(excinfo) == "bad_request"
        assert "__float__" in excinfo.value.message

    def test_rejects_nonstandard_literal_anywhere_in_the_payload(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'{"op": "ping", "id": NaN}')
        assert _code(excinfo) == "bad_request"

    def test_rejects_non_finite_numeric_strings(self):
        payload = {"op": "query", "metric": "drnm", "design": "proposed",
                   "vdd": "nan"}
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(json.dumps(payload).encode())
        assert _code(excinfo) == "bad_request"
        assert "finite" in excinfo.value.message

    def test_rejects_bool_request_id(self):
        """``True`` is an ``int`` in Python — the isinstance id check
        must exclude bools explicitly or a ``true`` id round-trips as a
        number the client never sent."""
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'{"op": "ping", "id": true}')
        assert _code(excinfo) == "bad_request"

    @pytest.mark.parametrize("field", ["vdd", "beta"])
    def test_rejects_bool_numerics(self, field):
        payload = {"op": "query", "metric": "drnm", "design": "proposed",
                   "vdd": 0.65, field: True}
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(json.dumps(payload).encode())
        assert _code(excinfo) == "bad_request"

    def test_normalize_request_shared_with_http(self):
        """The HTTP adapter feeds query params (all strings) through
        ``normalize_request`` directly — same validation as the wire."""
        request = protocol.normalize_request(
            {"op": "query", "metric": "drnm", "design": "proposed",
             "vdd": "0.65"}
        )
        assert request["vdd"] == 0.65 and request["corner"] == "tt"
        with pytest.raises(ProtocolError):
            protocol.normalize_request({"op": "query", "metric": "drnm",
                                        "design": "proposed", "vdd": "inf"})


class TestFraming:
    def test_round_trip(self):
        payload = {"ok": True, "result": {"value": 1.25, "coords": {"beta": None}}}
        line = protocol.encode_line(payload)
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        assert protocol.decode_line(line) == payload

    def test_non_finite_floats(self):
        payload = {"ok": True, "values": [math.inf, -math.inf, math.nan], "n": 1}
        line = protocol.encode_line(payload)
        json.loads(line)  # strict JSON: no bare Infinity/NaN literals
        assert b"__float__" in line
        decoded = protocol.decode_line(line)
        assert decoded["values"][0] == math.inf
        assert decoded["values"][1] == -math.inf
        assert math.isnan(decoded["values"][2])

    def test_decode_rejects_non_object(self):
        with pytest.raises(ValueError):
            protocol.decode_line(b"[1]\n")

    def test_response_helpers_echo_id(self):
        request = {"op": "query", "id": "q9"}
        assert protocol.ok_response(request, pong=True)["id"] == "q9"
        error = protocol.error_response("timeout", "too slow", request)
        assert error["id"] == "q9"
        assert error["error"]["code"] == "timeout"
        assert protocol.ok_response({"op": "ping"}) == {"ok": True}
