"""Fleet front behavior over live sockets: ownership routing, fleet
aggregation, per-shard failure containment (``shard_down``), and the
HTTP/1.1 adapter."""

from __future__ import annotations

import http.client
import json
import socket

import pytest

from repro.serve import protocol
from repro.serve.client import ServeError
from repro.serve.shard import ShardMap

# With 2 shards: (cmos, tt, None) lives on shard 0, (cmos, tt, 0.9)
# on shard 1 (pinned hash — see test_shard.py golden assignments).
SHARD0_KEY = {"metric": "hold_power", "design": "cmos", "vdd": 0.6}
SHARD1_KEY = {"metric": "hold_power", "design": "cmos", "vdd": 0.6, "beta": 0.9}


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def test_key_split_assumption():
    m = ShardMap(2)
    assert m.owner("cmos", "tt", None) == 0
    assert m.owner("cmos", "tt", 0.9) == 1


class TestRouting:
    def test_queries_route_to_the_owning_shard(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        with fleet.client() as client:
            assert client.ping()
            warm = client.query(**SHARD0_KEY)
            assert warm["ok"] and warm["served"] == "memory"
            # The beta point is cold on the seed store: shard 1 owns
            # the miss end to end (coalesce, build, answer).
            built = client.query(**SHARD1_KEY, request_id="fleet-1")
            assert built["ok"] and built["id"] == "fleet-1"
            assert built["served"] == "backfill"
            status = client.status()
        counters = status["counters"]
        assert counters.get("serve.front.routed.shard0", 0) >= 1
        assert counters.get("serve.front.routed.shard1", 0) >= 1

    def test_map_op_describes_the_ring(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        with fleet.client() as client:
            topology = client.map()
        assert topology["fleet"] is True
        assert topology["workers"] == 2
        assert topology["scheme"] == "repro.serve.shard/v1"
        assert [shard["shard"] for shard in topology["shards"]] == [0, 1]

    def test_repeat_queries_reuse_pooled_connections(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        with fleet.client() as client:
            for _ in range(5):
                assert client.query(**SHARD0_KEY)["ok"]
        # One link dialed, five requests through it.
        assert len(fleet.front.front._pools[0]) == 1


class TestAggregation:
    def test_status_aggregates_all_shards(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        with fleet.client() as client:
            client.query(**SHARD0_KEY)
            status = client.status()
        assert status["fleet"] is True
        assert status["schema"] == protocol.PROTOCOL_SCHEMA
        assert status["workers"] == 2 and status["shards_up"] == 2
        # Fan-out reached two *distinct* daemons, each knowing its slot.
        identities = [
            shard["status"]["shard"]["index"] for shard in status["shards"]
        ]
        assert identities == [0, 1]
        assert status["aggregate"].get("serve.requests", 0) >= 1

    def test_metrics_merge_renders_prometheus(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        with fleet.client() as client:
            client.query(**SHARD0_KEY)
            metrics = client.metrics()
        assert metrics["json"]["run"] == "serve-fleet"
        assert len(metrics["shards"]) == 2
        assert "repro_serve_requests_total" in metrics["prom"]
        assert "repro_serve_front_requests_total" in metrics["prom"]


class TestFailureContainment:
    def test_dead_shard_degrades_to_shard_down(self, fleet_factory):
        fleet = fleet_factory(workers=2)
        with fleet.client() as client:
            assert client.query(**SHARD0_KEY)["ok"]
            fleet.shards[1].stop()
            # Shard 1's keyspace answers with the structured code...
            with pytest.raises(ServeError) as excinfo:
                client.query(**SHARD1_KEY)
            assert excinfo.value.code == "shard_down"
            # ...while shard 0's keyspace keeps serving,
            assert client.query(**SHARD0_KEY)["ok"]
            # and status reports the partial fleet instead of failing.
            status = client.status()
        assert status["shards_up"] == 1
        assert status["shards"][1]["ok"] is False
        assert status["shards"][1]["error"] == "shard_down"

    def test_stale_pooled_link_does_not_misreport_restart(self, fleet_factory):
        """A link pooled before a shard restart is stale; the front
        must retry once on a fresh dial instead of answering
        ``shard_down`` for a healthy shard."""
        fleet = fleet_factory(workers=2)
        with fleet.client() as client:
            assert client.query(**SHARD0_KEY)["ok"]  # pools a link to shard 0
            harness = fleet.shards[0]
            harness.stop()
            restarted = type(harness)(harness.config).start()
            fleet.shards[0] = restarted
            assert client.query(**SHARD0_KEY)["ok"]


class TestHttpAdapter:
    def test_endpoints(self, fleet_factory):
        port = _free_port()
        fleet_factory(workers=2, http_port=port)
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request("GET", "/v1/ping")
            response = conn.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["pong"] is True

            # Keep-alive: same connection serves the query.
            conn.request(
                "GET", "/v1/query?metric=hold_power&design=cmos&vdd=0.6"
            )
            response = conn.getresponse()
            assert response.status == 200
            body = json.loads(response.read())
            assert body["ok"] is True
            assert body["result"]["metric"] == "hold_power"

            conn.request("GET", "/v1/status")
            response = conn.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"]["fleet"] is True

            conn.request("GET", "/metrics")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type").startswith("text/plain")
            assert b"repro_serve_front_requests_total" in response.read()
        finally:
            conn.close()

    def test_error_mapping(self, fleet_factory):
        port = _free_port()
        fleet_factory(workers=2, http_port=port)
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request("GET", "/v1/query?metric=hold_power&design=cmos")
            response = conn.getresponse()  # missing vdd
            assert response.status == 400
            assert json.loads(response.read())["error"]["code"] == "bad_request"

            conn.request("GET", "/v1/query?metric=hold_power&design=cmos&vdd=NaN")
            response = conn.getresponse()
            assert response.status == 400
            response.read()

            conn.request("GET", "/nope")
            response = conn.getresponse()
            assert response.status == 404
            response.read()

            conn.request("POST", "/v1/query", body=b"{}")
            response = conn.getresponse()
            assert response.status == 405
            assert response.getheader("Allow") == "GET"
            response.read()
        finally:
            conn.close()

    def test_shard_down_maps_to_503(self, fleet_factory):
        port = _free_port()
        fleet = fleet_factory(workers=2, http_port=port)
        fleet.shards[1].stop()
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request(
                "GET", "/v1/query?metric=hold_power&design=cmos&vdd=0.6&beta=0.9"
            )
            response = conn.getresponse()
            assert response.status == 503
            assert json.loads(response.read())["error"]["code"] == "shard_down"
        finally:
            conn.close()
