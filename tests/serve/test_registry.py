"""GridRegistry + backfill batching units: validation, miss ranking,
store coherence, and deterministic spec compilation."""

from __future__ import annotations

import shutil

import pytest

from repro.char import CharSpec, CharStore, build_grid
from repro.char.query import CharQueryError
from repro.serve.backfill import MissKey, batch_specs
from repro.serve.registry import GridRegistry, validate_point


class TestValidatePoint:
    def test_accepts_a_characterizable_point(self):
        validate_point("hold_power", "cmos", 0.7, None, "tt")
        validate_point("drnm", "proposed", 0.65, None, "ss")
        validate_point("hold_power", "cmos", 0.7, 1.5, "tt")

    @pytest.mark.parametrize(
        "point",
        [
            ("nope", "cmos", 0.7, None, "tt"),          # unknown metric
            ("hold_power", "nope", 0.7, None, "tt"),    # unknown design
            ("hold_power", "cmos", 0.7, None, "xx"),    # unknown corner
            ("wl_crit", "asym", 0.7, None, "tt"),       # metric not defined
            ("hold_power", "cmos", 0.7, None, "ss"),    # corner-insensitive
            ("drnm", "proposed", 0.65, 1.2, "tt"),      # fixed sizing
            ("hold_power", "cmos", 0.7, -1.0, "tt"),    # non-positive beta
            ("hold_power", "cmos", 2.5, None, "tt"),    # vdd out of domain
        ],
    )
    def test_rejects_never_characterizable_points(self, point):
        with pytest.raises(CharQueryError) as excinfo:
            validate_point(*point)
        assert excinfo.value.reason == "bad-request"


class TestBatchSpecs:
    KEYS = [
        MissKey("cmos", "tt", None, 0.9, "hold_power"),
        MissKey("proposed", "tt", None, 0.55, "drnm"),
        MissKey("cmos", "tt", None, 0.55, "hold_power"),
        MissKey("cmos", "tt", 1.5, 0.7, "hold_power"),
    ]

    def test_groups_by_corner_and_beta(self):
        specs = batch_specs(self.KEYS)
        assert sorted((s.betas for s in specs), key=repr) == [(1.5,), (None,)]
        merged = next(s for s in specs if s.betas == (None,))
        assert merged.designs == ("cmos", "proposed")
        assert merged.vdds == (0.55, 0.9)
        assert merged.metrics == ("drnm", "hold_power")
        assert merged.corners == ("tt",)
        assert all(s.name == "backfill" for s in specs)

    def test_deterministic_under_permutation(self):
        assert batch_specs(list(reversed(self.KEYS))) == batch_specs(self.KEYS)


@pytest.fixture
def registry_store(tmp_path, seed_store_dir) -> CharStore:
    store_dir = tmp_path / "registry_store"
    shutil.copytree(seed_store_dir, store_dir)
    return CharStore(store_dir)


class TestGridRegistry:
    def test_exact_and_interpolated_hits(self, registry_store, serve_spec):
        registry = GridRegistry(registry_store, [serve_spec])
        exact = registry.answer("hold_power", "cmos", 0.6)
        assert exact.method == "exact"
        interp = registry.answer("hold_power", "cmos", 0.7)
        assert interp.method == "linear"
        low, high = (
            registry.answer("hold_power", "cmos", v).value for v in (0.6, 0.8)
        )
        assert min(low, high) <= interp.value <= max(low, high)

    def test_miss_reasons(self, registry_store, serve_spec):
        registry = GridRegistry(registry_store, [serve_spec])
        with pytest.raises(CharQueryError) as excinfo:
            registry.answer("hold_power", "cmos", 0.55)
        assert excinfo.value.reason == "out-of-range"
        with pytest.raises(CharQueryError) as excinfo:
            registry.answer("read_delay", "cmos", 0.6)
        assert excinfo.value.reason == "off-grid"
        with pytest.raises(CharQueryError) as excinfo:
            registry.answer("hold_power", "unheard_of", 0.6)
        assert excinfo.value.reason == "bad-request"

    def test_no_specs_still_serves_exact_index_points(self, registry_store):
        registry = GridRegistry(registry_store, [])
        assert registry.answer("hold_power", "cmos", 0.6).method == "exact"
        with pytest.raises(CharQueryError) as excinfo:
            registry.answer("hold_power", "cmos", 0.7)  # not in the index
        assert excinfo.value.reason == "off-grid"

    def test_off_spec_exact_fallback(self, registry_store, serve_spec):
        extra = CharSpec(
            name="extra", designs=("cmos",), vdds=(0.9,), metrics=("hold_power",)
        )
        build_grid(extra, registry_store)
        registry = GridRegistry(registry_store, [serve_spec])
        answer = registry.answer("hold_power", "cmos", 0.9)
        assert answer.method == "exact"
        assert any("off-spec" in note for note in answer.notes)

    def test_maybe_reload_tracks_the_index(self, registry_store, serve_spec):
        registry = GridRegistry(registry_store, [serve_spec])
        loads = registry.reloads
        assert registry.maybe_reload() is False

        extra = CharSpec(
            name="extra", designs=("cmos",), vdds=(0.9,), metrics=("hold_power",)
        )
        build_grid(extra, CharStore(registry_store.directory))
        assert registry.maybe_reload() is True
        assert registry.reloads == loads + 1
        assert registry.answer("hold_power", "cmos", 0.9).value is not None
        assert registry.maybe_reload() is False

    def test_miss_storm_never_drops_the_index_cache(self, registry_store,
                                                    serve_spec, monkeypatch):
        """A storm of misses for an unrealizable point must not call
        ``store.refresh()`` (which drops the cache and forces a full
        synchronous index re-read *inside the event loop*) when the
        index has not changed."""
        registry = GridRegistry(registry_store, [serve_spec])
        refreshes = [0]
        real_refresh = registry.store.refresh

        def counting_refresh():
            refreshes[0] += 1
            real_refresh()

        monkeypatch.setattr(registry.store, "refresh", counting_refresh)
        with pytest.raises(CharQueryError):
            registry.answer("hold_power", "cmos", 0.55)
        cache = registry.store._index_cache
        assert cache is not None
        for _ in range(50):
            with pytest.raises(CharQueryError):
                registry.answer("hold_power", "cmos", 0.55)
        assert refreshes[0] == 0
        assert registry.store._index_cache is cache

    def test_exact_fallback_still_sees_fresh_appends(self, registry_store,
                                                     serve_spec):
        """The gated refresh must not cost append pickup: an entry a
        concurrent writer landed after the grids loaded is served from
        the exact index path without an explicit ``maybe_reload``."""
        registry = GridRegistry(registry_store, [serve_spec])
        extra = CharSpec(
            name="extra", designs=("cmos",), vdds=(0.9,),
            metrics=("hold_power",),
        )
        build_grid(extra, CharStore(registry_store.directory))
        answer = registry.answer("hold_power", "cmos", 0.9)
        assert answer.method == "exact"
