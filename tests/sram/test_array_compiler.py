"""Tests for the hierarchical array compiler (repro.sram.compiler)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuit.sparse import (
    DEFAULT_SPARSE_THRESHOLD,
    HAVE_SPARSE,
    SparseMnaSystem,
    make_system,
)
from repro.devices.charges import LinearCharge
from repro.sram import READ_ASSISTS, WRITE_ASSISTS, AccessConfig, CellSizing, Tfet6TCell
from repro.sram.array import ArrayGeometry, _BitlineScaledCell
from repro.sram.cell import JUNCTION_CAP_PER_UM
from repro.sram.compiler import (
    CompileOptions,
    compare_array,
    compile_array,
    instantiate_cell,
    measure_array,
    run_array_sweep,
    sweep_points,
)
from repro.sram.compiler.bitline import bitline_ladder

VDD = 0.8


@pytest.fixture(scope="module")
def proposed():
    return Tfet6TCell(CellSizing().with_beta(0.6), access=AccessConfig.INWARD_P)


@pytest.fixture(scope="module")
def small_read(proposed):
    """One compiled+measured small read path, shared across tests."""
    compiled = compile_array(proposed, ArrayGeometry(4, 2), VDD)
    return compiled, measure_array(compiled)


class TestBitlineLadder:
    def test_geometry_capacitance_derives_from_ladder(self):
        # Satellite: ArrayGeometry.bitline_capacitance and the compiler
        # ladder share one source of truth — the per-segment values.
        g = ArrayGeometry(64, 8)
        ladder = g.bitline_ladder()
        assert g.bitline_capacitance == pytest.approx(ladder.total_capacitance)
        assert ladder.total_capacitance == pytest.approx(
            g.fixed_bitline_cap + 64 * g.cell_bitline_cap
        )

    def test_explicit_rows_preserve_total(self):
        g = ArrayGeometry(16, 4)
        plain = g.bitline_ladder()
        delegated = g.bitline_ladder(
            explicit_rows=(13, 14, 15), explicit_cell_cap=4e-17
        )
        assert delegated.total_capacitance == pytest.approx(
            plain.total_capacitance
        )
        # The delegated charge moved out of the ladder taps...
        assert sum(delegated.segment_caps) == pytest.approx(
            sum(plain.segment_caps) - 3 * 4e-17
        )
        # ...and is accounted as explicit (instantiated-cell) charge.
        assert sum(delegated.explicit_caps) == pytest.approx(3 * 4e-17)

    def test_delegation_clamped_to_tap_value(self):
        ladder = bitline_ladder(
            4, cell_cap=1e-16, fixed_cap=0.0,
            explicit_rows=(3,), explicit_cell_cap=5e-16,
        )
        assert ladder.segment_caps[3] == 0.0
        assert ladder.total_capacitance == pytest.approx(4e-16)

    def test_resistance_and_elmore(self):
        g = ArrayGeometry(64, 8, bitline_res_per_cell=2.0)
        ladder = g.bitline_ladder()
        assert ladder.total_resistance == pytest.approx(128.0)
        assert ladder.elmore_delay > 0.0
        assert (
            ArrayGeometry(256, 8).bitline_ladder().elmore_delay
            > ladder.elmore_delay
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="rows"):
            bitline_ladder(0, 1e-16, 1e-15)
        with pytest.raises(ValueError, match="row"):
            bitline_ladder(4, 1e-16, 1e-15, explicit_rows=(7,))
        with pytest.raises(ValueError, match="negative"):
            bitline_ladder(4, -1e-16, 1e-15)


class TestInstance:
    def test_canonical_nodes_mapped_and_prefixed(self, proposed):
        from repro.circuit.netlist import Circuit

        circuit = Circuit("composition")
        nodes = instantiate_cell(
            circuit, proposed, prefix="c0_",
            node_map={"bl": "col_bl", "blb": "col_blb", "wl": "row_wl"},
        )
        assert nodes["bl"] == "col_bl" and nodes["wl"] == "row_wl"
        assert nodes["q"] == "c0_q" and nodes["vddc"] == "c0_vddc"
        names = set(circuit.node_names)
        assert {"col_bl", "col_blb", "row_wl", "c0_q", "c0_qb"} <= names
        # No leaked canonical names.
        assert not {"q", "qb", "bl", "blb", "wl"} & names

    def test_two_instances_double_the_devices(self, proposed):
        from repro.circuit.netlist import Circuit

        single = Circuit("one")
        instantiate_cell(single, proposed, prefix="a_", node_map={})
        double = Circuit("two")
        instantiate_cell(double, proposed, prefix="a_", node_map={})
        instantiate_cell(double, proposed, prefix="b_", node_map={})
        assert len(double.transistors) == 2 * len(single.transistors)
        assert len(double.capacitors) == 2 * len(single.capacitors)


class TestCompile:
    def test_composed_netlist_crosses_sparse_threshold(self, proposed):
        # Satellite: compiled netlists (>= 64 unknowns) auto-select the
        # sparse MNA assembler through make_system.
        compiled = compile_array(proposed, ArrayGeometry(16, 4), VDD)
        assert compiled.unknown_count >= DEFAULT_SPARSE_THRESHOLD
        system = make_system(compiled.circuit)
        if HAVE_SPARSE:
            assert isinstance(system, SparseMnaSystem)
        else:
            assert not isinstance(system, SparseMnaSystem)

    def test_sparse_selection_counter_increments(self, proposed):
        from repro.telemetry import core as telemetry

        compiled = compile_array(proposed, ArrayGeometry(16, 4), VDD)
        if not HAVE_SPARSE:
            pytest.skip("scipy.sparse unavailable")
        with telemetry.enabled() as session:
            make_system(compiled.circuit)
        assert session.counters.get("mna.sparse_selected", 0) >= 1

    def test_ladder_total_matches_analytic_lumped_value(self, proposed):
        geometry = ArrayGeometry(16, 4)
        compiled = compile_array(proposed, geometry, VDD)
        assert compiled.ladder.total_capacitance == pytest.approx(
            geometry.bitline_capacitance
        )
        junction = JUNCTION_CAP_PER_UM * proposed.sizing.access_width
        n_explicit = int(compiled.bench.notes["n_explicit"])
        assert sum(compiled.ladder.explicit_caps) == pytest.approx(
            (n_explicit + 1) * junction
        )

    def test_probes_and_victim(self, proposed):
        compiled = compile_array(proposed, ArrayGeometry(4, 2), VDD)
        for probe in ("wl_far", "bl_near", "blb_near", "q", "qb", "hs_q"):
            assert probe in compiled.probes
        single_column = compile_array(proposed, ArrayGeometry(4, 1), VDD)
        assert "hs_q" not in single_column.probes

    def test_scenario_and_cell_validation(self, proposed):
        from repro.experiments.designs import seven_t_cell

        with pytest.raises(ValueError, match="scenario"):
            compile_array(proposed, ArrayGeometry(4, 2), VDD, scenario="erase")
        with pytest.raises(NotImplementedError, match="7T"):
            compile_array(seven_t_cell(), ArrayGeometry(4, 2), VDD)
        with pytest.raises(TypeError, match="_build_core"):
            compile_array(object(), ArrayGeometry(4, 2), VDD)

    def test_assist_kind_checked(self, proposed):
        read_assist = READ_ASSISTS["vgnd_lowering"]
        write_assist = WRITE_ASSISTS["vdd_lowering"]
        with pytest.raises(ValueError, match="read assist"):
            compile_array(
                proposed, ArrayGeometry(4, 2), VDD,
                scenario="write", assist=read_assist,
            )
        with pytest.raises(ValueError, match="write assist"):
            compile_array(
                proposed, ArrayGeometry(4, 2), VDD,
                scenario="read", assist=write_assist,
            )

    def test_options_validation(self):
        with pytest.raises(ValueError, match="sense"):
            CompileOptions(sense="psychic")
        with pytest.raises(ValueError, match="neighbours"):
            CompileOptions(explicit_neighbours=-1)


class TestMeasure:
    def test_read_completes_with_ordered_delays(self, small_read):
        compiled, m = small_read
        assert m.completed
        assert 0.0 < m.wordline_delay < m.access_delay
        assert m.unknowns == compiled.unknown_count
        assert m.sparse_engaged == (
            HAVE_SPARSE and m.unknowns >= DEFAULT_SPARSE_THRESHOLD
        )

    def test_read_energy_positive_and_cell_share_smaller(self, small_read):
        _, m = small_read
        assert m.energy > 0.0
        assert 0.0 < m.cell_energy < m.energy

    def test_sense_amp_resolves(self, small_read):
        _, m = small_read
        assert math.isfinite(m.resolved_delay)
        assert m.resolved_delay > m.access_delay

    def test_write_flips_the_far_cell(self, proposed):
        compiled = compile_array(
            proposed, ArrayGeometry(4, 2), VDD, scenario="write"
        )
        m = measure_array(compiled)
        assert m.completed
        assert math.isnan(m.resolved_delay)

    def test_half_select_victim_holds(self, proposed):
        compiled = compile_array(
            proposed, ArrayGeometry(4, 2), VDD, scenario="half_select"
        )
        m = measure_array(compiled)
        assert math.isfinite(m.disturb_margin)
        assert m.disturb_margin > 0.1
        assert not m.victim_flipped


class TestCompare:
    def test_dual_source_agreement(self, proposed):
        comp = compare_array(
            proposed, ArrayGeometry(8, 4), VDD,
            assist=READ_ASSISTS["vgnd_lowering"],
        )
        # Loose structural bounds; the documented tolerances live in
        # ext_array_read/ext_array_area and scripts/array_smoke.py.
        assert 0.4 < comp.delay_ratio < 1.6
        assert comp.energy_ratio > 0.0
        assert comp.area_ratio > 0.0
        assert comp.measurement is not None
        assert comp.measurement.scenario == "read"


class TestBitlineScaledCell:
    def test_attribute_forwarding(self, proposed):
        proxy = _BitlineScaledCell(proposed, 9e-15)
        assert proxy.name == proposed.name
        assert proxy.sizing is proposed.sizing
        assert proxy.wl_active(VDD) == proposed.wl_active(VDD)
        with pytest.raises(AttributeError):
            proxy.not_a_cell_attribute

    @staticmethod
    def _bitline_caps(bench) -> dict[str, float]:
        return {
            c.name: c.charge.capacitance_farads
            for c in bench.circuit.capacitors
            if c.name in ("cbl", "cblb") and isinstance(c.charge, LinearCharge)
        }

    def test_read_testbench_carries_scaled_bitline(self, proposed):
        proxy = _BitlineScaledCell(proposed, 9e-15)
        caps = self._bitline_caps(proxy.read_testbench(VDD))
        assert caps == {"cbl": 9e-15, "cblb": 9e-15}

    def test_explicit_kwarg_wins_over_proxy_default(self, proposed):
        proxy = _BitlineScaledCell(proposed, 9e-15)
        caps = self._bitline_caps(
            proxy.read_testbench(VDD, bitline_capacitance=3e-15)
        )
        assert caps == {"cbl": 3e-15, "cblb": 3e-15}

    def test_fixed_load_cell_fallback(self):
        class FixedLoadCell:
            def read_testbench(self, vdd, assist=None, duration=1e-9):
                return ("fixed", vdd)

        proxy = _BitlineScaledCell(FixedLoadCell(), 9e-15)
        assert proxy.read_testbench(VDD) == ("fixed", VDD)


class TestVerifyComposition:
    def test_compiled_deck_passes_verify_audits(self, proposed):
        # Satellite: compiled decks run under the repro.verify session —
        # every converged Newton solve is KCL- and equivalence-audited.
        from repro.verify import core as verify

        compiled = compile_array(
            proposed, ArrayGeometry(4, 2), VDD,
            options=CompileOptions(sense="none"),
        )
        with verify.enabled() as session:
            measure_array(compiled)
        assert session.audits.get("kcl", 0) > 0
        assert session.audits.get("equivalence", 0) > 0
        assert session.violations == []

    def test_fuzz_style_assembly_check(self, proposed):
        # The differential fuzzer's assembly check (optimized vs
        # reference MNA at randomized probe vectors) on a composed deck.
        from repro.verify.fuzz import _check_assembly

        compiled = compile_array(proposed, ArrayGeometry(4, 2), VDD)
        failure = _check_assembly(compiled.circuit, np.random.default_rng(0))
        assert failure is None


class TestSweep:
    def test_sweep_points_validates_design(self):
        with pytest.raises(ValueError, match="design"):
            sweep_points((4,), 2, VDD, design="flash")

    def test_serial_sweep_measures_each_geometry(self):
        results, report = run_array_sweep((4,), columns=2, vdd=VDD)
        assert report.ok_count == 1
        (m,) = results
        assert m["design"] == "proposed"
        assert m["rows"] == 4
        assert math.isfinite(m["access_delay"])
