"""Tests for the array-level planner."""

from __future__ import annotations

import math

import pytest

from repro.sram import READ_ASSISTS, AccessConfig, CellSizing, Cmos6TCell, Tfet6TCell
from repro.sram.array import (
    CELL_BITLINE_CAP,
    FIXED_BITLINE_CAP,
    ArrayGeometry,
    plan_array,
)

VDD = 0.8


@pytest.fixture(scope="module")
def proposed():
    return Tfet6TCell(CellSizing().with_beta(0.6), access=AccessConfig.INWARD_P)


class TestGeometry:
    def test_bits(self):
        assert ArrayGeometry(128, 64).bits == 8192

    def test_bitline_cap_scales_with_rows(self):
        g64 = ArrayGeometry(64, 8)
        g256 = ArrayGeometry(256, 8)
        assert g256.bitline_capacitance > g64.bitline_capacitance
        assert g64.bitline_capacitance == pytest.approx(
            FIXED_BITLINE_CAP + 64 * CELL_BITLINE_CAP
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayGeometry(0, 8)


class TestPlanArray:
    @pytest.fixture(scope="class")
    def small(self, request):
        proposed = Tfet6TCell(CellSizing().with_beta(0.6), access=AccessConfig.INWARD_P)
        return plan_array(
            proposed,
            ArrayGeometry(64, 32),
            VDD,
            read_assist=READ_ASSISTS["vgnd_lowering"],
        )

    def test_access_time_finite(self, small):
        assert math.isfinite(small.read_access_time)
        assert small.read_access_time > 5e-11  # includes the decode term

    def test_standby_power_is_bits_times_cell(self, small, proposed):
        from repro.analysis.power import hold_power

        expected = 64 * 32 * hold_power(proposed, VDD)
        assert small.standby_power == pytest.approx(expected, rel=1e-6)

    def test_per_bit_power(self, small):
        assert small.standby_power_per_bit == pytest.approx(
            small.standby_power / 2048, rel=1e-9
        )

    def test_summary_mentions_key_numbers(self, small):
        text = small.summary()
        assert "64 x 32" in text
        assert "fF" in text and "um^2" in text

    def test_taller_column_reads_slower(self, proposed):
        short = plan_array(proposed, ArrayGeometry(32, 8), VDD,
                           read_assist=READ_ASSISTS["vgnd_lowering"])
        tall = plan_array(proposed, ArrayGeometry(256, 8), VDD,
                          read_assist=READ_ASSISTS["vgnd_lowering"])
        assert tall.read_access_time > short.read_access_time
        assert tall.bitline_capacitance > short.bitline_capacitance

    def test_tfet_array_standby_orders_below_cmos(self, proposed):
        geometry = ArrayGeometry(64, 16)
        tfet = plan_array(proposed, geometry, VDD,
                          read_assist=READ_ASSISTS["vgnd_lowering"])
        cmos = plan_array(Cmos6TCell(CellSizing().with_beta(1.3)), geometry, VDD)
        assert cmos.standby_power / tfet.standby_power > 1e5
