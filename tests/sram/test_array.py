"""Tests for the array-level planner."""

from __future__ import annotations

import math

import pytest

from repro.sram import READ_ASSISTS, AccessConfig, CellSizing, Cmos6TCell, Tfet6TCell
from repro.sram.array import (
    CELL_BITLINE_CAP,
    DECODE_TIME,
    FIXED_BITLINE_CAP,
    PERIPHERY_AREA_OVERHEAD,
    ArrayGeometry,
    plan_array,
)

VDD = 0.8


@pytest.fixture(scope="module")
def proposed():
    return Tfet6TCell(CellSizing().with_beta(0.6), access=AccessConfig.INWARD_P)


class TestGeometry:
    def test_bits(self):
        assert ArrayGeometry(128, 64).bits == 8192

    def test_bitline_cap_scales_with_rows(self):
        g64 = ArrayGeometry(64, 8)
        g256 = ArrayGeometry(256, 8)
        assert g256.bitline_capacitance > g64.bitline_capacitance
        assert g64.bitline_capacitance == pytest.approx(
            FIXED_BITLINE_CAP + 64 * CELL_BITLINE_CAP
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayGeometry(0, 8)

    def test_electrical_knobs_default_to_module_constants(self):
        g = ArrayGeometry(64, 8)
        assert g.cell_bitline_cap == CELL_BITLINE_CAP
        assert g.fixed_bitline_cap == FIXED_BITLINE_CAP
        assert g.periphery_area_overhead == PERIPHERY_AREA_OVERHEAD
        assert g.decode_time == DECODE_TIME

    def test_bitline_cap_overrides_take_effect(self):
        g = ArrayGeometry(64, 8, cell_bitline_cap=2e-16, fixed_bitline_cap=5e-15)
        assert g.bitline_capacitance == pytest.approx(5e-15 + 64 * 2e-16)

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError, match="capacitance"):
            ArrayGeometry(64, 8, cell_bitline_cap=-1e-16)
        with pytest.raises(ValueError, match="overhead"):
            ArrayGeometry(64, 8, periphery_area_overhead=-0.1)
        with pytest.raises(ValueError, match="decode"):
            ArrayGeometry(64, 8, decode_time=-1e-12)


class TestPlanArray:
    @pytest.fixture(scope="class")
    def small(self, request):
        proposed = Tfet6TCell(CellSizing().with_beta(0.6), access=AccessConfig.INWARD_P)
        return plan_array(
            proposed,
            ArrayGeometry(64, 32),
            VDD,
            read_assist=READ_ASSISTS["vgnd_lowering"],
        )

    def test_access_time_finite(self, small):
        assert math.isfinite(small.read_access_time)
        assert small.read_access_time > 5e-11  # includes the decode term

    def test_standby_power_is_bits_times_cell(self, small, proposed):
        from repro.analysis.power import hold_power

        expected = 64 * 32 * hold_power(proposed, VDD)
        assert small.standby_power == pytest.approx(expected, rel=1e-6)

    def test_per_bit_power(self, small):
        assert small.standby_power_per_bit == pytest.approx(
            small.standby_power / 2048, rel=1e-9
        )

    def test_summary_mentions_key_numbers(self, small):
        text = small.summary()
        assert "64 x 32" in text
        assert "fF" in text and "um^2" in text

    def test_taller_column_reads_slower(self, proposed):
        short = plan_array(proposed, ArrayGeometry(32, 8), VDD,
                           read_assist=READ_ASSISTS["vgnd_lowering"])
        tall = plan_array(proposed, ArrayGeometry(256, 8), VDD,
                          read_assist=READ_ASSISTS["vgnd_lowering"])
        assert tall.read_access_time > short.read_access_time
        assert tall.bitline_capacitance > short.bitline_capacitance

    def test_plan_array_responds_to_geometry_overrides(self, proposed):
        base = ArrayGeometry(64, 8)
        tweaked = ArrayGeometry(
            64, 8, decode_time=0.0, periphery_area_overhead=0.0
        )
        with_defaults = plan_array(proposed, base, VDD,
                                   read_assist=READ_ASSISTS["vgnd_lowering"])
        without = plan_array(proposed, tweaked, VDD,
                             read_assist=READ_ASSISTS["vgnd_lowering"])
        assert with_defaults.read_access_time - without.read_access_time == (
            pytest.approx(DECODE_TIME)
        )
        assert without.area_um2 == pytest.approx(
            with_defaults.area_um2 / (1.0 + PERIPHERY_AREA_OVERHEAD)
        )

    def test_tfet_array_standby_orders_below_cmos(self, proposed):
        geometry = ArrayGeometry(64, 16)
        tfet = plan_array(proposed, geometry, VDD,
                          read_assist=READ_ASSISTS["vgnd_lowering"])
        cmos = plan_array(Cmos6TCell(CellSizing().with_beta(1.3)), geometry, VDD)
        assert cmos.standby_power / tfet.standby_power > 1e5
