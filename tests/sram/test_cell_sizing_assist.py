"""Tests for cell sizing and the assist-technique catalog."""

from __future__ import annotations

import pytest

from repro.circuit.waveforms import Constant, Pulse
from repro.sram.assist import (
    ALL_ASSISTS,
    READ_ASSISTS,
    WRITE_ASSISTS,
    AccessWindow,
    Assist,
)
from repro.sram.cell import CellSizing


class TestCellSizing:
    def test_beta_definition(self):
        s = CellSizing(access_width=0.1, pulldown_width=0.06)
        assert s.beta == pytest.approx(0.6)

    def test_with_beta_moves_pulldown_only(self):
        s = CellSizing().with_beta(2.0)
        assert s.pulldown_width == pytest.approx(0.2)
        assert s.access_width == 0.1
        assert s.pullup_width == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            CellSizing(access_width=0.0)
        with pytest.raises(ValueError):
            CellSizing().with_beta(-1.0)


class TestAssistCatalog:
    def test_four_write_four_read(self):
        assert len(WRITE_ASSISTS) == 4
        assert len(READ_ASSISTS) == 4
        assert len(ALL_ASSISTS) == 8

    def test_paper_directions(self):
        # Note the pTFET-specific inversion: wordline *lowering* is the
        # write assist, wordline *raising* the read assist.
        assert WRITE_ASSISTS["wl_lowering"].sign == -1.0
        assert READ_ASSISTS["wl_raising"].sign == +1.0
        assert WRITE_ASSISTS["vdd_lowering"].sign == -1.0
        assert READ_ASSISTS["vgnd_lowering"].sign == -1.0

    def test_default_fraction_is_thirty_percent(self):
        for assist in ALL_ASSISTS.values():
            assert assist.fraction == 0.3

    def test_delta(self):
        assert WRITE_ASSISTS["vgnd_raising"].delta(0.8) == pytest.approx(0.24)
        assert READ_ASSISTS["bl_lowering"].delta(0.8) == pytest.approx(-0.24)

    def test_validation(self):
        with pytest.raises(ValueError):
            Assist("x", "hold", "vdd", 1.0)
        with pytest.raises(ValueError):
            Assist("x", "write", "body", 1.0)
        with pytest.raises(ValueError):
            Assist("x", "write", "vdd", 0.5)
        with pytest.raises(ValueError):
            Assist("x", "write", "vdd", 1.0, fraction=1.5)


class TestAssistWaveforms:
    def window(self):
        return AccessWindow(1e-9, 2e-9)

    def test_rail_assist_produces_pulse(self):
        a = WRITE_ASSISTS["vdd_lowering"]
        wf = a.vdd_rail(0.8, self.window())
        assert isinstance(wf, Pulse)
        assert wf.value(1.5e-9) == pytest.approx(0.8 - 0.24)
        assert wf.value(0.0) == pytest.approx(0.8)

    def test_rail_assist_leads_the_wordline(self):
        a = WRITE_ASSISTS["vgnd_raising"]
        wf = a.gnd_rail(0.8, self.window())
        # Asserted 600 ps before the access window opens.
        assert wf.value(1e-9 - 1e-10) == pytest.approx(0.24)

    def test_wl_bl_assists_have_short_lead(self):
        assert WRITE_ASSISTS["bl_raising"].lead_time < WRITE_ASSISTS["vdd_lowering"].lead_time

    def test_non_target_rails_stay_constant(self):
        a = WRITE_ASSISTS["wl_lowering"]
        assert isinstance(a.vdd_rail(0.8, self.window()), Constant)
        assert isinstance(a.gnd_rail(0.8, self.window()), Constant)

    def test_wl_level_shift(self):
        a = WRITE_ASSISTS["wl_lowering"]
        assert a.wl_active_level(0.0, 0.8) == pytest.approx(-0.24)
        b = READ_ASSISTS["wl_raising"]
        assert b.wl_active_level(0.0, 0.8) == pytest.approx(0.24)

    def test_bitline_level_shift(self):
        a = WRITE_ASSISTS["bl_raising"]
        assert a.bitline_level(0.8, 0.8) == pytest.approx(1.04)
        b = READ_ASSISTS["bl_lowering"]
        assert b.bitline_level(0.8, 0.8) == pytest.approx(0.56)

    def test_window_too_early_for_lead_raises(self):
        a = WRITE_ASSISTS["vdd_lowering"]
        with pytest.raises(ValueError, match="lead time"):
            a.vdd_rail(0.8, AccessWindow(1e-10, 2e-10))

    def test_access_window_validation(self):
        with pytest.raises(ValueError):
            AccessWindow(1e-9, 1e-9)
