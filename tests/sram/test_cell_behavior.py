"""Behavioral integration tests: the paper's Section 3 observations.

These run real transient simulations, so each case is kept short; the
exhaustive sweeps live in the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.analysis.power import hold_power, static_power
from repro.analysis.stability import (
    dynamic_read_noise_margin,
    write_flips_cell,
)
from repro.circuit.transient import simulate_transient
from repro.sram import (
    AccessConfig,
    AsymTfet6TCell,
    CellSizing,
    Cmos6TCell,
    Tfet6TCell,
    Tfet7TCell,
)

VDD = 0.8


@pytest.fixture(scope="module")
def proposed():
    return Tfet6TCell(CellSizing().with_beta(0.6), access=AccessConfig.INWARD_P)


class TestHold:
    def test_cell_retains_state(self, proposed):
        bench = proposed.hold_testbench(VDD)
        res = simulate_transient(
            bench.circuit, 2e-9, initial_conditions=bench.initial_conditions
        )
        assert res.final("q") == pytest.approx(VDD, abs=0.01)
        assert res.final("qb") == pytest.approx(0.0, abs=0.01)

    def test_cell_retains_opposite_state(self, proposed):
        bench = proposed.hold_testbench(VDD, stored_one=False)
        res = simulate_transient(
            bench.circuit, 2e-9, initial_conditions=bench.initial_conditions
        )
        assert res.final("q") == pytest.approx(0.0, abs=0.01)
        assert res.final("qb") == pytest.approx(VDD, abs=0.01)

    def test_inward_cells_leak_like_tfets(self, proposed):
        power = hold_power(proposed, VDD, average_states=False)
        assert power < 1e-16  # attowatt regime

    def test_outward_cells_burn_orders_more(self):
        inward = Tfet6TCell(access=AccessConfig.INWARD_P)
        outward = Tfet6TCell(access=AccessConfig.OUTWARD_N)
        ratio = hold_power(outward, VDD, average_states=False) / hold_power(
            inward, VDD, average_states=False
        )
        assert ratio > 1e8  # paper: ~9 orders at 0.8 V

    def test_outward_penalty_shrinks_at_low_vdd(self):
        outward = Tfet6TCell(access=AccessConfig.OUTWARD_N)
        p06 = hold_power(outward, 0.6, average_states=False)
        p08 = hold_power(outward, 0.8, average_states=False)
        assert p08 / p06 > 1e2

    def test_cmos_six_orders_above_tfet(self, proposed):
        cmos = Cmos6TCell(CellSizing().with_beta(1.3))
        ratio = hold_power(cmos, VDD, average_states=False) / hold_power(
            proposed, VDD, average_states=False
        )
        assert 1e5 < ratio < 1e8  # paper: 6-7 orders

    def test_asym_leakage_is_state_dependent(self):
        cell = AsymTfet6TCell()
        p_one = static_power(cell.hold_testbench(0.8, stored_one=True))
        p_zero = static_power(cell.hold_testbench(0.8, stored_one=False))
        assert max(p_one, p_zero) > 100 * min(p_one, p_zero)

    def test_7t_holds_tfet_floor_despite_outward_access(self):
        # The grounded write bitlines avoid the reverse-bias condition.
        assert hold_power(Tfet7TCell(), VDD) < 1e-16


class TestWrite:
    def test_proposed_cell_writes(self, proposed):
        assert write_flips_cell(proposed.write_testbench(VDD, 2e-9))

    def test_inward_n_cannot_write(self):
        cell = Tfet6TCell(CellSizing().with_beta(0.6), access=AccessConfig.INWARD_N)
        assert not write_flips_cell(cell.write_testbench(VDD, 3e-9))

    def test_large_beta_cannot_write(self):
        cell = Tfet6TCell(CellSizing().with_beta(2.0), access=AccessConfig.INWARD_P)
        assert not write_flips_cell(cell.write_testbench(VDD, 3e-9))

    def test_too_short_pulse_fails(self, proposed):
        assert not write_flips_cell(proposed.write_testbench(VDD, 2e-11))

    def test_cmos_writes_fast(self):
        cell = Cmos6TCell(CellSizing().with_beta(1.3))
        assert write_flips_cell(cell.write_testbench(VDD, 5e-11))

    def test_asym_writes_with_builtin_assist(self):
        assert write_flips_cell(AsymTfet6TCell().write_testbench(VDD, 2e-9))

    def test_7t_writes_through_outward_access(self):
        assert write_flips_cell(Tfet7TCell().write_testbench(VDD, 3e-9))


class TestRead:
    def test_read_preserves_state(self, proposed):
        drnm = dynamic_read_noise_margin(proposed.read_testbench(VDD))
        assert drnm > 0.1

    def test_bitline_discharges_through_zero_node(self, proposed):
        bench = proposed.read_testbench(VDD, duration=1e-9)
        res = simulate_transient(
            bench.circuit,
            bench.window.t_off,
            initial_conditions=bench.initial_conditions,
        )
        # blb (attached to qb = 0) droops; bl stays near the rail.
        assert res.final("blb") < VDD - 0.05
        assert res.final("bl") > VDD - 0.03

    def test_drnm_grows_with_beta(self):
        small = Tfet6TCell(CellSizing().with_beta(0.4), access=AccessConfig.INWARD_P)
        large = Tfet6TCell(CellSizing().with_beta(1.5), access=AccessConfig.INWARD_P)
        assert dynamic_read_noise_margin(
            large.read_testbench(VDD)
        ) > dynamic_read_noise_margin(small.read_testbench(VDD))

    def test_7t_read_is_nondestructive_and_stable(self):
        cell = Tfet7TCell()
        bench = cell.read_testbench(VDD, duration=1e-9)
        res = simulate_transient(
            bench.circuit,
            bench.window.t_off,
            initial_conditions=bench.initial_conditions,
        )
        assert res.final("rbl") < VDD - 0.05  # read signal developed
        assert res.final("q") == pytest.approx(VDD, abs=0.05)  # undisturbed

    def test_vgnd_lowering_boosts_drnm(self, proposed):
        from repro.sram import READ_ASSISTS

        plain = dynamic_read_noise_margin(proposed.read_testbench(VDD))
        assisted = dynamic_read_noise_margin(
            proposed.read_testbench(VDD, assist=READ_ASSISTS["vgnd_lowering"])
        )
        assert assisted > plain + 0.1
