"""Tests for the sense amplifier and the full read path."""

from __future__ import annotations

import math

import pytest

from repro.circuit.transient import simulate_transient
from repro.experiments.designs import cmos_cell, proposed_cell, proposed_read_assist
from repro.sram.senseamp import (
    SenseAmpSizing,
    minimum_sense_delay,
    read_path_testbench,
    sense_resolves_correctly,
)

VDD = 0.8


class TestSizing:
    def test_defaults_valid(self):
        SenseAmpSizing()

    def test_validation(self):
        with pytest.raises(ValueError):
            SenseAmpSizing(latch_nmos=0.0)
        with pytest.raises(ValueError):
            SenseAmpSizing(mismatch=0.6)


class TestReadPath:
    def test_latch_resolves_with_ample_delay(self):
        bench = read_path_testbench(
            proposed_cell(), VDD, 2e-9, assist=proposed_read_assist(), duration=3e-9
        )
        result = simulate_transient(
            bench.circuit,
            bench.notes["fire_time"] + 1e-9,
            initial_conditions=bench.initial_conditions,
        )
        # blb discharges (qb side), so sa_out must latch high.
        assert result.final("sa_out") > 0.7 * VDD
        assert result.final("sa_outb") < 0.1 * VDD

    def test_cell_state_survives_the_sense_operation(self):
        bench = read_path_testbench(
            proposed_cell(), VDD, 1e-9, assist=proposed_read_assist(), duration=2e-9
        )
        result = simulate_transient(
            bench.circuit,
            bench.notes["fire_time"] + 1e-9,
            initial_conditions=bench.initial_conditions,
        )
        assert result.final("q") > result.final("qb")

    def test_premature_fire_misresolves_with_offset(self):
        # With a 4 % offset and almost no split, the latch falls the
        # wrong way — this is what sets the minimum sense delay.
        assert not sense_resolves_correctly(
            cmos_cell(), VDD, 1e-11, sizing=SenseAmpSizing(mismatch=0.3)
        )

    def test_ideal_latch_resolves_tiny_split(self):
        assert sense_resolves_correctly(
            cmos_cell(), VDD, 8e-11, sizing=SenseAmpSizing(mismatch=0.0)
        )


class TestMinimumSenseDelay:
    def test_cmos_sense_delay_reasonable(self):
        d = minimum_sense_delay(cmos_cell(), VDD)
        assert 2e-11 < d < 5e-10

    def test_tfet_pays_for_slow_bitline(self):
        d_tfet = minimum_sense_delay(proposed_cell(), VDD, assist=proposed_read_assist())
        d_cmos = minimum_sense_delay(cmos_cell(), VDD)
        assert d_tfet > 3.0 * d_cmos

    def test_infinite_when_offset_unbeatable(self):
        # The slow TFET bitline cannot out-split a 30 % offset within a
        # 120 ps budget: the search reports failure.
        d = minimum_sense_delay(
            proposed_cell(), VDD, sizing=SenseAmpSizing(mismatch=0.3), upper=1.2e-10
        )
        assert math.isinf(d)
