"""Structural tests: topology of every cell and testbench."""

from __future__ import annotations

import pytest

from repro.sram import (
    AccessConfig,
    AsymTfet6TCell,
    CellSizing,
    Cmos6TCell,
    Tfet6TCell,
    Tfet7TCell,
)
from repro.sram.cell import TfetDeviceSet


def transistor_by_name(circuit, name):
    for t in circuit.transistors:
        if t.name == name:
            return t
    raise KeyError(name)


class TestTfet6TTopology:
    def test_six_transistors(self):
        bench = Tfet6TCell().hold_testbench(0.8)
        assert len(bench.circuit.transistors) == 6

    def test_inverters_always_forward(self):
        bench = Tfet6TCell().hold_testbench(0.8)
        c = bench.circuit
        pd = transistor_by_name(c, "m1_pd")
        assert pd.polarity == "n"
        assert pd.drain == c.index_of("q")
        assert pd.source == c.index_of("vgnd")
        pu = transistor_by_name(c, "m2_pu")
        assert pu.polarity == "p"
        assert pu.source == c.index_of("vddc")
        assert pu.drain == c.index_of("q")

    @pytest.mark.parametrize(
        "config,polarity,drain_at_bitline",
        [
            (AccessConfig.INWARD_N, "n", True),
            (AccessConfig.INWARD_P, "p", False),
            (AccessConfig.OUTWARD_N, "n", False),
            (AccessConfig.OUTWARD_P, "p", True),
        ],
    )
    def test_access_orientation(self, config, polarity, drain_at_bitline):
        bench = Tfet6TCell(access=config).hold_testbench(0.8)
        c = bench.circuit
        ax = transistor_by_name(c, "m3_ax")
        assert ax.polarity == polarity
        if drain_at_bitline:
            assert ax.drain == c.index_of("bl")
            assert ax.source == c.index_of("q")
        else:
            assert ax.drain == c.index_of("q")
            assert ax.source == c.index_of("bl")

    def test_wordline_polarity(self):
        p_cell = Tfet6TCell(access=AccessConfig.INWARD_P)
        n_cell = Tfet6TCell(access=AccessConfig.INWARD_N)
        assert p_cell.wl_active(0.8) == 0.0 and p_cell.wl_inactive(0.8) == 0.8
        assert n_cell.wl_active(0.8) == 0.8 and n_cell.wl_inactive(0.8) == 0.0

    def test_beta_scales_pulldown_width(self):
        cell = Tfet6TCell(CellSizing().with_beta(2.0))
        bench = cell.hold_testbench(0.8)
        assert transistor_by_name(bench.circuit, "m1_pd").width_um == pytest.approx(0.2)
        assert transistor_by_name(bench.circuit, "m3_ax").width_um == pytest.approx(0.1)

    def test_device_set_positions_used(self):
        devices = TfetDeviceSet.uniform(Tfet6TCell().devices.pulldown_left)
        cell = Tfet6TCell(devices=devices)
        bench = cell.hold_testbench(0.8)
        assert transistor_by_name(bench.circuit, "m1_pd").model is devices.pulldown_left

    def test_every_transistor_has_gate_caps(self):
        bench = Tfet6TCell().hold_testbench(0.8)
        names = {cap.name for cap in bench.circuit.capacitors}
        for t in ("m1_pd", "m2_pu", "m3_ax", "m6_ax"):
            assert f"{t}.cgs" in names and f"{t}.cgd" in names

    def test_storage_nodes_have_wire_caps(self):
        bench = Tfet6TCell().hold_testbench(0.8)
        names = {cap.name for cap in bench.circuit.capacitors}
        assert "q.wire" in names and "qb.wire" in names


class TestCmosTopology:
    def test_nmos_access_active_high(self):
        cell = Cmos6TCell()
        assert cell.wl_active(0.8) == 0.8
        assert cell.wl_inactive(0.8) == 0.0

    def test_pmos_pullups(self):
        bench = Cmos6TCell().hold_testbench(0.8)
        assert transistor_by_name(bench.circuit, "m2_pu").polarity == "p"


class TestAsymTopology:
    def test_mixed_access_orientation(self):
        bench = AsymTfet6TCell().hold_testbench(0.8)
        c = bench.circuit
        left = transistor_by_name(c, "m3_ax")
        right = transistor_by_name(c, "m6_ax")
        assert left.drain == c.index_of("q")  # outward (discharges q)
        assert right.drain == c.index_of("blb")  # inward (charges qb)

    def test_write_bench_has_builtin_ground_pulse(self):
        bench = AsymTfet6TCell().write_testbench(0.8, 1e-9)
        vgnd = bench.circuit.voltage_sources[bench.circuit.source_index("vgnd")]
        mid = (bench.window.t_on + bench.window.t_off) / 2
        assert vgnd.waveform.value(mid) == pytest.approx(0.24)
        assert vgnd.waveform.value(0.0) == 0.0

    def test_external_assist_rejected(self):
        from repro.sram import WRITE_ASSISTS

        with pytest.raises(ValueError, match="built-in"):
            AsymTfet6TCell().write_testbench(0.8, 1e-9, assist=WRITE_ASSISTS["vgnd_raising"])


class TestSevenTTopology:
    def test_seven_transistors(self):
        bench = Tfet7TCell().hold_testbench(0.8)
        assert len(bench.circuit.transistors) == 7

    def test_write_bitlines_grounded_in_hold(self):
        bench = Tfet7TCell().hold_testbench(0.8)
        for name in ("wbl", "wblb"):
            src = bench.circuit.voltage_sources[bench.circuit.source_index(name)]
            assert src.waveform.value(0.0) == 0.0

    def test_outward_write_access(self):
        bench = Tfet7TCell().hold_testbench(0.8)
        c = bench.circuit
        wax = transistor_by_name(c, "m3_wax")
        assert wax.drain == c.index_of("q")
        assert wax.source == c.index_of("wbl")

    def test_read_port_decoupled_from_storage(self):
        bench = Tfet7TCell().read_testbench(0.8)
        c = bench.circuit
        rd = transistor_by_name(c, "m7_rd")
        # Gate on the storage node, channel between rbl and rsl only.
        assert rd.gate == c.index_of("q")
        assert rd.drain == c.index_of("rbl")
        assert rd.source == c.index_of("rsl")

    def test_read_assist_rejected(self):
        from repro.sram import READ_ASSISTS

        with pytest.raises(ValueError):
            Tfet7TCell().read_testbench(0.8, assist=READ_ASSISTS["vgnd_lowering"])

    def test_missing_read_buffer_card_rejected(self):
        base = Tfet7TCell().devices
        incomplete = TfetDeviceSet(
            pulldown_left=base.pulldown_left,
            pulldown_right=base.pulldown_right,
            pullup_left=base.pullup_left,
            pullup_right=base.pullup_right,
            access_left=base.access_left,
            access_right=base.access_right,
            read_buffer=None,
        )
        with pytest.raises(ValueError, match="read-buffer"):
            Tfet7TCell(devices=incomplete)


class TestTestbenches:
    def test_read_bench_metadata(self):
        bench = Tfet6TCell().read_testbench(0.8)
        assert bench.read_bitline == "blb"
        assert bench.read_reference == "bl"
        assert bench.precharge_level == pytest.approx(0.8)
        assert bench.initial_conditions["q"] == 0.8
        assert bench.initial_conditions["qb"] == 0.0

    def test_write_bench_drives_bitlines(self):
        bench = Tfet6TCell().write_testbench(0.8, 1e-9)
        c = bench.circuit
        bl = c.voltage_sources[c.source_index("bl")]
        blb = c.voltage_sources[c.source_index("blb")]
        assert bl.waveform.value(1e-9) == 0.0
        assert blb.waveform.value(1e-9) == pytest.approx(0.8)

    def test_wrong_assist_kind_rejected(self):
        from repro.sram import READ_ASSISTS, WRITE_ASSISTS

        cell = Tfet6TCell()
        with pytest.raises(ValueError, match="read assist"):
            cell.write_testbench(0.8, 1e-9, assist=READ_ASSISTS["vgnd_lowering"])
        with pytest.raises(ValueError, match="write assist"):
            cell.read_testbench(0.8, assist=WRITE_ASSISTS["vgnd_raising"])

    def test_hold_state_selection(self):
        bench = Tfet6TCell().hold_testbench(0.8, stored_one=False)
        assert bench.initial_conditions["q"] == 0.0
        assert bench.initial_conditions["qb"] == 0.8

    def test_settle_stop_past_window(self):
        bench = Tfet6TCell().write_testbench(0.8, 1e-9)
        assert bench.settle_stop() > bench.window.t_off
