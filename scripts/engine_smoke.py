"""CI smoke test for the batch engine: parallel MC, forced retry, resume.

Exercises the three engine behaviours CI must never regress, end to end
and in minutes, not hours:

1. a small *real* Monte-Carlo batch (DRNM samples) on 2 workers with the
   shared on-disk device-table cache;
2. forced ConvergenceError retries with solver-knob escalation (a task
   function that diverges on its first attempt);
3. a simulated kill-and-resume cycle: a prefix of the batch is
   checkpointed, the resumed run computes only the remainder, and the
   combined values are bit-identical to an uninterrupted serial run;
4. a traced rerun of both batches: the merged run-level trace must
   contain every task's span tree, the ConvergenceError forensics of
   the forced retries, and task spans covering most of the scheduler
   wall; the trace and a metrics snapshot land in ``SMOKE_ARTIFACTS``
   (when set) for CI upload.

Run with ``PYTHONPATH=src python scripts/engine_smoke.py``; exits
non-zero on the first violated expectation.
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

from repro.circuit.dcop import ConvergenceError
from repro.engine import (
    EngineConfig,
    McMetricSpec,
    MonteCarloBatch,
    Task,
    derive_seed,
    run_tasks,
)

SAMPLES = 4
SEED = 7


def flaky_value(payload, ctx) -> float:
    """Diverges on the first attempt; succeeds once escalated."""
    if ctx.attempt == 0:
        raise ConvergenceError(f"task {ctx.index}: first attempt diverges")
    return float(ctx.rng().standard_normal())


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}")
    if not condition:
        sys.exit(1)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="engine_smoke_") as tmp:
        tmp_path = Path(tmp)

        print("1. parallel Monte-Carlo (DRNM, 2 workers, shared table cache)")
        batch = MonteCarloBatch(
            McMetricSpec(metric="drnm", beta=0.6, vdd=0.8, metric_name="DRNM")
        )
        mc = batch.run(
            SAMPLES,
            seed=SEED,
            engine=EngineConfig(jobs=2, cache_dir=tmp_path / "table_cache"),
        )
        check(mc.report.ok_count == SAMPLES, f"{SAMPLES}/{SAMPLES} samples computed")
        check(mc.failure_count == 0, "no diverged samples")
        stats = mc.report.cache_stats()
        check(stats["stores"] > 0, f"table cache populated ({stats})")

        serial = batch.run(SAMPLES, seed=SEED)
        check(
            list(serial.samples) == list(mc.samples),
            "jobs=2 bit-identical to jobs=1",
        )

        print("2. forced ConvergenceError retry with escalation")
        tasks = [
            Task(index=k, fn=flaky_value, payload=None, seed=derive_seed(SEED, k))
            for k in range(8)
        ]
        report = run_tasks(tasks, EngineConfig(jobs=2, retries=2))
        check(report.ok_count == 8, "all tasks recovered on retry")
        check(report.retry_count == 8, "each task used exactly one retry")

        no_retry = run_tasks(tasks, EngineConfig(jobs=2, retries=0))
        check(
            no_retry.failed_count == 8
            and all(f.error_type == "ConvergenceError" for f in no_retry.failures()),
            "without retries the failures are structured, not fatal",
        )

        print("3. kill-and-resume cycle")
        path = tmp_path / "smoke.jsonl"
        reference = run_tasks(tasks, EngineConfig(retries=1))
        run_tasks(
            tasks[:5],
            EngineConfig(retries=1, checkpoint_path=path, run_key="smoke", root_seed=SEED),
        )
        resumed = run_tasks(
            tasks,
            EngineConfig(
                jobs=2,
                retries=1,
                checkpoint_path=path,
                run_key="smoke",
                root_seed=SEED,
                resume=True,
            ),
        )
        check(resumed.resumed_count == 5, "5/8 outcomes replayed from the checkpoint")
        check(
            resumed.values() == reference.values(),
            "resumed run bit-identical to an uninterrupted run",
        )

        print("4. traced batches merge into one run-level trace + metrics")
        from repro.obs.export import write_metrics
        from repro.obs.trace import load_trace, summarize_trace
        from repro.telemetry import core as telemetry

        artifacts = Path(os.environ.get("SMOKE_ARTIFACTS", tmp_path / "artifacts"))
        artifacts.mkdir(parents=True, exist_ok=True)
        trace_dir = artifacts / "trace"
        trace_id = "5m0ke5m0ke5m0ke5"
        with telemetry.enabled(log_level="error") as session:
            batch.run(
                SAMPLES,
                seed=SEED,
                engine=EngineConfig(
                    jobs=2,
                    cache_dir=tmp_path / "table_cache",
                    trace_dir=trace_dir,
                    trace_id=trace_id,
                    run_key="smoke-mc",
                ),
            )
            run_tasks(
                tasks,
                EngineConfig(
                    jobs=2,
                    retries=1,
                    trace_dir=trace_dir,
                    trace_id=trace_id,
                    run_key="smoke-flaky",
                ),
            )
        write_metrics(
            session,
            artifacts / "engine_metrics.json",
            artifacts / "engine_metrics.prom",
            run="engine-smoke",
            trace_id=trace_id,
        )
        summary = summarize_trace(load_trace(trace_dir))
        check(
            summary["tasks"] == SAMPLES + 8,
            f"every task left a span ({summary['tasks']}/{SAMPLES + 8})",
        )
        check(
            summary["attempts"] == SAMPLES + 16,
            "retried tasks left one span per attempt",
        )
        check(
            summary["convergence_events"] >= 8,
            f"retry forensics recorded ({summary['convergence_events']} events)",
        )
        check(
            summary["task_coverage"] > 0.5,
            f"task spans cover the scheduler wall "
            f"({100.0 * summary['task_coverage']:.1f} %)",
        )
        check(
            (artifacts / "engine_metrics.prom").read_text().startswith("#"),
            "Prometheus metrics snapshot written",
        )

    print("engine smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
