"""CI smoke test for the characterization store: build, kill, resume, query.

Exercises the store behaviours CI must never regress, end to end and
through the real CLI (separate processes, real SIGKILL):

1. a cold ``repro char build`` of a tiny grid is killed mid-build once
   the engine checkpoint shows partial progress;
2. the rerun completes only the remainder (fewer points simulated than
   the spec total) and leaves every entry present;
3. a third build simulates nothing — the store is warm;
4. ``repro char query`` serves an exact stored point and an
   interpolated midpoint from the same store;
5. a traced build (``--trace-dir``/``--metrics-out``) of a small fresh
   grid produces a merged ``trace.json`` with one span per simulated
   point and JSON + Prometheus metrics snapshots; everything lands in
   ``SMOKE_ARTIFACTS`` (when set) for CI upload.

Run with ``PYTHONPATH=src python scripts/char_smoke.py``; exits
non-zero on the first violated expectation.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

SPEC = {
    "name": "smoke",
    "designs": ["cmos", "proposed"],
    "vdds": [0.5, 0.6, 0.7, 0.8],
    "metrics": ["drnm", "hold_power"],
}
TOTAL_ENTRIES = 16  # 2 designs x 4 vdds x 2 metrics

#: Small, cheap (DC-only) grid for the traced-build step.
TRACE_SPEC = {
    "name": "smoke_trace",
    "designs": ["cmos"],
    "vdds": [0.5, 0.6],
    "metrics": ["hold_power"],
}
TRACE_ENTRIES = 2


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}")
    if not condition:
        sys.exit(1)


def cli(*args: str, store: Path, spec: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro", "char", *args,
         "--spec", str(spec), "--store", str(store)],
        capture_output=True, text=True, env=env, cwd=ROOT,
    )


def simulated_count(build_output: str) -> int:
    match = re.search(r"(\d+) simulated", build_output)
    check(match is not None, f"build output reports a simulated count: {build_output!r}")
    return int(match.group(1))


def checkpoint_lines(store: Path) -> int:
    checkpoints = list((store / "checkpoints").glob("*.jsonl"))
    if not checkpoints:
        return 0
    return sum(len(p.read_text().splitlines()) for p in checkpoints)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="char_smoke_") as tmp:
        tmp_path = Path(tmp)
        store = tmp_path / "char"
        spec = tmp_path / "smoke.json"
        spec.write_text(json.dumps(SPEC))
        env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))

        print("1. SIGKILL a cold build once the checkpoint shows progress")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "char", "build",
             "--spec", str(spec), "--store", str(store)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, cwd=ROOT,
        )
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            # Outcome lines follow the checkpoint's header line.
            if checkpoint_lines(store) >= 3:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.05)
        killed = proc.poll() is None
        if killed:
            proc.kill()
        proc.wait()
        check(killed, "build was killed mid-flight")
        progress = checkpoint_lines(store)
        check(progress >= 3, f"checkpoint recorded partial progress ({progress} lines)")

        print("2. rerun completes only the remainder")
        done = cli("build", store=store, spec=spec)
        check(done.returncode == 0, "resumed build exits 0")
        resumed_computed = simulated_count(done.stdout)
        check(
            0 < resumed_computed < TOTAL_ENTRIES,
            f"remainder only: {resumed_computed}/{TOTAL_ENTRIES} simulated",
        )

        status = cli("status", store=store, spec=spec)
        check(
            f"{TOTAL_ENTRIES}/{TOTAL_ENTRIES} entries present" in status.stdout,
            "status reports every entry present",
        )

        print("3. warm rebuild simulates nothing")
        warm = cli("build", store=store, spec=spec)
        check(warm.returncode == 0, "warm build exits 0")
        check(simulated_count(warm.stdout) == 0, "0/16 simulated on the warm pass")

        print("4. queries served from the store")
        exact = cli(
            "query", "drnm", "--design", "proposed", "--vdd", "0.8", "--json",
            store=store, spec=spec,
        )
        check(exact.returncode == 0, "exact query exits 0")
        payload = json.loads(exact.stdout)
        check(payload["method"] == "exact", "stored point served exactly")

        mid = cli(
            "query", "hold_power", "--design", "cmos", "--vdd", "0.75", "--json",
            store=store, spec=spec,
        )
        check(mid.returncode == 0, "midpoint query exits 0")
        payload = json.loads(mid.stdout)
        check(payload["method"] in ("linear", "cubic"), "midpoint interpolated")
        check(payload["value"] > 0.0, "interpolated hold power is positive")

        print("5. traced build exports a merged trace and metrics snapshots")
        artifacts = Path(os.environ.get("SMOKE_ARTIFACTS", tmp_path / "artifacts"))
        artifacts.mkdir(parents=True, exist_ok=True)
        trace_spec = tmp_path / "smoke_trace.json"
        trace_spec.write_text(json.dumps(TRACE_SPEC))
        traced = cli(
            "build",
            "--trace-dir", str(artifacts / "char_trace"),
            "--metrics-out", str(artifacts / "char_metrics.json"),
            store=tmp_path / "char_traced", spec=trace_spec,
        )
        check(traced.returncode == 0, "traced build exits 0")
        trace_file = artifacts / "char_trace" / "trace.json"
        check(trace_file.exists(), "merged trace.json written")
        spans = json.loads(trace_file.read_text())["spans"]
        task_spans = [s for s in spans if s.get("name") == "task"]
        check(
            len(task_spans) == TRACE_ENTRIES,
            f"one task span per simulated point ({len(task_spans)}/{TRACE_ENTRIES})",
        )
        metrics = json.loads((artifacts / "char_metrics.json").read_text())
        counters = metrics["metrics"]["counters"]
        check(
            counters.get("char.points_computed") == TRACE_ENTRIES,
            "metrics snapshot records the computed points",
        )
        check(
            (artifacts / "char_metrics.prom").exists(),
            "Prometheus metrics snapshot written",
        )

    print("char smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
