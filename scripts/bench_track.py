#!/usr/bin/env python
"""Record BENCH_*.json headline metrics and flag regressions.

Scans the repo root (or ``--root``) for the ``BENCH_*.json`` artifacts
the benchmarks emit, normalizes each into a headline record
(:mod:`repro.obs.bench`), appends the new ones to
``results/bench_history.jsonl`` (idempotent — records are keyed by the
benchmark's own creation stamp), and prints the per-bench history
table.

``--check`` exits 1 when any bench's latest value breaches its hard
gate or drops more than ``--tolerance`` below the median of its prior
runs — the CI regression gate.  ``--selftest`` verifies the gate
itself: a synthetic regression injected into a temporary history must
be flagged, and a healthy history must pass.

``python -m repro bench history|check`` is the same machinery behind
the package CLI.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import bench  # noqa: E402


def collect_records(root: Path) -> list[dict]:
    records = []
    for path in bench.collect_bench_files(root):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            print(f"note: skipping unreadable {path}", file=sys.stderr)
            continue
        record = bench.bench_record(payload, path.name)
        if record is None:
            print(f"note: no headline metric in {path}; skipped", file=sys.stderr)
            continue
        records.append(record)
    return records


def selftest(tolerance: float) -> int:
    """The regression gate must catch a planted regression and pass a
    healthy history; exercised in CI so the gate cannot rot silently."""
    healthy = [
        {
            "schema": bench.RECORD_SCHEMA,
            "bench": "engine",
            "bench_schema": "repro.bench.engine/v1",
            "created_unix": float(i),
            "recorded_unix": float(i),
            "metric": "speedup",
            "direction": "higher",
            "value": 3.6 + 0.1 * i,
            "limit": 2.0,
            "source": "selftest",
        }
        for i in range(3)
    ]
    regressed = healthy + [
        {**healthy[-1], "created_unix": 99.0, "value": 1.2}
    ]
    with tempfile.TemporaryDirectory() as td:
        healthy_path = Path(td) / "healthy.jsonl"
        regressed_path = Path(td) / "regressed.jsonl"
        bench.append_history(healthy, healthy_path)
        bench.append_history(regressed, regressed_path)
        ok_problems = bench.check_history(
            bench.load_history(healthy_path), tolerance
        )
        bad_problems = bench.check_history(
            bench.load_history(regressed_path), tolerance
        )
    if ok_problems:
        print(f"selftest FAILED: healthy history flagged: {ok_problems}")
        return 1
    if not bad_problems:
        print("selftest FAILED: planted regression (3.8x -> 1.2x) not flagged")
        return 1

    # The stacked-batch family must normalize through its registered
    # headline and enforce the payload's own hard gate.
    batch_record = bench.bench_record(
        {"schema": "repro.bench.spice_batch/v1", "created_unix": 1.0,
         "speedup": 6.8, "gate": 5.0},
        "selftest",
    )
    if (
        batch_record is None
        or batch_record["metric"] != "speedup"
        or batch_record["limit"] != 5.0
    ):
        print("selftest FAILED: spice_batch payload did not normalize")
        return 1
    breach = bench.check_history([{**batch_record, "value": 4.0}], tolerance)
    if not breach:
        print("selftest FAILED: spice_batch gate breach (4.0x < 5x) not flagged")
        return 1

    # The serve-fleet family: throughput_scale is the headline, the
    # payload's gate_scale the hard floor.
    fleet_record = bench.bench_record(
        {"schema": "repro.bench.serve_fleet/v1", "created_unix": 1.0,
         "throughput_scale": 3.7, "gate_scale": 3.0},
        "selftest",
    )
    if (
        fleet_record is None
        or fleet_record["metric"] != "throughput_scale"
        or fleet_record["direction"] != "higher"
        or fleet_record["limit"] != 3.0
    ):
        print("selftest FAILED: serve_fleet payload did not normalize")
        return 1
    fleet_breach = bench.check_history(
        [{**fleet_record, "value": 2.1}], tolerance
    )
    if not fleet_breach:
        print("selftest FAILED: serve_fleet gate breach (2.1x < 3x) not flagged")
        return 1

    # The compiled-array family: sparse-vs-dense speedup on the array
    # critical path, floored by the payload's min_speedup.
    array_record = bench.bench_record(
        {"schema": "repro.bench.array/v1", "created_unix": 1.0,
         "speedup": 6.2, "min_speedup": 2.0},
        "selftest",
    )
    if (
        array_record is None
        or array_record["metric"] != "speedup"
        or array_record["direction"] != "higher"
        or array_record["limit"] != 2.0
    ):
        print("selftest FAILED: array payload did not normalize")
        return 1
    array_breach = bench.check_history(
        [{**array_record, "value": 1.4}], tolerance
    )
    if not array_breach:
        print("selftest FAILED: array gate breach (1.4x < 2x) not flagged")
        return 1
    print(
        "selftest ok: healthy history passes, planted regressions flagged "
        f"({bad_problems[0]}; {breach[0]}; {fleet_breach[0]}; "
        f"{array_breach[0]})"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[1])
    parser.add_argument("--root", default=str(REPO_ROOT), metavar="DIR",
                        help="directory scanned for BENCH_*.json")
    parser.add_argument("--history",
                        default=str(REPO_ROOT / bench.DEFAULT_HISTORY),
                        metavar="PATH", help="history log location")
    parser.add_argument("--tolerance", type=float, default=0.25, metavar="F",
                        help="allowed fractional drop below the baseline "
                        "median for higher-is-better metrics")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on any regression (CI gate)")
    parser.add_argument("--selftest", action="store_true",
                        help="verify the gate flags a planted regression")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest(args.tolerance)

    added = bench.append_history(collect_records(Path(args.root)), args.history)
    if added:
        print(f"recorded {added} new bench result(s) into {args.history}")
    history = bench.load_history(args.history)
    print(bench.format_history(history, tolerance=args.tolerance))
    if args.check:
        problems = bench.check_history(history, tolerance=args.tolerance)
        if problems:
            print()
            for problem in problems:
                print(f"REGRESSION: {problem}")
            return 1
        print()
        print("no regressions detected")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
