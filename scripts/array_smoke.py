"""CI smoke test for the array compiler: compile, validate, kill, resume.

Exercises the compiled-array behaviours CI must never regress, end to
end and in minutes, not hours:

1. a small compiled column crosses the sparse-MNA threshold and
   ``make_system`` auto-selects the sparse assembler for it;
2. the simulated critical-path read delay agrees with the analytic
   fig11 model within the documented tolerance
   (``ext_array_read.DELAY_TOLERANCE``) on the same geometry;
3. a half-select disturb runs end to end through the real
   ``repro array measure`` CLI with ``--profile``: the victim holds its
   state and the written manifest records ``mna.sparse_selected`` > 0;
4. a real kill-and-resume cycle through the CLI: ``repro array sweep``
   is SIGKILLed once its engine checkpoint shows partial progress, and
   the ``--resume`` rerun replays the finished points and completes the
   remainder, exiting 0.

Manifests and checkpoint files land in ``SMOKE_ARTIFACTS`` (when set)
for CI upload.

Run with ``PYTHONPATH=src python scripts/array_smoke.py``; exits
non-zero on the first violated expectation.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

#: Geometry for the compile + tolerance checks: big enough to cross the
#: sparse threshold, small enough to simulate in seconds.
ROWS, COLUMNS = 16, 4
VDD = 0.8


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}")
    if not condition:
        sys.exit(1)


def cli(*argv: str, env: dict) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=env, cwd=ROOT,
    )


def checkpoint_lines(path: Path) -> int:
    if not path.exists():
        return 0
    return len(path.read_text().splitlines())


def main() -> int:
    from repro.circuit.sparse import DEFAULT_SPARSE_THRESHOLD, HAVE_SPARSE, make_system
    from repro.experiments.designs import proposed_cell, proposed_read_assist
    from repro.experiments.ext_array_read import DELAY_TOLERANCE
    from repro.sram.array import ArrayGeometry
    from repro.sram.compiler import compare_array, compile_array

    artifacts = Path(os.environ.get("SMOKE_ARTIFACTS", ""))
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))

    with tempfile.TemporaryDirectory(prefix="array_smoke_") as tmp:
        outdir = artifacts if artifacts != Path("") else Path(tmp) / "artifacts"
        outdir.mkdir(parents=True, exist_ok=True)

        print(f"1. compile a {ROWS}x{COLUMNS} column, sparse auto-selection")
        cell = proposed_cell()
        compiled = compile_array(
            cell, ArrayGeometry(ROWS, COLUMNS), VDD,
            assist=proposed_read_assist(),
        )
        check(
            compiled.unknown_count >= DEFAULT_SPARSE_THRESHOLD,
            f"{compiled.unknown_count} unknowns cross the "
            f"{DEFAULT_SPARSE_THRESHOLD}-unknown threshold",
        )
        if HAVE_SPARSE:
            system = make_system(compiled.circuit)
            check(
                type(system).__name__ == "SparseMnaSystem",
                f"make_system picked {type(system).__name__}",
            )
        else:
            print("  [skip] scipy absent; dense fallback covered by unit tests")

        print("2. simulated read delay vs analytic fig11 model")
        comp = compare_array(
            cell, ArrayGeometry(ROWS, COLUMNS), VDD,
            assist=proposed_read_assist(),
        )
        ratio = comp.simulated_access_time / comp.analytic_access_time
        check(
            abs(ratio - 1.0) <= DELAY_TOLERANCE,
            f"delay ratio {ratio:.3f} within documented "
            f"+/-{DELAY_TOLERANCE:.0%} tolerance",
        )

        print("3. half-select disturb through the real CLI, with telemetry")
        measure = cli(
            "array", "measure", "--rows", str(ROWS), "--columns", str(COLUMNS),
            "--scenario", "half_select", "--profile",
            "--output-dir", str(outdir), env=env,
        )
        check(measure.returncode == 0, "repro array measure exits 0")
        check("disturb" in measure.stdout, "disturb margin reported")
        manifest_path = outdir / "array_measure_manifest.json"
        check(manifest_path.exists(), f"manifest written ({manifest_path.name})")
        manifest = json.loads(manifest_path.read_text())
        counters = manifest.get("telemetry", {}).get("counters", {})
        sparse_selected = counters.get("mna.sparse_selected", 0)
        check(
            sparse_selected > 0,
            f"mna.sparse_selected = {sparse_selected} in the manifest",
        )

        print("4. SIGKILL a sweep once the checkpoint shows progress")
        sweep_dir = outdir / "sweep"
        checkpoint = sweep_dir / "checkpoints" / "array_sweep.jsonl"
        sweep_args = [
            "array", "sweep", "--rows-list", "4,6,8,12", "--columns", "2",
            "--output-dir", str(sweep_dir),
        ]
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *sweep_args],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, cwd=ROOT,
        )
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            # Outcome lines follow the checkpoint's header line.
            if checkpoint_lines(checkpoint) >= 2:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.05)
        killed = proc.poll() is None
        if killed:
            proc.kill()
        proc.wait()
        check(killed, "sweep was killed mid-flight")
        progress = checkpoint_lines(checkpoint)
        check(progress >= 2, f"checkpoint recorded partial progress ({progress} lines)")

        print("5. --resume replays the finished points, completes the rest")
        resumed = cli(*sweep_args, "--resume", env=env)
        check(resumed.returncode == 0, "resumed sweep exits 0")
        check("resumed" in resumed.stdout, "resume summary printed")
        replayed = 0
        for token in resumed.stdout.split("("):
            if "resumed" in token:
                replayed = int(token.split("resumed")[0].split(",")[-1].strip())
        check(
            replayed >= 1,
            f"{replayed} outcome(s) replayed from the checkpoint",
        )
        check(
            resumed.stdout.count("FAILED") == 0,
            "every sweep point completed after resume",
        )

    print("array smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
