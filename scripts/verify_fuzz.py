"""CLI driver for the differential circuit fuzzer.

Generates random small netlists and cross-checks the optimized SPICE
core (precompiled MNA assembly, baked table kernels, warm starts)
against the retained seed references; see :mod:`repro.verify.fuzz`.
Failures are shrunk to minimal ``.sp`` reproducers under ``--out-dir``.

Run with ``PYTHONPATH=src python scripts/verify_fuzz.py --count 200``;
exits non-zero when any deck fails a cross-check.  The default seed is
fixed so CI runs are reproducible; bump ``--seed`` to explore fresh
decks.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.verify.fuzz import run_fuzz


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="verify_fuzz",
        description="Differential fuzzing of the optimized SPICE core "
        "against the seed reference implementations.",
    )
    parser.add_argument(
        "--count", type=int, default=200, metavar="N",
        help="number of decks to fuzz (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="root seed; deck i depends only on (seed, i) (default: %(default)s)",
    )
    parser.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="dump minimal .sp reproducers for failing decks here",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="skip reproducer minimization (faster triage of a red run)",
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()

    def progress(done: int, total: int, failed: int) -> None:
        if done % 20 == 0 or done == total:
            elapsed = time.perf_counter() - start
            print(
                f"  {done}/{total} decks  {failed} failures  {elapsed:.1f}s",
                flush=True,
            )

    report = run_fuzz(
        args.count,
        root_seed=args.seed,
        out_dir=args.out_dir,
        shrink=not args.no_shrink,
        on_progress=progress,
    )

    audits = ", ".join(f"{k}={n}" for k, n in sorted(report.audits.items()))
    print(
        f"fuzzed {report.count} decks (seed {report.root_seed}): "
        f"{len(report.failures)} failures, "
        f"{report.nonconverged} non-converged solve stages (allowed)"
    )
    print(f"audits: {audits or 'none'}")
    for failure in report.failures:
        where = f" -> {failure.path}" if failure.path else ""
        print(f"FAIL deck {failure.index}: {failure.kind}: {failure.message}{where}")
        print("  minimized reproducer:")
        for line in failure.minimized.strip().splitlines():
            print(f"    {line}")
    return 1 if report.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
