"""CI smoke test for the serve daemon: warm hits, real backfill,
kill-during-backfill resume, SIGTERM drain.

Everything runs through real processes — the daemon is a ``repro
serve start`` subprocess, queries go through the CLI verbs and the
wire protocol — and the kill is a real SIGKILL:

1. ``repro char build`` warms a tiny store (2 proposed-design DRNM
   points);
2. ``repro serve start`` comes up on a unix socket; ``repro serve
   status --json`` sees full coverage;
3. warm queries through ``repro serve query``: an exact point and an
   interpolated midpoint, both served from memory;
4. a cold query triggers a real backfill build and is answered; a
   retry is a warm hit;
5. four concurrent cold queries coalesce into one backfill batch; the
   daemon is SIGKILLed once the batch's engine checkpoint records
   partial progress;
6. a restarted daemon gets the same four queries re-issued: the batch
   coalesces into the same spec, resumes from the checkpoint, and
   ``serve status`` reports ``resumed > 0`` with fewer points
   recomputed than the batch total;
7. SIGTERM drains the daemon: exit code 0, socket removed, final JSON
   + Prometheus metrics snapshots written (into ``SMOKE_ARTIFACTS``
   when set, for CI upload);
8. a 2-shard fleet (``--workers 2 --http-port``) comes up over the
   same store: status sees both shards, queries route to both
   keyspaces — ``(proposed, tt)`` lives on shard 0, ``(proposed, ss)``
   on shard 1 (pinned consistent hash) — and the HTTP adapter answers
   ``/v1/query`` and ``/metrics``;
9. shard 1 is SIGKILLed mid-backfill of an ss-corner batch: the
   survivor keeps answering shard 0's keyspace warm while shard 1's
   keyspace degrades to structured ``shard_down`` errors;
10. shard 1 is restarted by hand (``--shard-index 1`` against the same
    front base address): the re-issued queries coalesce into the same
    spec and resume from the engine checkpoint (``resumed >= 1``);
11. SIGTERM drains the fleet supervisor: shards and front exit
    cleanly, exit code 0.

Run with ``PYTHONPATH=src python scripts/serve_smoke.py``; exits
non-zero on the first violated expectation.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.serve.client import ServeClient, ServeError  # noqa: E402

SPEC = {
    "name": "smoke_serve",
    "designs": ["proposed"],
    "vdds": [0.6, 0.8],
    "metrics": ["drnm"],
}

#: The coalescing batch for the kill/resume phases: slow enough
#: (one real transient sweep each) that SIGKILL lands mid-batch.
COLD_VDDS = [0.45, 0.48, 0.51, 0.54]

COALESCE_S = 1.5


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}")
    if not condition:
        sys.exit(1)


def cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=ROOT,
    )


def start_daemon(spec: Path, store: Path, sock: Path, artifacts: Path):
    # A SIGKILLed daemon leaves its socket file behind; remove it so
    # readiness below means "the NEW daemon is listening".
    sock.unlink(missing_ok=True)
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "start",
         "--spec", str(spec), "--store", str(store), "--socket", str(sock),
         "--coalesce-s", str(COALESCE_S),
         "--metrics-out", str(artifacts / "serve_metrics.json"),
         "--trace-dir", str(artifacts / "serve_trace")],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd=ROOT,
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if sock.exists():
            try:
                with ServeClient(socket_path=sock, timeout_s=5.0) as client:
                    if client.ping():
                        return proc
            except (ConnectionError, OSError):
                pass  # bound but not accepting yet
        if proc.poll() is not None:
            print(proc.stdout.read())
            print(proc.stderr.read())
            check(False, "daemon came up")
        time.sleep(0.02)
    proc.kill()
    check(False, "daemon answered a ping within 60 s")


def backfill_checkpoint_lines(store: Path) -> int:
    lines = 0
    for path in (store / "checkpoints").glob("backfill-*.jsonl"):
        lines += max(0, len(path.read_text().splitlines()) - 1)  # minus header
    return lines


def fire_cold_queries(sock: Path, timeout_s: float = 120.0) -> list:
    """The four coalescing cold queries, concurrently; returns
    responses or exceptions (the kill phase expects failures)."""

    def ask(vdd: float):
        try:
            with ServeClient(socket_path=sock, timeout_s=timeout_s) as client:
                return client.query("drnm", design="proposed", vdd=vdd)
        except (ServeError, ConnectionError, OSError) as exc:
            return exc

    with ThreadPoolExecutor(max_workers=len(COLD_VDDS)) as pool:
        return list(pool.map(ask, COLD_VDDS))


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve_smoke_") as tmp:
        tmp_path = Path(tmp)
        store = tmp_path / "char"
        sock = tmp_path / "serve.sock"
        spec = tmp_path / "smoke_serve.json"
        spec.write_text(json.dumps(SPEC))
        artifacts = Path(os.environ.get("SMOKE_ARTIFACTS", tmp_path / "artifacts"))
        artifacts.mkdir(parents=True, exist_ok=True)

        print("1. warm the store with a real build")
        built = cli("char", "build", "--spec", str(spec), "--store", str(store))
        check(built.returncode == 0, "seed build exits 0")

        print("2. daemon up, status sees full coverage")
        daemon = start_daemon(spec, store, sock, artifacts)
        status = cli("serve", "status", "--socket", str(sock), "--json")
        check(status.returncode == 0, "serve status exits 0")
        payload = json.loads(status.stdout)
        check(payload["coverage"][0]["present"] == 2, "2/2 entries served")

        print("3. warm queries from memory")
        exact = cli("serve", "query", "drnm", "--design", "proposed",
                    "--vdd", "0.8", "--socket", str(sock), "--json")
        check(exact.returncode == 0, "exact query exits 0")
        response = json.loads(exact.stdout)
        check(response["served"] == "memory", "exact point served from memory")
        check(response["result"]["method"] == "exact", "exact method")

        mid = cli("serve", "query", "drnm", "--design", "proposed",
                  "--vdd", "0.7", "--socket", str(sock), "--json")
        response = json.loads(mid.stdout)
        check(response["result"]["method"] == "linear", "midpoint interpolated")

        print("4. a cold query backfills, then stays warm")
        cold = cli("serve", "query", "drnm", "--design", "proposed",
                   "--vdd", "0.55", "--socket", str(sock), "--json")
        check(cold.returncode == 0, "cold query exits 0")
        response = json.loads(cold.stdout)
        check(response["served"] == "backfill", "cold point served via backfill")
        retry = cli("serve", "query", "drnm", "--design", "proposed",
                    "--vdd", "0.55", "--socket", str(sock), "--json")
        response = json.loads(retry.stdout)
        check(response["served"] == "memory", "retry is a warm hit")

        print("5. SIGKILL the daemon mid-backfill")
        with ThreadPoolExecutor(max_workers=1) as firer:
            doomed = firer.submit(fire_cold_queries, sock, 600.0)
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if backfill_checkpoint_lines(store) >= 2:
                    break
                time.sleep(0.02)
            progress = backfill_checkpoint_lines(store)
            check(
                0 < progress < len(COLD_VDDS),
                f"checkpoint shows partial progress ({progress}/{len(COLD_VDDS)})",
            )
            daemon.send_signal(signal.SIGKILL)
            daemon.wait(timeout=30)
            doomed.result(timeout=120)  # clients fail; only reap them

        print("6. restart, re-issue the same misses, resume from the checkpoint")
        daemon = start_daemon(spec, store, sock, artifacts)
        answers = fire_cold_queries(sock)
        for vdd, answer in zip(COLD_VDDS, answers):
            check(
                isinstance(answer, dict) and answer["served"] == "backfill",
                f"re-issued {vdd:g} V query answered via backfill",
            )
        status = json.loads(
            cli("serve", "status", "--socket", str(sock), "--json").stdout
        )
        reports = status["backfill"]["last_reports"] or []
        resumed = sum(r["resumed"] for r in reports)
        computed = sum(r["computed"] for r in reports)  # includes replays
        fresh = computed - resumed
        check(
            resumed >= 1,
            f"resume replayed checkpointed points (resumed={resumed})",
        )
        check(
            fresh < len(COLD_VDDS),
            f"completed points were not recomputed "
            f"({fresh}/{len(COLD_VDDS)} freshly simulated)",
        )
        check(
            computed + sum(r["reused"] for r in reports) >= len(COLD_VDDS),
            "every missed point landed",
        )

        print("7. SIGTERM drains cleanly and writes the metrics snapshot")
        daemon.send_signal(signal.SIGTERM)
        out, err = daemon.communicate(timeout=60)
        check(daemon.returncode == 0, f"daemon exits 0 (stderr: {err.strip()!r})")
        check("drained and stopped" in out, "drain message printed")
        check(not sock.exists(), "socket removed on shutdown")
        metrics_path = artifacts / "serve_metrics.json"
        check(metrics_path.exists(), "final JSON metrics snapshot written")
        metrics = json.loads(metrics_path.read_text())
        counters = metrics["metrics"]["counters"]
        check(counters.get("serve.requests", 0) >= 5, "request counters recorded")
        check(
            metrics_path.with_suffix(".prom").exists(),
            "Prometheus metrics snapshot written",
        )

        fleet_phase(spec, store, tmp_path)

    print("serve smoke: all checks passed")
    return 0


def fleet_ss_queries(sock: Path, timeout_s: float = 600.0) -> list:
    """Concurrent cold queries on shard 1's keyspace (ss corner)."""

    def ask(vdd: float):
        try:
            with ServeClient(socket_path=sock, timeout_s=timeout_s) as client:
                return client.query("drnm", design="proposed", vdd=vdd,
                                    corner="ss")
        except (ServeError, ConnectionError, OSError) as exc:
            return exc

    with ThreadPoolExecutor(max_workers=len(COLD_VDDS)) as pool:
        return list(pool.map(ask, COLD_VDDS))


def fleet_phase(spec: Path, store: Path, tmp_path: Path) -> None:
    from repro.serve.shard import shard_socket_path

    sock = tmp_path / "fleet.sock"
    http_port = 18080 + (os.getpid() % 1000)
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))

    print("8. 2-shard fleet up: routed queries and the HTTP adapter")
    supervisor = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "start",
         "--spec", str(spec), "--store", str(store), "--socket", str(sock),
         "--workers", "2", "--http-port", str(http_port),
         "--coalesce-s", str(COALESCE_S)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd=ROOT,
    )
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if sock.exists():
                try:
                    with ServeClient(socket_path=sock, timeout_s=5.0) as probe:
                        if probe.ping():
                            break
                except (ConnectionError, OSError):
                    pass
            if supervisor.poll() is not None:
                check(False, "fleet supervisor stays up")
            time.sleep(0.05)
        else:
            supervisor.kill()
            check(False, "fleet front answered a ping within 120 s")

        with ServeClient(socket_path=sock, timeout_s=60.0) as client:
            status = client.status()
            check(status.get("fleet") is True, "status reports a fleet")
            check(status["shards_up"] == 2, "both shards up")
            identities = [s["status"]["shard"]["index"] for s in status["shards"]]
            check(identities == [0, 1], "shards know their slots")
            shard1_pid = status["shards"][1]["status"]["pid"]

            warm = client.query("drnm", design="proposed", vdd=0.8)
            check(warm["served"] == "memory", "tt keyspace (shard 0) warm hit")
            topology = client.map()
            check(topology["fleet"] and topology["workers"] == 2,
                  "map op describes the ring")

        import urllib.request

        with urllib.request.urlopen(
            f"http://127.0.0.1:{http_port}/v1/query?"
            "metric=drnm&design=proposed&vdd=0.8", timeout=30
        ) as http_response:
            body = json.loads(http_response.read())
            check(body["ok"] and body["served"] == "memory",
                  "HTTP /v1/query answers from memory")
        with urllib.request.urlopen(
            f"http://127.0.0.1:{http_port}/metrics", timeout=30
        ) as http_response:
            check(b"repro_serve_front_requests_total" in http_response.read(),
                  "HTTP /metrics exposes fleet counters")

        print("9. SIGKILL shard 1 mid-backfill; survivor keeps serving")
        checkpoint_base = backfill_checkpoint_lines(store)
        with ThreadPoolExecutor(max_workers=1) as firer:
            doomed = firer.submit(fleet_ss_queries, sock)
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if backfill_checkpoint_lines(store) >= checkpoint_base + 2:
                    break
                time.sleep(0.02)
            progress = backfill_checkpoint_lines(store) - checkpoint_base
            check(
                0 < progress < len(COLD_VDDS),
                f"shard 1 checkpoint shows partial progress "
                f"({progress}/{len(COLD_VDDS)})",
            )
            os.kill(shard1_pid, signal.SIGKILL)
            doomed.result(timeout=120)  # clients fail; only reap them

        with ServeClient(socket_path=sock, timeout_s=60.0) as client:
            warm = client.query("drnm", design="proposed", vdd=0.8)
            check(warm["served"] == "memory",
                  "survivor keyspace still answers warm")
            try:
                client.query("drnm", design="proposed", vdd=0.8, corner="ss")
                check(False, "dead keyspace must error")
            except ServeError as exc:
                check(exc.code == "shard_down",
                      f"dead keyspace answers shard_down (got {exc.code})")
            status = client.status()
            check(status["shards_up"] == 1, "status reports the partial fleet")

        print("10. restart shard 1 by hand; resume from the checkpoint")
        shard_sock = shard_socket_path(sock, 1)
        shard_sock.unlink(missing_ok=True)
        restarted = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "start",
             "--spec", str(spec), "--store", str(store), "--socket", str(sock),
             "--workers", "2", "--shard-index", "1",
             "--coalesce-s", str(COALESCE_S)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env, cwd=ROOT,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if shard_sock.exists():
                    try:
                        with ServeClient(socket_path=shard_sock,
                                         timeout_s=5.0) as probe:
                            if probe.ping():
                                break
                    except (ConnectionError, OSError):
                        pass
                if restarted.poll() is not None:
                    check(False, "restarted shard stays up")
                time.sleep(0.05)
            else:
                check(False, "restarted shard answered a ping within 60 s")

            answers = fleet_ss_queries(sock)
            for vdd, answer in zip(COLD_VDDS, answers):
                check(
                    isinstance(answer, dict) and answer["served"] == "backfill",
                    f"re-issued ss {vdd:g} V query answered via backfill",
                )
            with ServeClient(socket_path=shard_sock, timeout_s=30.0) as client:
                shard_status = client.status()
            reports = shard_status["backfill"]["last_reports"] or []
            resumed = sum(r["resumed"] for r in reports)
            check(resumed >= 1,
                  f"restarted shard resumed from the checkpoint "
                  f"(resumed={resumed})")

            print("11. SIGTERM drains the fleet")
            supervisor.send_signal(signal.SIGTERM)
            out, err = supervisor.communicate(timeout=90)
            check(supervisor.returncode == 0,
                  f"fleet supervisor exits 0 (stderr: {err.strip()!r})")
            check("fleet drained and stopped" in out, "fleet drain message")
            check(not sock.exists(), "front socket removed on shutdown")
        finally:
            if restarted.poll() is None:
                restarted.terminate()
                try:
                    restarted.wait(timeout=60)
                except subprocess.TimeoutExpired:
                    restarted.kill()
                    restarted.wait()
    finally:
        if supervisor.poll() is None:
            supervisor.kill()
            supervisor.wait()


if __name__ == "__main__":
    sys.exit(main())
