"""CI smoke test for the serve daemon: warm hits, real backfill,
kill-during-backfill resume, SIGTERM drain.

Everything runs through real processes — the daemon is a ``repro
serve start`` subprocess, queries go through the CLI verbs and the
wire protocol — and the kill is a real SIGKILL:

1. ``repro char build`` warms a tiny store (2 proposed-design DRNM
   points);
2. ``repro serve start`` comes up on a unix socket; ``repro serve
   status --json`` sees full coverage;
3. warm queries through ``repro serve query``: an exact point and an
   interpolated midpoint, both served from memory;
4. a cold query triggers a real backfill build and is answered; a
   retry is a warm hit;
5. four concurrent cold queries coalesce into one backfill batch; the
   daemon is SIGKILLed once the batch's engine checkpoint records
   partial progress;
6. a restarted daemon gets the same four queries re-issued: the batch
   coalesces into the same spec, resumes from the checkpoint, and
   ``serve status`` reports ``resumed > 0`` with fewer points
   recomputed than the batch total;
7. SIGTERM drains the daemon: exit code 0, socket removed, final JSON
   + Prometheus metrics snapshots written (into ``SMOKE_ARTIFACTS``
   when set, for CI upload).

Run with ``PYTHONPATH=src python scripts/serve_smoke.py``; exits
non-zero on the first violated expectation.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.serve.client import ServeClient, ServeError  # noqa: E402

SPEC = {
    "name": "smoke_serve",
    "designs": ["proposed"],
    "vdds": [0.6, 0.8],
    "metrics": ["drnm"],
}

#: The coalescing batch for the kill/resume phases: slow enough
#: (one real transient sweep each) that SIGKILL lands mid-batch.
COLD_VDDS = [0.45, 0.48, 0.51, 0.54]

COALESCE_S = 1.5


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}")
    if not condition:
        sys.exit(1)


def cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=ROOT,
    )


def start_daemon(spec: Path, store: Path, sock: Path, artifacts: Path):
    # A SIGKILLed daemon leaves its socket file behind; remove it so
    # readiness below means "the NEW daemon is listening".
    sock.unlink(missing_ok=True)
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "start",
         "--spec", str(spec), "--store", str(store), "--socket", str(sock),
         "--coalesce-s", str(COALESCE_S),
         "--metrics-out", str(artifacts / "serve_metrics.json"),
         "--trace-dir", str(artifacts / "serve_trace")],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd=ROOT,
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if sock.exists():
            try:
                with ServeClient(socket_path=sock, timeout_s=5.0) as client:
                    if client.ping():
                        return proc
            except (ConnectionError, OSError):
                pass  # bound but not accepting yet
        if proc.poll() is not None:
            print(proc.stdout.read())
            print(proc.stderr.read())
            check(False, "daemon came up")
        time.sleep(0.02)
    proc.kill()
    check(False, "daemon answered a ping within 60 s")


def backfill_checkpoint_lines(store: Path) -> int:
    lines = 0
    for path in (store / "checkpoints").glob("backfill-*.jsonl"):
        lines += max(0, len(path.read_text().splitlines()) - 1)  # minus header
    return lines


def fire_cold_queries(sock: Path, timeout_s: float = 120.0) -> list:
    """The four coalescing cold queries, concurrently; returns
    responses or exceptions (the kill phase expects failures)."""

    def ask(vdd: float):
        try:
            with ServeClient(socket_path=sock, timeout_s=timeout_s) as client:
                return client.query("drnm", design="proposed", vdd=vdd)
        except (ServeError, ConnectionError, OSError) as exc:
            return exc

    with ThreadPoolExecutor(max_workers=len(COLD_VDDS)) as pool:
        return list(pool.map(ask, COLD_VDDS))


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve_smoke_") as tmp:
        tmp_path = Path(tmp)
        store = tmp_path / "char"
        sock = tmp_path / "serve.sock"
        spec = tmp_path / "smoke_serve.json"
        spec.write_text(json.dumps(SPEC))
        artifacts = Path(os.environ.get("SMOKE_ARTIFACTS", tmp_path / "artifacts"))
        artifacts.mkdir(parents=True, exist_ok=True)

        print("1. warm the store with a real build")
        built = cli("char", "build", "--spec", str(spec), "--store", str(store))
        check(built.returncode == 0, "seed build exits 0")

        print("2. daemon up, status sees full coverage")
        daemon = start_daemon(spec, store, sock, artifacts)
        status = cli("serve", "status", "--socket", str(sock), "--json")
        check(status.returncode == 0, "serve status exits 0")
        payload = json.loads(status.stdout)
        check(payload["coverage"][0]["present"] == 2, "2/2 entries served")

        print("3. warm queries from memory")
        exact = cli("serve", "query", "drnm", "--design", "proposed",
                    "--vdd", "0.8", "--socket", str(sock), "--json")
        check(exact.returncode == 0, "exact query exits 0")
        response = json.loads(exact.stdout)
        check(response["served"] == "memory", "exact point served from memory")
        check(response["result"]["method"] == "exact", "exact method")

        mid = cli("serve", "query", "drnm", "--design", "proposed",
                  "--vdd", "0.7", "--socket", str(sock), "--json")
        response = json.loads(mid.stdout)
        check(response["result"]["method"] == "linear", "midpoint interpolated")

        print("4. a cold query backfills, then stays warm")
        cold = cli("serve", "query", "drnm", "--design", "proposed",
                   "--vdd", "0.55", "--socket", str(sock), "--json")
        check(cold.returncode == 0, "cold query exits 0")
        response = json.loads(cold.stdout)
        check(response["served"] == "backfill", "cold point served via backfill")
        retry = cli("serve", "query", "drnm", "--design", "proposed",
                    "--vdd", "0.55", "--socket", str(sock), "--json")
        response = json.loads(retry.stdout)
        check(response["served"] == "memory", "retry is a warm hit")

        print("5. SIGKILL the daemon mid-backfill")
        with ThreadPoolExecutor(max_workers=1) as firer:
            doomed = firer.submit(fire_cold_queries, sock, 600.0)
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if backfill_checkpoint_lines(store) >= 2:
                    break
                time.sleep(0.02)
            progress = backfill_checkpoint_lines(store)
            check(
                0 < progress < len(COLD_VDDS),
                f"checkpoint shows partial progress ({progress}/{len(COLD_VDDS)})",
            )
            daemon.send_signal(signal.SIGKILL)
            daemon.wait(timeout=30)
            doomed.result(timeout=120)  # clients fail; only reap them

        print("6. restart, re-issue the same misses, resume from the checkpoint")
        daemon = start_daemon(spec, store, sock, artifacts)
        answers = fire_cold_queries(sock)
        for vdd, answer in zip(COLD_VDDS, answers):
            check(
                isinstance(answer, dict) and answer["served"] == "backfill",
                f"re-issued {vdd:g} V query answered via backfill",
            )
        status = json.loads(
            cli("serve", "status", "--socket", str(sock), "--json").stdout
        )
        reports = status["backfill"]["last_reports"] or []
        resumed = sum(r["resumed"] for r in reports)
        computed = sum(r["computed"] for r in reports)  # includes replays
        fresh = computed - resumed
        check(
            resumed >= 1,
            f"resume replayed checkpointed points (resumed={resumed})",
        )
        check(
            fresh < len(COLD_VDDS),
            f"completed points were not recomputed "
            f"({fresh}/{len(COLD_VDDS)} freshly simulated)",
        )
        check(
            computed + sum(r["reused"] for r in reports) >= len(COLD_VDDS),
            "every missed point landed",
        )

        print("7. SIGTERM drains cleanly and writes the metrics snapshot")
        daemon.send_signal(signal.SIGTERM)
        out, err = daemon.communicate(timeout=60)
        check(daemon.returncode == 0, f"daemon exits 0 (stderr: {err.strip()!r})")
        check("drained and stopped" in out, "drain message printed")
        check(not sock.exists(), "socket removed on shutdown")
        metrics_path = artifacts / "serve_metrics.json"
        check(metrics_path.exists(), "final JSON metrics snapshot written")
        metrics = json.loads(metrics_path.read_text())
        counters = metrics["metrics"]["counters"]
        check(counters.get("serve.requests", 0) >= 5, "request counters recorded")
        check(
            metrics_path.with_suffix(".prom").exists(),
            "Prometheus metrics snapshot written",
        )

    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
