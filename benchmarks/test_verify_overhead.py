"""Guard: the disabled-verification audit hooks cost < 3 %.

The audit hooks sit on the hottest accepted-result paths — one
``verify.active()`` (or direct ``verify._session`` read) per converged
Newton solve, per accepted transient step, and per table evaluation.
Like the telemetry guard benchmark next door, this counts the guard
invocations a representative workload performs, measures the
per-invocation cost, and asserts the product stays under 3 % of the
workload's wall time — the contract that lets verification ship
enabled-by-flag without taxing production sweeps.

Also emits ``BENCH_verify.json`` at the repo root: the disabled-guard
numbers plus the measured *enabled* audit cost (informational — audits
re-run reference assemblies, so enabled runs are expected to be several
times slower).

Run with ``PYTHONPATH=src python -m pytest -q
benchmarks/test_verify_overhead.py`` (no pytest-benchmark needed).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.transient import simulate_transient
from repro.devices.library import tfet_device
from repro.telemetry import core as telemetry
from repro.verify import core as verify

OVERHEAD_BUDGET = 0.03
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_verify.json"


def latch_circuit() -> Circuit:
    device = tfet_device()
    c = Circuit()
    c.add_voltage_source("vdd", "vdd", "0", 0.8)
    for out, inp, tag in (("q", "qb", "l"), ("qb", "q", "r")):
        c.add_transistor(f"mp{tag}", out, inp, "vdd", device, "p", 0.1)
        c.add_transistor(f"mn{tag}", out, inp, "0", device, "n", 0.1)
        c.add_capacitor(out, "0", 2e-16)
    return c


def workload() -> None:
    simulate_transient(
        latch_circuit(), 2e-9, initial_conditions={"q": 0.8, "qb": 0.0}
    )


def timed(fn, repeats: int = 3) -> float:
    """Best-of-N wall time (min is the standard noise-robust estimate)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def count_guard_invocations() -> int:
    """Guard reads the disabled path performs for one workload.

    One guard per converged Newton solution (the KCL hook), one per
    accepted transient step (the charge hook), one per table
    evaluation (the spot-check hook) — counted from the deterministic
    run's telemetry, exactly as the telemetry benchmark does.
    """
    with telemetry.enabled() as tel:
        workload()
        c = dict(tel.counters)
    return (
        c.get("newton.solves", 0)
        + c.get("transient.steps_accepted", 0)
        + c.get("tables.evals", 0)
    )


def test_disabled_verify_overhead_under_budget():
    assert verify.active() is None, "verification must be off by default"

    workload()  # warm the device-card cache and the allocator
    t_work = timed(workload)
    n_guards = count_guard_invocations()
    assert n_guards > 100, "workload too trivial to measure the guard against"

    loops = max(n_guards, 10_000)
    start = time.perf_counter()
    for _ in range(loops):
        verify.active()
    per_guard = (time.perf_counter() - start) / loops

    guard_cost = per_guard * n_guards
    overhead = guard_cost / t_work
    print(
        f"\nworkload {t_work * 1e3:.1f} ms, {n_guards} guards "
        f"x {per_guard * 1e9:.0f} ns = {guard_cost * 1e6:.1f} us "
        f"({overhead * 100:.3f} % overhead)"
    )
    assert overhead < OVERHEAD_BUDGET

    _emit_bench(t_work, n_guards, per_guard, overhead)


def test_disabled_path_audits_nothing():
    session = verify.VerifySession()
    workload()
    assert verify.active() is None
    assert session.audits == {} and session.violations == []


def _enabled_workload_wall() -> tuple[float, dict[str, int]]:
    with verify.enabled() as session:
        wall = timed(workload, repeats=1)
        return wall, dict(session.audits)


def _emit_bench(t_work, n_guards, per_guard, overhead) -> None:
    enabled_wall, audits = _enabled_workload_wall()
    payload = {
        "schema": "repro.bench.verify/v1",
        "created_unix": time.time(),
        "disabled_overhead_guard": {
            "guard_invocations": n_guards,
            "guard_cost_s_per_call": per_guard,
            "workload_wall_s": t_work,
            "overhead_fraction": overhead,
            "budget_fraction": OVERHEAD_BUDGET,
        },
        "enabled_audit_cost": {
            "workload_wall_s": enabled_wall,
            "slowdown_vs_disabled": enabled_wall / t_work,
            "audits": audits,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2))


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
