"""Guard: the disabled-telemetry instrumentation path costs < 3 %.

The SPICE core is instrumented at function granularity — one
``telemetry.active()`` guard per Newton solve, DC solve, transient
simulation, and table evaluation (per-iteration statistics are
aggregated locally and recorded once per call).  This benchmark counts
those guard invocations for a representative workload (a bistable TFET
latch transient), measures the per-invocation cost of the guard, and
asserts the product stays under 3 % of the workload's wall time.

It also emits ``BENCH_telemetry.json`` at the repo root — wall time per
experiment id for the cheap experiments plus the guard numbers — to
seed the performance trajectory for future PRs.

Run with ``PYTHONPATH=src python -m pytest -q
benchmarks/test_telemetry_overhead.py`` (no pytest-benchmark needed).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.transient import simulate_transient
from repro.devices.library import tfet_device
from repro.experiments.runner import run_experiment
from repro.telemetry import core as telemetry

OVERHEAD_BUDGET = 0.03
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_telemetry.json"
CHEAP_EXPERIMENTS = ("tab_area", "fig02")


def latch_circuit() -> Circuit:
    device = tfet_device()
    c = Circuit()
    c.add_voltage_source("vdd", "vdd", "0", 0.8)
    for out, inp, tag in (("q", "qb", "l"), ("qb", "q", "r")):
        c.add_transistor(f"mp{tag}", out, inp, "vdd", device, "p", 0.1)
        c.add_transistor(f"mn{tag}", out, inp, "0", device, "n", 0.1)
        c.add_capacitor(out, "0", 2e-16)
    return c


def workload() -> None:
    simulate_transient(
        latch_circuit(), 2e-9, initial_conditions={"q": 0.8, "qb": 0.0}
    )


def timed(fn, repeats: int = 3) -> float:
    """Best-of-N wall time (min is the standard noise-robust estimate)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def count_guard_invocations() -> int:
    """Guard checks the disabled path would perform for one workload.

    Each counter below corresponds to one function entry that calls
    ``telemetry.active()``; the enabled-session counters therefore give
    the exact disabled-path guard count for the same deterministic run.
    """
    with telemetry.enabled() as tel:
        workload()
        c = dict(tel.counters)
    return (
        c.get("newton.solves", 0)
        + c.get("newton.failures", 0)
        + c.get("dcop.solves", 0)
        + c.get("transient.simulations", 0)
        + c.get("tables.evals", 0)
        + c.get("tables.builds", 0)
    )


def test_disabled_telemetry_overhead_under_budget():
    assert telemetry.active() is None, "telemetry must be off by default"

    workload()  # warm the device-card cache and the allocator
    t_work = timed(workload)
    n_guards = count_guard_invocations()
    assert n_guards > 100, "workload too trivial to measure the guard against"

    loops = max(n_guards, 10_000)
    start = time.perf_counter()
    for _ in range(loops):
        telemetry.active()
    per_guard = (time.perf_counter() - start) / loops

    guard_cost = per_guard * n_guards
    overhead = guard_cost / t_work
    print(
        f"\nworkload {t_work * 1e3:.1f} ms, {n_guards} guards "
        f"x {per_guard * 1e9:.0f} ns = {guard_cost * 1e6:.1f} us "
        f"({overhead * 100:.3f} % overhead)"
    )
    assert overhead < OVERHEAD_BUDGET

    _emit_bench(t_work, n_guards, per_guard, overhead)


def test_disabled_path_records_nothing():
    session = telemetry.TelemetrySession()
    workload()
    assert telemetry.active() is None
    assert session.counters == {} and session.events == []


def _emit_bench(t_work, n_guards, per_guard, overhead) -> None:
    experiments = {}
    for experiment_id in CHEAP_EXPERIMENTS:
        start = time.perf_counter()
        run_experiment(experiment_id)
        experiments[experiment_id] = time.perf_counter() - start
    experiments["synthetic_latch_transient"] = t_work
    payload = {
        "schema": "repro.bench.telemetry/v1",
        "created_unix": time.time(),
        "wall_time_s_by_experiment": experiments,
        "disabled_overhead_guard": {
            "guard_invocations": n_guards,
            "guard_cost_s_per_call": per_guard,
            "workload_wall_s": t_work,
            "overhead_fraction": overhead,
            "budget_fraction": OVERHEAD_BUDGET,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2))


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
