"""Benchmark: regenerate Fig. 4 (DRNM and WL_crit vs beta)."""

import math

from repro.experiments import fig04_cell_stability

BETAS = (0.4, 0.6, 0.8, 1.0, 1.5, 2.0)


def test_fig04_cell_stability(run_once):
    result = run_once(fig04_cell_stability.run, betas=BETAS)

    # Inward nTFET: unwritable at every beta.
    assert all(math.isinf(v) for v in result.column("WLcrit innTFET (ps)"))

    # Inward pTFET: writable at small beta, diverging just past 1.
    wl_p = result.column("WLcrit inpTFET (ps)")
    assert math.isfinite(wl_p[0]) and math.isfinite(wl_p[1])
    assert math.isinf(wl_p[-1])
    finite = [v for v in wl_p if math.isfinite(v)]
    assert finite == sorted(finite)  # rising steeply with beta

    # CMOS: flat, fast, always writable.
    wl_c = result.column("WLcrit CMOS (ps)")
    assert all(math.isfinite(v) for v in wl_c)
    assert max(wl_c) < 50 * min(wl_c)

    # DRNM rises with beta; CMOS leads at small beta.
    drnm_p = result.column("DRNM inpTFET (mV)")
    assert drnm_p == sorted(drnm_p)
    assert result.column("DRNM CMOS (mV)")[0] > drnm_p[0]
