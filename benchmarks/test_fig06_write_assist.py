"""Benchmark: regenerate Fig. 6(e) (write-assist techniques vs beta)."""

import math

from repro.experiments import fig06_write_assist

BETAS = (1.2, 1.8, 2.4, 3.0)


def test_fig06_write_assist(run_once):
    result = run_once(fig06_write_assist.run, betas=BETAS)

    # Without assist the beta > 1 cell cannot be written.
    assert all(math.isinf(v) for v in result.column("no assist"))

    # Access-strengthening assists (wordline lowering / bitline raising)
    # win at low beta ...
    for name in ("wl_lowering", "bl_raising"):
        assert result.column(name)[0] < result.column("vgnd_raising")[0]

    # ... but the rail technique takes over by beta = 3 (the paper's
    # crossover, where wl/bl fail outright and the rails survive).
    rail_end = result.column("vgnd_raising")[-1]
    for name in ("wl_lowering", "bl_raising"):
        end = result.column(name)[-1]
        assert math.isinf(end) or rail_end <= end

    # WL_crit degrades monotonically with beta for every finite series.
    for name in ("vgnd_raising", "wl_lowering", "bl_raising"):
        finite = [v for v in result.column(name) if math.isfinite(v)]
        assert finite == sorted(finite)
