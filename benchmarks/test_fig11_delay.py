"""Benchmark: regenerate Fig. 11 (write/read delay vs V_DD)."""

import math

from repro.experiments import fig11_delay

VDDS = (0.5, 0.6, 0.7, 0.8, 0.9)


def test_fig11_delay(run_once):
    result = run_once(fig11_delay.run, vdds=VDDS)
    h = result.header

    for row in result.rows:
        # Paper: the CMOS cell has the smallest write delay over
        # (almost) every V_DD thanks to bidirectional conduction.
        cmos_write = row[h.index("write CMOS")]
        for col in ("write proposed", "write asym", "write 7T"):
            assert cmos_write < row[h.index(col)]
        # Reads develop at every V_DD; writes complete from 0.7 V up
        # (the unassisted TFET write falls off a cliff at 0.5 V in this
        # reproduction — see EXPERIMENTS.md; the paper's Fig. 11 also
        # shows the proposed cell losing its write advantage there).
        for col in h[1:]:
            if col.startswith("read") or row[0] >= 0.7:
                assert math.isfinite(row[h.index(col)]), (row[0], col)

    # Delays improve monotonically with supply for the proposed cell.
    writes = result.column("write proposed")
    reads = result.column("read proposed")
    assert writes == sorted(writes, reverse=True)
    assert reads == sorted(reads, reverse=True)
