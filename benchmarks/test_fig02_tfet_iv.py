"""Benchmark: regenerate Fig. 2 (TFET I-V characteristics)."""

import pytest

from repro.experiments import fig02_tfet_iv


def test_fig02_tfet_iv(run_once):
    result = run_once(fig02_tfet_iv.run)
    forward = result.column("nTFET fwd @vds=+1V (A/um)")
    assert forward[0] == pytest.approx(1e-17, rel=1e-3)
    assert forward[-1] == pytest.approx(1e-4, rel=1e-3)
    deep = result.column("nTFET rev @vds=-1V (A/um)")
    assert max(deep) / min(deep) < 1.2
