"""Benchmark: regenerate Fig. 12 (WL_crit and DRNM vs V_DD)."""

import math

from repro.experiments import fig12_margins

VDDS = (0.5, 0.6, 0.7, 0.8, 0.9)


def test_fig12_margins(run_once):
    result = run_once(fig12_margins.run, vdds=VDDS)
    h = result.header

    for row in result.rows:
        # Paper: all TFET SRAMs have larger WL_crit than the CMOS cell
        # (unidirectional conduction), and the proposed cell has the
        # smallest WL_crit among the TFET cells.
        cmos = row[h.index("WLcrit CMOS")]
        proposed = row[h.index("WLcrit proposed")]
        seven = row[h.index("WLcrit 7T")]
        assert proposed > cmos and seven > cmos
        if math.isfinite(proposed) and math.isfinite(seven):
            assert proposed < seven

    # Paper: below 0.7 V the assisted proposed cell has the highest DRNM.
    for row in result.rows:
        if row[0] < 0.7:
            best = row[h.index("DRNM proposed+RA")]
            for col in ("DRNM CMOS", "DRNM asym", "DRNM 7T"):
                assert best > row[h.index(col)]
