"""Guard: warm characterization rebuilds must be at least 5x faster.

Builds a small grid cold (every point simulated), then rebuilds the
same spec against the same store.  The second build must simulate
nothing (``computed == 0``, everything served from the index) and
finish at least ``MIN_SPEEDUP`` times faster than the cold build —
the whole point of the content-addressed store is that re-running a
characterization campaign costs index lookups, not SPICE time.

Emits ``BENCH_char.json`` at the repo root with both wall times, the
speedup, and the point count.

Run with ``PYTHONPATH=src python -m pytest -q -s
benchmarks/test_char_store.py`` (no pytest-benchmark needed).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.char import CharSpec, CharStore, build_grid

MIN_SPEEDUP = 5.0
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_char.json"

SPEC = CharSpec(
    name="bench",
    designs=("cmos", "proposed"),
    vdds=(0.6, 0.8),
    metrics=("drnm", "hold_power"),
)


def timed_build(store: CharStore):
    start = time.perf_counter()
    report = build_grid(SPEC, store)
    wall = time.perf_counter() - start
    assert report.failed == 0, report.failures
    return wall, report


def test_warm_rebuild_speedup(tmp_path):
    store = CharStore(tmp_path / "char")

    cold_wall, cold = timed_build(store)
    assert cold.computed == cold.total, "cold build must simulate every point"

    warm_wall, warm = timed_build(store)
    assert warm.computed == 0, "warm rebuild must simulate nothing"
    assert warm.reused == warm.total

    speedup = cold_wall / warm_wall
    print(
        f"\n[{cold.total} points] cold {cold_wall:.2f} s, "
        f"warm {warm_wall:.3f} s -> {speedup:.1f}x"
    )

    BENCH_PATH.write_text(
        json.dumps(
            {
                "schema": "repro.bench.char/v1",
                "created_unix": time.time(),
                "point_count": cold.total,
                "cold_wall_s": cold_wall,
                "warm_wall_s": warm_wall,
                "warm_computed": warm.computed,
                "speedup": speedup,
                "min_speedup": MIN_SPEEDUP,
            },
            indent=2,
        )
    )
    assert speedup >= MIN_SPEEDUP


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
