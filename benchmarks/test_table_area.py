"""Benchmark: regenerate the cell-area comparison (Section 5)."""

import pytest

from repro.experiments import table_area


def test_table_area(run_once):
    result = run_once(table_area.run)
    ratios = {row[0]: row[3] for row in result.rows}
    counts = {row[0]: row[1] for row in result.rows}

    assert counts["7T TFET"] == 7
    # Paper: the 7T's extra read port costs an unavoidable 10-15 %.
    assert 1.08 < ratios["7T TFET"] < 1.18
    # The three 6T cells share the minimum area class.
    assert ratios["proposed 6T inpTFET"] == pytest.approx(1.0)
    assert ratios["asym 6T TFET"] == pytest.approx(1.0, abs=0.1)
    assert ratios["6T CMOS"] == pytest.approx(1.0, abs=0.15)
