"""Gate: stacked-batch Newton is >= 5x the scalar path on MC work.

The workload is a 64-sample Monte-Carlo DRNM study of the read-assist
design point (beta = 0.6) — the fig10 inner loop.  Two configurations
run in this process on identical per-sample netlists:

* **scalar** — one :func:`simulate_transient` per sample, the seed's
  Monte-Carlo shape (and still the retry/verify fallback path);
* **batched** — all 64 samples as one stacked Newton batch
  (:mod:`repro.circuit.batch`): a single generator-driven control loop
  whose per-tick assembly stamps every member's matrix from shared
  index arrays.

Values are asserted bit-identical between the two paths before timing
— the speedup only counts if the batch is exact.  The run emits
``BENCH_spice_batch.json`` at the repo root for the CI artifact trail
and the ``repro bench`` history gate.

Run with ``PYTHONPATH=src python -m pytest -q benchmarks/test_spice_batch.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.montecarlo import varied_device_set
from repro.analysis.stability import SETTLE_TIME
from repro.circuit.batch import BatchMember, run_generators, transient_gen
from repro.circuit.transient import simulate_transient
from repro.devices.variation import OxideVariation
from repro.engine.mc import sample_scales
from repro.sram import AccessConfig, CellSizing, Tfet6TCell
from repro.telemetry import core as telemetry

SPEEDUP_GATE = 5.0
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_spice_batch.json"
SAMPLES = 64
SEED = 10
VDD = 0.8
BETA = 0.6


def _bench_for(scales):
    cell = Tfet6TCell(
        CellSizing().with_beta(BETA),
        AccessConfig.INWARD_P,
        devices=varied_device_set(scales),
    )
    return cell.read_testbench(VDD)


def _drnm(bench, result) -> float:
    return result.min_difference(
        bench.one_node, bench.zero_node, bench.window.t_on, bench.window.t_off
    )


def _run_scalar(all_scales) -> list[float]:
    values = []
    for scales in all_scales:
        bench = _bench_for(scales)
        result = simulate_transient(
            bench.circuit,
            bench.settle_stop(SETTLE_TIME),
            initial_conditions=bench.initial_conditions,
        )
        values.append(_drnm(bench, result))
    return values


def _run_batched(all_scales) -> list[float]:
    pairs = []
    benches = []
    for k, scales in enumerate(all_scales):
        bench = _bench_for(scales)
        benches.append(bench)
        member = BatchMember(label=f"s{k}")
        pairs.append(
            (
                member,
                transient_gen(
                    member,
                    bench.circuit,
                    bench.settle_stop(SETTLE_TIME),
                    initial_conditions=bench.initial_conditions,
                ),
            )
        )
    outcomes = run_generators(pairs)
    for outcome in outcomes:
        if outcome.status != "ok":
            raise outcome.error
    return [_drnm(b, o.value) for b, o in zip(benches, outcomes)]


def test_batch_speedup_gate():
    variation = OxideVariation()
    all_scales = [sample_scales(variation, SEED, k, 6) for k in range(SAMPLES)]
    for scales in all_scales:  # warm the device-table cache for both paths
        _bench_for(scales)

    batched_values = _run_batched(all_scales)
    scalar_values = _run_scalar(all_scales)
    assert (
        np.asarray(batched_values).tobytes() == np.asarray(scalar_values).tobytes()
    ), "batched values are not bit-identical to the scalar path"

    batched = _timed(lambda: _run_batched(all_scales))
    scalar = _timed(lambda: _run_scalar(all_scales))
    speedup = scalar / batched
    print(
        f"\nscalar {scalar:.2f} s, batched {batched:.2f} s "
        f"({1e3 * batched / SAMPLES:.1f} ms/sample) -> {speedup:.2f}x"
    )

    with telemetry.enabled() as tel:
        _run_batched(all_scales)
        counters = dict(tel.counters)

    _emit_bench(scalar, batched, speedup, counters)
    assert speedup >= SPEEDUP_GATE, (
        f"stacked batch regressed: {speedup:.2f}x < {SPEEDUP_GATE}x "
        f"(scalar {scalar:.3f} s, batched {batched:.3f} s)"
    )


def _timed(fn, repeats: int = 2) -> float:
    """Best-of-N wall time (min is the standard noise-robust estimate)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _emit_bench(scalar, batched, speedup, counters) -> None:
    payload = {
        "schema": "repro.bench.spice_batch/v1",
        "created_unix": time.time(),
        "workload": (
            f"{SAMPLES}-sample Monte-Carlo DRNM at beta={BETA} "
            "(fig10-class read-disturb transients)"
        ),
        "samples": SAMPLES,
        "scalar_wall_s": scalar,
        "batched_wall_s": batched,
        "speedup": speedup,
        "gate": SPEEDUP_GATE,
        "batch": {
            "runs": counters.get("batch.runs", 0),
            "members": counters.get("batch.members", 0),
            "ticks": counters.get("batch.ticks", 0),
            "member_assemblies": counters.get("batch.member_assemblies", 0),
            "table_points": counters.get("batch.table_points", 0),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2))


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
