"""Benchmark: regenerate Fig. 10 (Monte-Carlo variation under RA)."""

from repro.experiments import fig10_ra_variation

SAMPLES = 12


def test_fig10_ra_variation(run_once):
    result = run_once(fig10_ra_variation.run, samples=SAMPLES, seed=10)

    drnm_rows = [r for r in result.rows if str(r[1]).startswith("DRNM")]
    assert len(drnm_rows) == 4
    # Paper: "for all RA techniques, the DRNM is minimally impacted".
    for row in drnm_rows:
        assert row[4] < 0.05

    # The write-sized (beta = 0.6) cell never loses a write under
    # variation, and its WL_crit spread is moderate.
    wl_row = [r for r in result.rows if r[0] == "(no assist)"][0]
    assert wl_row[5] == 0
    assert wl_row[4] < 0.5
