"""Benchmark: regenerate the static-power comparison (Sections 3/5)."""

from repro.experiments import table_static_power

VDDS = (0.5, 0.6, 0.7, 0.8)


def test_table_static_power(run_once):
    result = run_once(table_static_power.run, vdds=VDDS)
    h = result.header
    rows = {row[0]: row for row in result.rows}

    # Section 3: outward access costs ~5 orders at 0.6 V, ~9 at 0.8 V.
    assert 4.0 < rows[0.6][h.index("orders: outward/inward")] < 8.0
    assert 8.0 < rows[0.8][h.index("orders: outward/inward")] < 11.0

    # Section 5: the proposed cell sits 6-7 orders below CMOS ...
    for vdd in VDDS:
        assert 5.0 < rows[vdd][h.index("orders: CMOS/proposed")] < 8.0

    # ... the asym cell pays ~4 orders at 0.5 V ...
    assert 3.0 < rows[0.5][h.index("orders: asym/proposed")] < 5.5

    # ... and the 7T matches the proposed cell's leakage floor.
    for vdd in VDDS:
        p7 = rows[vdd][h.index("7T TFET")]
        pp = rows[vdd][h.index("proposed (inward)")]
        assert 0.2 < p7 / pp < 5.0
