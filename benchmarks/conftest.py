"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures via
``benchmark.pedantic(..., rounds=1)`` — these are minutes-long
simulation campaigns, not microbenchmarks, so a single timed round is
the right measurement.  Each benchmark prints the regenerated table
(run pytest with ``-s`` to see them) and asserts the paper's shape
criteria on the result.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        print()
        print(result.format())
        return result

    return runner
