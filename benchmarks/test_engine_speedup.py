"""Guard: the batch engine's 4-worker speedup on a fixed 16-task workload.

Measures the same 16-task batch serially (``jobs=1``) and on four
workers (``jobs=4``) and asserts the parallel run is at least 2x
faster.  Two workload modes keep the measurement honest across hosts:

* ``montecarlo`` (>= 4 usable cores, e.g. CI): real DRNM Monte-Carlo
  samples through the full engine stack, with a warm-up pass so both
  timed runs see warm device caches — this measures genuine CPU
  parallelism on the paper's workload;
* ``calibrated-sleep`` (fewer cores, e.g. a 1-core container): tasks of
  a fixed known duration — CPU-bound work cannot speed up on one core,
  so this instead verifies the scheduler overlaps task wall time and
  adds little overhead.  The mode is recorded in the emitted JSON, so a
  single-core result is never mistaken for a parallelism measurement.

Emits ``BENCH_engine.json`` at the repo root with both wall times, the
speedup, the mode, and the visible core count.

Run with ``PYTHONPATH=src python -m pytest -q -s
benchmarks/test_engine_speedup.py`` (no pytest-benchmark needed).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.engine import EngineConfig, McMetricSpec, MonteCarloBatch, Task, derive_seed, run_tasks

TASK_COUNT = 16
JOBS = 4
MIN_SPEEDUP = 2.0
SLEEP_PER_TASK_S = 0.25
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def sleep_task(payload, ctx) -> float:
    """Fixed-duration stand-in task (module-level: must pickle)."""
    time.sleep(float(payload))
    return float(ctx.index)


def montecarlo_tasks() -> list[Task]:
    spec = McMetricSpec(metric="drnm", beta=0.6, vdd=0.8, metric_name="DRNM")
    return MonteCarloBatch(spec).tasks(TASK_COUNT, seed=42)


def sleep_tasks() -> list[Task]:
    return [
        Task(index=k, fn=sleep_task, payload=SLEEP_PER_TASK_S, seed=derive_seed(42, k))
        for k in range(TASK_COUNT)
    ]


def timed_run(tasks: list[Task], jobs: int, cache_dir) -> tuple[float, list]:
    config = EngineConfig(jobs=jobs, cache_dir=cache_dir)
    start = time.perf_counter()
    report = run_tasks(tasks, config)
    wall = time.perf_counter() - start
    assert report.failed_count == 0, report.failures()
    return wall, report.values()


def test_four_worker_speedup(tmp_path):
    cores = usable_cores()
    mode = "montecarlo" if cores >= JOBS else "calibrated-sleep"
    if mode == "montecarlo":
        tasks = montecarlo_tasks()
        cache_dir = tmp_path / "table_cache"
        # Warm pass: populate the on-disk table cache and the in-process
        # device caches so both timed runs measure solving, not setup.
        run_tasks(tasks, EngineConfig(jobs=1, cache_dir=cache_dir))
    else:
        tasks = sleep_tasks()
        cache_dir = None

    serial_wall, serial_values = timed_run(tasks, 1, cache_dir)
    parallel_wall, parallel_values = timed_run(tasks, JOBS, cache_dir)

    assert parallel_values == serial_values, "parallelism changed the results"
    speedup = serial_wall / parallel_wall
    print(
        f"\n[{mode}, {cores} cores] serial {serial_wall:.2f} s, "
        f"jobs={JOBS} {parallel_wall:.2f} s -> {speedup:.2f}x"
    )

    BENCH_PATH.write_text(
        json.dumps(
            {
                "schema": "repro.bench.engine/v1",
                "created_unix": time.time(),
                "mode": mode,
                "usable_cores": cores,
                "task_count": TASK_COUNT,
                "jobs": JOBS,
                "serial_wall_s": serial_wall,
                "parallel_wall_s": parallel_wall,
                "speedup": speedup,
                "min_speedup": MIN_SPEEDUP,
            },
            indent=2,
        )
    )
    assert speedup >= MIN_SPEEDUP


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
