"""Latency benchmark for the serve daemon under concurrent load.

Builds a small store, starts a real daemon (unix socket, in-process
event loop), then drives it with ``N_CLIENTS`` concurrent clients
issuing warm queries — a mix of exact grid points and interpolated
midpoints, the steady-state serving workload.  Gates the warm-hit p99:
a request answered from the in-memory grid must never cost more than
``GATE_P99_S`` even with every client hammering at once.  One cold
query is also timed (backfill latency: coalesce window + one real
engine build) and reported ungated — it measures the simulator, not
the daemon.

Emits ``BENCH_serve.json`` at the repo root (schema
``repro.bench.serve/v1``), which ``repro bench`` tracks with a
lower-is-better ``p99_warm_s`` headline.

Run with ``PYTHONPATH=src python -m pytest -q -s benchmarks/test_serve.py``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.char import CharSpec, CharStore, build_grid
from repro.serve import ServeConfig, ServeDaemon
from repro.serve.client import ServeClient

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 40
GATE_P99_S = 0.25
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

SPEC = CharSpec(
    name="servebench",
    designs=("cmos", "proposed"),
    vdds=(0.6, 0.8),
    metrics=("drnm", "hold_power"),
)

#: (metric, design, vdd) rotation per client: exact points and midpoints.
WARM_POINTS = [
    ("hold_power", "cmos", 0.6),
    ("drnm", "proposed", 0.8),
    ("hold_power", "cmos", 0.7),
    ("drnm", "proposed", 0.65),
    ("hold_power", "proposed", 0.75),
]


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _client_load(socket_path: Path, worker: int) -> list[float]:
    latencies = []
    with ServeClient(socket_path=socket_path) as client:
        for i in range(REQUESTS_PER_CLIENT):
            metric, design, vdd = WARM_POINTS[(worker + i) % len(WARM_POINTS)]
            start = time.perf_counter()
            response = client.query(metric, design=design, vdd=vdd)
            latencies.append(time.perf_counter() - start)
            assert response["served"] == "memory", response
    return latencies


def test_serve_latency_under_load(tmp_path):
    store_dir = tmp_path / "char"
    report = build_grid(SPEC, CharStore(store_dir))
    assert report.failed == 0, report.failures

    config = ServeConfig(
        store_dir=store_dir,
        specs=[SPEC],
        socket_path=tmp_path / "bench.sock",
        coalesce_s=0.05,
    )
    daemon = ServeDaemon(config)
    thread = threading.Thread(target=lambda: asyncio.run(daemon.run()), daemon=True)
    thread.start()
    deadline = time.monotonic() + 15.0
    while not Path(config.socket_path).exists():
        assert time.monotonic() < deadline, "daemon never came up"
        time.sleep(0.01)

    try:
        # Warm-up pass: touch every point once so the measured window
        # holds no first-touch numpy/json costs.
        with ServeClient(socket_path=config.socket_path) as client:
            for metric, design, vdd in WARM_POINTS:
                client.query(metric, design=design, vdd=vdd)

        wall_start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
            latency_lists = list(
                pool.map(
                    lambda w: _client_load(config.socket_path, w),
                    range(N_CLIENTS),
                )
            )
        wall = time.perf_counter() - wall_start
        latencies = [lat for chunk in latency_lists for lat in chunk]

        # One cold point: coalesce window + a real engine build.
        with ServeClient(socket_path=config.socket_path) as client:
            cold_start = time.perf_counter()
            cold = client.query("hold_power", design="cmos", vdd=0.55)
            cold_wall = time.perf_counter() - cold_start
            assert cold["served"] == "backfill"
            client.shutdown()
    finally:
        thread.join(30)
        assert not thread.is_alive(), "daemon failed to drain"

    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    total = len(latencies)
    print(
        f"\n[{N_CLIENTS} clients x {REQUESTS_PER_CLIENT} reqs] "
        f"p50 {p50 * 1e3:.2f} ms, p99 {p99 * 1e3:.2f} ms, "
        f"{total / wall:.0f} req/s; cold backfill {cold_wall:.2f} s"
    )

    BENCH_PATH.write_text(
        json.dumps(
            {
                "schema": "repro.bench.serve/v1",
                "created_unix": time.time(),
                "clients": N_CLIENTS,
                "requests_total": total,
                "p50_warm_s": p50,
                "p99_warm_s": p99,
                "throughput_rps": total / wall,
                "cold_backfill_s": cold_wall,
                "gate_p99_s": GATE_P99_S,
            },
            indent=2,
        )
        + "\n"
    )
    assert p99 <= GATE_P99_S, (
        f"warm-hit p99 {p99:.4f} s exceeds the {GATE_P99_S:.2f} s gate"
    )


if __name__ == "__main__":
    import pytest
    import sys

    sys.exit(pytest.main([__file__, "-q", "-s"]))
