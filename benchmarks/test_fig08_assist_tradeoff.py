"""Benchmark: regenerate Fig. 8 (WL_crit vs DRNM trade-off frontier)."""

import math

from repro.experiments import fig08_assist_tradeoff


def test_fig08_assist_tradeoff(run_once):
    result = run_once(
        fig08_assist_tradeoff.run,
        wa_betas=(1.2, 1.8, 2.4),
        ra_betas=(0.3, 0.6, 0.9),
    )

    # The paper's headline conclusion: V_GND-lowering RA owns the
    # lower-right corner (high DRNM at low WL_crit).
    assert "vgnd_lowering" in result.notes[0]

    # Every RA point is writable (beta <= 1 cell) ...
    ra_rows = [r for r in result.rows if r[1] == "RA"]
    assert all(math.isfinite(r[4]) for r in ra_rows)

    # ... and the best RA point beats every WA point on both axes.
    best_ra = max(ra_rows, key=lambda r: r[3] - 0.15 * r[4])
    wa_rows = [r for r in result.rows if r[1] == "WA" and math.isfinite(r[4])]
    for row in wa_rows:
        assert best_ra[3] > row[3] or best_ra[4] < row[4]
