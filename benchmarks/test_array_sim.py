"""Guard: sparse MNA speedup on a compiled array critical path.

The array compiler's whole premise is that a composed column (hundreds
of unknowns) stays simulatable because ``make_system`` auto-selects the
sparse assembler past the 64-unknown threshold.  This guard compiles
the 256x32 read path (~840 unknowns), measures it once with the solver
forced dense and once forced sparse, and asserts:

* the sparse run is at least ``MIN_SPEEDUP`` times faster (measured
  ~6x on CI-class hosts);
* both solvers produce the *same* access delay (the speedup is not
  bought with accuracy).

Emits ``BENCH_array.json`` at the repo root (schema
``repro.bench.array/v1``; headline ``speedup``, gated by
``min_speedup``) for ``repro bench`` / ``scripts/bench_track.py``
regression tracking.

Run with ``PYTHONPATH=src python -m pytest -q -s
benchmarks/test_array_sim.py``.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import replace
from pathlib import Path

from repro.circuit.transient import TransientOptions
from repro.sram import AccessConfig, CellSizing, Tfet6TCell
from repro.sram.array import ArrayGeometry
from repro.sram.compiler import compile_array, measure_array

ROWS, COLUMNS = 256, 32
MIN_SPEEDUP = 2.0
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_array.json"


def _options(matrix_format: str) -> TransientOptions:
    base = TransientOptions()
    return replace(base, solver=replace(base.solver, matrix_format=matrix_format))


def _timed_measure(compiled, matrix_format: str):
    start = time.perf_counter()
    measurement = measure_array(compiled, options=_options(matrix_format))
    return time.perf_counter() - start, measurement


def test_sparse_speedup_on_compiled_path():
    cell = Tfet6TCell(CellSizing().with_beta(0.6), access=AccessConfig.INWARD_P)
    compiled = compile_array(cell, ArrayGeometry(ROWS, COLUMNS), 0.8)
    assert compiled.unknown_count > 500

    # Warm-up (device tables, JIT-ish numpy paths) outside the timings.
    small = compile_array(cell, ArrayGeometry(4, 2), 0.8)
    measure_array(small)

    dense_wall, dense_m = _timed_measure(compiled, "dense")
    sparse_wall, sparse_m = _timed_measure(compiled, "sparse")
    speedup = dense_wall / sparse_wall

    assert math.isfinite(sparse_m.access_delay)
    # Same physics from both assemblers: the sparse path is a solver
    # optimization, not a model change (factorization orderings differ,
    # so agreement is to solver tolerance, not bit-exact).
    assert math.isclose(
        sparse_m.access_delay, dense_m.access_delay, rel_tol=1e-6
    )
    assert sparse_m.sparse_engaged and not dense_m.sparse_engaged

    payload = {
        "schema": "repro.bench.array/v1",
        "created_unix": time.time(),
        "rows": ROWS,
        "columns": COLUMNS,
        "unknowns": compiled.unknown_count,
        "dense_wall_s": dense_wall,
        "sparse_wall_s": sparse_wall,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "access_delay_ps": sparse_m.access_delay * 1e12,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2))
    print(f"\narray path: {compiled.unknown_count} unknowns, "
          f"dense {dense_wall:.2f} s, sparse {sparse_wall:.2f} s "
          f"-> {speedup:.2f}x (gate {MIN_SPEEDUP}x)")
    assert speedup >= MIN_SPEEDUP, (
        f"sparse speedup {speedup:.2f}x below the {MIN_SPEEDUP}x gate"
    )
