"""Benchmark: regenerate Fig. 7(e) (read-assist techniques vs beta)."""

from repro.experiments import fig07_read_assist

BETAS = (0.2, 0.4, 0.6, 0.8, 1.0)


def test_fig07_read_assist(run_once):
    result = run_once(fig07_read_assist.run, betas=BETAS)

    baseline = result.column("no assist")
    assert baseline == sorted(baseline)  # DRNM grows with beta

    # Every technique improves on the unassisted read at every beta.
    for name in ("vdd_raising", "vgnd_lowering", "wl_raising", "bl_lowering"):
        for base, assisted in zip(baseline, result.column(name)):
            assert assisted > base

    # At the design point (beta >= 0.6) the rail techniques dominate
    # the access-weakening ones — the paper's large-beta ordering.
    h = result.header
    for row in result.rows:
        if row[0] >= 0.6:
            rail = max(row[h.index("vdd_raising")], row[h.index("vgnd_lowering")])
            access = max(row[h.index("wl_raising")], row[h.index("bl_lowering")])
            assert rail > access
