"""Gate: the precompiled SPICE hot path is >= 2x the seed on fig04-class work.

The workload is the cell-stability inner loop (the repo's dominant
cost): a write transient and a read-disturb transient on a 6T TFET
cell — the same simulations a fig04 DRNM/WL_crit point runs dozens of
times.  Two configurations are timed on this machine, in this process:

* **baseline** — the seed hot path, reconstructed exactly: the
  loop-based :class:`ReferenceMnaSystem` swapped into the solver and
  integrator, the seed table-evaluation kernel
  (``CubicTable2D.reference_evaluation``), Jacobian reuse off (full
  re-stamp + factorization every Newton iteration), and the transient
  predictor off (each step seeds Newton from the last accepted point);
* **optimized** — the shipped defaults: precompiled stamping, LU
  reuse, linear extrapolation predictor.

Measuring both in-process makes the >= 2x gate portable: it compares
algorithms, not machines.  The run also captures the Newton
stamp/reuse split from a telemetry-enabled pass and emits
``BENCH_spice_core.json`` at the repo root for the CI artifact trail.

Run with ``PYTHONPATH=src python -m pytest -q benchmarks/test_spice_core.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.circuit import dcop, transient
from repro.circuit.dcop import SolverOptions
from repro.circuit.mna_reference import ReferenceMnaSystem
from repro.circuit.transient import TransientOptions, simulate_transient
from repro.devices.tables import CubicTable2D
from repro.sram import AccessConfig, CellSizing, Tfet6TCell
from repro.telemetry import core as telemetry

SPEEDUP_GATE = 2.0
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_spice_core.json"
VDD = 0.8
SETTLE = 1.0e-9


def _benches():
    cell = Tfet6TCell(CellSizing().with_beta(1.0), access=AccessConfig.INWARD_P)
    return (
        cell.write_testbench(VDD, 2.0e-9),
        cell.read_testbench(VDD),
    )


def workload(options: TransientOptions) -> None:
    for bench in _benches():
        simulate_transient(
            bench.circuit,
            bench.settle_stop(SETTLE),
            initial_conditions=bench.initial_conditions,
            options=options,
        )


SEED_OPTIONS = TransientOptions(
    predictor="none", solver=SolverOptions(jacobian_reuse=False)
)
FAST_OPTIONS = TransientOptions()


def timed(fn, repeats: int = 3) -> float:
    """Best-of-N wall time (min is the standard noise-robust estimate)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_hot_path_speedup_gate(monkeypatch):
    workload(FAST_OPTIONS)  # warm the device-table cache for both configs

    optimized = timed(lambda: workload(FAST_OPTIONS))

    with monkeypatch.context() as m:
        m.setattr(dcop, "MnaSystem", ReferenceMnaSystem)
        m.setattr(transient, "MnaSystem", ReferenceMnaSystem)
        m.setattr(CubicTable2D, "reference_evaluation", True)
        baseline = timed(lambda: workload(SEED_OPTIONS))

    speedup = baseline / optimized
    print(
        f"\nbaseline {baseline * 1e3:.1f} ms, optimized {optimized * 1e3:.1f} ms "
        f"-> {speedup:.2f}x"
    )

    with telemetry.enabled() as tel:
        workload(FAST_OPTIONS)
        counters = dict(tel.counters)

    _emit_bench(baseline, optimized, speedup, counters)
    assert speedup >= SPEEDUP_GATE, (
        f"hot path regressed: {speedup:.2f}x < {SPEEDUP_GATE}x "
        f"(baseline {baseline:.3f} s, optimized {optimized:.3f} s)"
    )


def _emit_bench(baseline, optimized, speedup, counters) -> None:
    stamps = counters.get("newton.jacobian_stamps", 0)
    reuses = counters.get("newton.jacobian_reuses", 0)
    payload = {
        "schema": "repro.bench.spice_core/v1",
        "created_unix": time.time(),
        "workload": "tfet6t write + read-disturb transients (fig04-class)",
        "baseline_wall_s": baseline,
        "optimized_wall_s": optimized,
        "speedup": speedup,
        "gate": SPEEDUP_GATE,
        "newton": {
            "jacobian_stamps": stamps,
            "jacobian_reuses": reuses,
            "reuse_fraction": reuses / max(stamps + reuses, 1),
            "solves": counters.get("newton.solves", 0),
            "iterations": counters.get("newton.iterations", 0),
        },
        "transient": {
            "steps_accepted": counters.get("transient.steps_accepted", 0),
            "steps_rejected": counters.get("transient.steps_rejected", 0),
            "predictor_fallbacks": counters.get("transient.predictor_fallbacks", 0),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2))


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
