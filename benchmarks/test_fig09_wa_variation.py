"""Benchmark: regenerate Fig. 9 (Monte-Carlo variation under WA)."""

from repro.experiments import fig09_wa_variation

SAMPLES = 12


def test_fig09_wa_variation(run_once):
    result = run_once(fig09_wa_variation.run, samples=SAMPLES, seed=9)
    rows = {row[0]: row for row in result.rows}

    # WL_crit under write assist varies strongly with +/-5 % t_ox ...
    assert rows["vgnd_raising"][4] > 0.05  # >5 % relative spread

    # ... while the DRNM of the same cells barely moves.
    assert rows["(no assist)"][4] < 0.05

    # The DRNM spread is far below the assisted-write WL_crit spread.
    assert rows["vgnd_raising"][4] > 3.0 * rows["(no assist)"][4]
