"""Fleet scaling benchmark: 4 shard workers behind one front vs one.

The sharded serving layer's reason to exist is aggregate throughput:
four daemon event loops own disjoint keyspace slices, so four queries
for four different ``(design, corner, beta)`` keys occupy four loops
at once, where a single daemon serializes them on one loop.

Like ``test_engine_speedup.py``, a core-starved container (CI runners
here expose 1 core) cannot demonstrate real CPU scaling, so the
benchmark runs in **calibrated-service** mode: every query blocks its
daemon's event loop for ``SERVICE_S`` (the ``synthetic_service_s``
knob, emulating heavier per-request work at a known size), and the
measured quantity is how well independent worker loops overlap
loop-occupying service time — the exact mechanism sharding buys.  A
blocked loop sleeps outside the GIL, so overlap is measurable on any
core count and the run stays deterministic; the mode is recorded in
the emitted JSON.  True multi-process scaling is exercised end to end
by ``scripts/serve_smoke.py``'s fleet phase.

The four warm keys are chosen one-per-shard through the real
:class:`ShardMap` (betas 0.50/0.51/0.52/0.53 land on shards
3/1/2/0 of a 4-ring — pinned in ``tests/serve/test_shard.py``), so the
load is perfectly balanced by construction.

Gates (``BENCH_serve_fleet.json``, schema ``repro.bench.serve_fleet/v1``):

* ``throughput_scale`` = fleet rps / single-worker rps ≥ ``GATE_SCALE``
  (3.0 for a 4-shard fleet);
* fleet warm p99 ≤ ``GATE_P99_RATIO`` × the single worker's p99.

Run with ``PYTHONPATH=src python -m pytest -q -s benchmarks/test_serve_fleet.py``.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.char import CharSpec, CharStore, build_grid
from repro.serve import ServeConfig, ServeDaemon
from repro.serve.client import ServeClient
from repro.serve.front import Front, FrontConfig, ShardAddress
from repro.serve.shard import ShardMap

WORKERS = 4
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 25
SERVICE_S = 0.006
GATE_SCALE = 3.0
GATE_P99_RATIO = 2.0
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve_fleet.json"

#: One beta per shard of a 4-ring (see module docstring).
BETAS = (0.5, 0.51, 0.52, 0.53)

SPEC = CharSpec(
    name="fleetbench",
    designs=("cmos",),
    vdds=(0.6, 0.8),
    metrics=("hold_power",),
    betas=BETAS,
)


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


class _Loop:
    """A daemon or front on its own thread (same shape as the tests)."""

    def __init__(self, runner, socket_path: Path):
        self.socket_path = socket_path
        self.runner = runner
        self.loop: asyncio.AbstractEventLoop | None = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        await self.runner.run()

    def _run(self) -> None:
        asyncio.run(self._main())

    def start(self) -> "_Loop":
        self.thread.start()
        deadline = time.monotonic() + 30.0
        while not self.socket_path.exists():
            assert time.monotonic() < deadline, "loop never came up"
            assert self.thread.is_alive(), "loop thread died during startup"
            time.sleep(0.01)
        return self

    def stop(self) -> None:
        if self.thread.is_alive() and self.loop is not None:
            try:
                self.loop.call_soon_threadsafe(self.runner.request_shutdown)
            except RuntimeError:
                pass
        self.thread.join(30)
        assert not self.thread.is_alive(), "loop failed to drain"


def _drive(socket_path: Path) -> tuple[float, list[float]]:
    """N_CLIENTS × REQUESTS_PER_CLIENT warm queries; (rps, latencies)."""

    def client_load(worker: int) -> list[float]:
        latencies = []
        with ServeClient(socket_path=socket_path) as client:
            for i in range(REQUESTS_PER_CLIENT):
                beta = BETAS[(worker + i) % len(BETAS)]
                start = time.perf_counter()
                response = client.query(
                    "hold_power", design="cmos", vdd=0.6, beta=beta
                )
                latencies.append(time.perf_counter() - start)
                assert response["served"] == "memory", response
        return latencies

    wall_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
        chunks = list(pool.map(client_load, range(N_CLIENTS)))
    wall = time.perf_counter() - wall_start
    latencies = [lat for chunk in chunks for lat in chunk]
    return len(latencies) / wall, latencies


def test_fleet_throughput_scaling(tmp_path):
    shard_map = ShardMap(WORKERS)
    owners = sorted(shard_map.owner("cmos", "tt", beta) for beta in BETAS)
    assert owners == list(range(WORKERS)), (
        f"BETAS no longer land one per shard: {owners}"
    )

    store_dir = tmp_path / "char"
    report = build_grid(SPEC, CharStore(store_dir))
    assert report.failed == 0, report.failures

    def daemon_config(socket_path: Path, index: int | None = None) -> ServeConfig:
        return ServeConfig(
            store_dir=store_dir,
            specs=[SPEC],
            socket_path=socket_path,
            synthetic_service_s=SERVICE_S,
            shard_index=index,
            shard_count=None if index is None else WORKERS,
        )

    # -- baseline: one worker, one loop ------------------------------------
    single = _Loop(
        ServeDaemon(daemon_config(tmp_path / "single.sock")),
        tmp_path / "single.sock",
    ).start()
    try:
        with ServeClient(socket_path=single.socket_path) as client:
            for beta in BETAS:  # warm-up: first-touch costs off the clock
                client.query("hold_power", design="cmos", vdd=0.6, beta=beta)
        single_rps, single_lat = _drive(single.socket_path)
    finally:
        single.stop()

    # -- fleet: WORKERS shards behind one front ----------------------------
    shards, addresses = [], []
    for index in range(WORKERS):
        socket_path = tmp_path / f"shard{index}.sock"
        shards.append(
            _Loop(ServeDaemon(daemon_config(socket_path, index)), socket_path).start()
        )
        addresses.append(ShardAddress(socket_path=socket_path))
    front = _Loop(
        Front(FrontConfig(shards=addresses, socket_path=tmp_path / "front.sock")),
        tmp_path / "front.sock",
    ).start()
    try:
        with ServeClient(socket_path=front.socket_path) as client:
            for beta in BETAS:
                client.query("hold_power", design="cmos", vdd=0.6, beta=beta)
        fleet_rps, fleet_lat = _drive(front.socket_path)
    finally:
        front.stop()
        for shard in shards:
            shard.stop()

    scale = fleet_rps / single_rps
    single_p99 = _percentile(single_lat, 0.99)
    fleet_p99 = _percentile(fleet_lat, 0.99)
    p99_ratio = fleet_p99 / single_p99
    print(
        f"\n[{WORKERS} shards, {N_CLIENTS} clients x {REQUESTS_PER_CLIENT}, "
        f"service {SERVICE_S * 1e3:.0f} ms] single {single_rps:.0f} rps "
        f"(p99 {single_p99 * 1e3:.1f} ms), fleet {fleet_rps:.0f} rps "
        f"(p99 {fleet_p99 * 1e3:.1f} ms) — x{scale:.2f}"
    )

    BENCH_PATH.write_text(
        json.dumps(
            {
                "schema": "repro.bench.serve_fleet/v1",
                "created_unix": time.time(),
                "mode": "calibrated-service",
                "usable_cores": os.cpu_count() or 1,
                "workers": WORKERS,
                "clients": N_CLIENTS,
                "requests_total": N_CLIENTS * REQUESTS_PER_CLIENT,
                "service_s": SERVICE_S,
                "single_rps": single_rps,
                "fleet_rps": fleet_rps,
                "throughput_scale": scale,
                "single_p99_s": single_p99,
                "fleet_p99_s": fleet_p99,
                "p99_ratio": p99_ratio,
                "gate_scale": GATE_SCALE,
                "gate_p99_ratio": GATE_P99_RATIO,
            },
            indent=2,
        )
        + "\n"
    )
    assert scale >= GATE_SCALE, (
        f"fleet throughput scale x{scale:.2f} below the x{GATE_SCALE:.1f} gate"
    )
    assert p99_ratio <= GATE_P99_RATIO, (
        f"fleet p99 is {p99_ratio:.2f}x the single worker's "
        f"(gate {GATE_P99_RATIO:.1f}x)"
    )


if __name__ == "__main__":
    import pytest
    import sys

    sys.exit(pytest.main([__file__, "-q", "-s"]))
