"""Quickstart: build the paper's TFET, inspect it, and exercise a cell.

Runs in well under a minute:

1. calibrate the Si TFET to the paper's anchors and print its headline
   figures of merit (I_on, I_off, subthreshold swing, reverse leakage);
2. build the proposed 6T inward-pTFET SRAM cell at beta = 0.6;
3. measure hold power, read stability (DRNM) with and without the
   V_GND-lowering read assist, and the critical write pulse (WL_crit).

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    READ_ASSISTS,
    AccessConfig,
    CellSizing,
    Tfet6TCell,
    critical_wordline_pulse,
    dynamic_read_noise_margin,
    hold_power,
    tfet_device,
)
from repro.devices.library import nominal_tfet_physics

VDD = 0.8


def describe_device() -> None:
    physics = nominal_tfet_physics()
    device = tfet_device()
    print("== Si TFET (calibrated to the paper's Section 2 anchors) ==")
    print(f"  I_on  (V_GS = V_DS = 1 V) : {device.on_current(1.0):.3e} A/um")
    print(f"  I_off (V_GS = 0, V_DS = 1): {device.off_current(1.0):.3e} A/um")
    print(f"  min subthreshold swing    : {physics.subthreshold_swing_mv_per_dec():.1f} mV/dec")
    reverse = abs(float(np.asarray(device.current_density(0.0, -1.0))))
    print(f"  reverse current at -1 V   : {reverse:.3e} A/um  <- unidirectional conduction")
    print()


def exercise_cell() -> None:
    cell = Tfet6TCell(CellSizing().with_beta(0.6), access=AccessConfig.INWARD_P)
    assist = READ_ASSISTS["vgnd_lowering"]
    print(f"== Proposed 6T inpTFET SRAM cell (beta = {cell.sizing.beta:.1f}) ==")

    power = hold_power(cell, VDD)
    print(f"  hold power at {VDD} V      : {power:.3e} W")

    drnm_plain = dynamic_read_noise_margin(cell.read_testbench(VDD))
    drnm_assist = dynamic_read_noise_margin(cell.read_testbench(VDD, assist=assist))
    print(f"  DRNM (no assist)          : {drnm_plain * 1e3:.1f} mV")
    print(f"  DRNM (VGND-lowering RA)   : {drnm_assist * 1e3:.1f} mV")

    wl_crit = critical_wordline_pulse(cell, VDD)
    print(f"  WL_crit                   : {wl_crit * 1e12:.1f} ps")
    print()
    print("The cell is sized to favour the write (small beta) and leans on")
    print("the read assist for stability — the paper's design strategy.")


def main() -> None:
    describe_device()
    exercise_cell()


if __name__ == "__main__":
    main()
