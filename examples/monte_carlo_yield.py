"""Section 4.3 walkthrough: process-variation robustness of the design.

Monte-Carlo over +/-5 % gate-insulator thickness (independent per
transistor) for the proposed design point — beta = 0.6 with
V_GND-lowering read assist — reporting the DRNM and WL_crit
distributions and a simple parametric yield (fraction of samples whose
margins clear configurable limits).

The sampling runs on the batch engine (`repro.engine`): `--jobs N`
fans samples across N worker processes that share one on-disk
device-table cache, `--resume` continues an interrupted run from its
JSONL checkpoint, and any jobs/resume combination is bit-identical to
a serial run with the same seed.

`--batch-size K` additionally solves K samples per task as one stacked
Newton batch — same values to the last bit, several times faster.

Usage::

    python examples/monte_carlo_yield.py [--samples 24] [--seed 2011]
                                         [--jobs 4] [--batch-size 16]
                                         [--resume]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.engine import EngineConfig, McMetricSpec, MonteCarloBatch

VDD = 0.8
BETA = 0.6
DRNM_LIMIT = 0.4  # volts
WLCRIT_LIMIT = 2e-9  # seconds


def print_histogram(label: str, counts: np.ndarray, edges: np.ndarray, unit: float, unit_name: str) -> None:
    print(f"  {label}")
    peak = max(int(c) for c in counts) or 1
    for count, lo, hi in zip(counts, edges, edges[1:]):
        bar = "#" * (40 * int(count) // peak)
        print(f"    {lo / unit:8.1f} - {hi / unit:8.1f} {unit_name} | {bar} {count}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--samples", type=int, default=24)
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument(
        "--batch-size",
        type=int,
        default=1,
        metavar="K",
        help="samples solved per task as one stacked Newton batch "
        "(bit-identical to 1, several times faster)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run from its checkpoints",
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        help="directory for checkpoints and the device-table cache "
        "(default: a temp directory; pass a path to make --resume useful)",
    )
    args = parser.parse_args()

    run_dir = Path(args.run_dir) if args.run_dir else Path(tempfile.mkdtemp(prefix="mc_yield_"))
    specs = {
        "drnm": McMetricSpec(
            metric="drnm", beta=BETA, vdd=VDD, assist="vgnd_lowering",
            metric_name="DRNM",
        ),
        "wlcrit": McMetricSpec(
            metric="wlcrit", beta=BETA, vdd=VDD, wlcrit_upper_bound=8e-9,
            metric_name="WLcrit",
        ),
    }

    print(
        f"Monte-Carlo ({args.samples} samples, +/-5% t_ox per transistor) of the "
        f"proposed cell at V_DD = {VDD} V  [jobs={args.jobs}]"
    )

    results = {}
    for key, spec in specs.items():
        engine = EngineConfig(
            jobs=args.jobs,
            checkpoint_path=run_dir / f"{key}.jsonl",
            resume=args.resume,
            run_key=f"mc_yield:{key}:beta={BETA}:vdd={VDD}",
            root_seed=args.seed,
            cache_dir=run_dir / "table_cache",
        )
        results[key] = MonteCarloBatch(spec).run(
            args.samples, seed=args.seed, engine=engine, batch_size=args.batch_size
        )

    drnm_mc, wl_mc = results["drnm"], results["wlcrit"]

    print()
    print(f"DRNM   : mean {drnm_mc.mean() * 1e3:6.1f} mV, spread {drnm_mc.spread() * 100:.1f} %")
    counts, edges = drnm_mc.histogram(bins=8)
    print_histogram("distribution:", counts, edges, 1e-3, "mV")

    print()
    print(
        f"WL_crit: mean {wl_mc.mean() * 1e12:6.1f} ps, spread {wl_mc.spread() * 100:.1f} %, "
        f"write failures: {wl_mc.failure_count}"
    )
    counts, edges = wl_mc.histogram(bins=8)
    print_histogram("distribution:", counts, edges, 1e-12, "ps")

    print()
    print("metric   | failure fraction | spread (std/mean)")
    print("---------+------------------+------------------")
    for key, mc in results.items():
        print(
            f"{mc.metric_name:<8} | {mc.failure_fraction:16.1%} | {mc.spread():.4f}"
        )

    read_yield = float(np.mean(drnm_mc.samples > DRNM_LIMIT))
    write_yield = float(np.mean(wl_mc.samples < WLCRIT_LIMIT))
    print()
    print(f"parametric yield: read (DRNM > {DRNM_LIMIT * 1e3:.0f} mV)  = {read_yield:6.1%}")
    print(f"                  write (WL_crit < {WLCRIT_LIMIT * 1e12:.0f} ps) = {write_yield:6.1%}")

    print()
    print("engine   : "
          + "; ".join(
              f"{mc.metric_name}: {mc.report.ok_count} ok, "
              f"{mc.report.failed_count} failed, {mc.report.retry_count} retries, "
              f"{mc.report.resumed_count} resumed, {mc.report.wall_s:.1f} s "
              f"at jobs={mc.report.jobs}"
              for mc in results.values()
          ))
    cache_totals = {"hits": 0, "misses": 0, "stores": 0}
    for mc in results.values():
        for name, n in mc.report.cache_stats().items():
            cache_totals[name] += n
    print(
        f"dev cache: {cache_totals['hits']} hits, {cache_totals['misses']} misses, "
        f"{cache_totals['stores']} stores ({run_dir / 'table_cache'})"
    )
    print()
    print("Paper, Section 4.3: the write-sized, read-assisted cell 'shows")
    print("strong immunity to process variations.'")


if __name__ == "__main__":
    main()
