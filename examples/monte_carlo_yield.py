"""Section 4.3 walkthrough: process-variation robustness of the design.

Monte-Carlo over +/-5 % gate-insulator thickness (independent per
transistor) for the proposed design point — beta = 0.6 with
V_GND-lowering read assist — reporting the DRNM and WL_crit
distributions and a simple parametric yield (fraction of samples whose
margins clear configurable limits).

Usage::

    python examples/monte_carlo_yield.py [--samples 24] [--seed 2011]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.montecarlo import MonteCarloStudy
from repro.analysis.stability import (
    WlCritSearch,
    critical_wordline_pulse,
    dynamic_read_noise_margin,
)
from repro.sram import READ_ASSISTS, AccessConfig, CellSizing, Tfet6TCell

VDD = 0.8
BETA = 0.6
DRNM_LIMIT = 0.4  # volts
WLCRIT_LIMIT = 2e-9  # seconds


def print_histogram(label: str, counts: np.ndarray, edges: np.ndarray, unit: float, unit_name: str) -> None:
    print(f"  {label}")
    peak = max(int(c) for c in counts) or 1
    for count, lo, hi in zip(counts, edges, edges[1:]):
        bar = "#" * (40 * int(count) // peak)
        print(f"    {lo / unit:8.1f} - {hi / unit:8.1f} {unit_name} | {bar} {count}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--samples", type=int, default=24)
    parser.add_argument("--seed", type=int, default=2011)
    args = parser.parse_args()

    sizing = CellSizing().with_beta(BETA)
    assist = READ_ASSISTS["vgnd_lowering"]

    def factory(devices):
        return Tfet6TCell(sizing, AccessConfig.INWARD_P, devices=devices)

    print(
        f"Monte-Carlo ({args.samples} samples, +/-5% t_ox per transistor) of the "
        f"proposed cell at V_DD = {VDD} V"
    )

    drnm_mc = MonteCarloStudy(
        factory,
        metric=lambda c: dynamic_read_noise_margin(c.read_testbench(VDD, assist=assist)),
        metric_name="DRNM",
    ).run(args.samples, seed=args.seed)
    wl_mc = MonteCarloStudy(
        factory,
        metric=lambda c: critical_wordline_pulse(
            c, VDD, search=WlCritSearch(upper_bound=8e-9)
        ),
        metric_name="WLcrit",
    ).run(args.samples, seed=args.seed)

    print()
    print(f"DRNM   : mean {drnm_mc.mean() * 1e3:6.1f} mV, spread {drnm_mc.spread() * 100:.1f} %")
    counts, edges = drnm_mc.histogram(bins=8)
    print_histogram("distribution:", counts, edges, 1e-3, "mV")

    print()
    print(
        f"WL_crit: mean {wl_mc.mean() * 1e12:6.1f} ps, spread {wl_mc.spread() * 100:.1f} %, "
        f"write failures: {wl_mc.failure_count}"
    )
    counts, edges = wl_mc.histogram(bins=8)
    print_histogram("distribution:", counts, edges, 1e-12, "ps")

    read_yield = float(np.mean(drnm_mc.samples > DRNM_LIMIT))
    write_yield = float(np.mean(wl_mc.samples < WLCRIT_LIMIT))
    print()
    print(f"parametric yield: read (DRNM > {DRNM_LIMIT * 1e3:.0f} mV)  = {read_yield:6.1%}")
    print(f"                  write (WL_crit < {WLCRIT_LIMIT * 1e12:.0f} ps) = {write_yield:6.1%}")
    print()
    print("Paper, Section 4.3: the write-sized, read-assisted cell 'shows")
    print("strong immunity to process variations.'")


if __name__ == "__main__":
    main()
