"""Section 3 walkthrough: why only inward pTFET access transistors work.

For each of the four possible access-transistor configurations
(inward/outward x n/p) this script measures:

* hold (static) power with the bitlines clamped at V_DD — outward
  devices sit under reverse bias and leak catastrophically;
* whether a generous write pulse can flip the cell — inward nTFETs
  source-follow and never finish the write;
* the read margin.

The only configuration that passes all three is the paper's choice:
**inward pTFET**.

Usage::

    python examples/access_transistor_study.py
"""

from __future__ import annotations

import math

from repro import AccessConfig, CellSizing, Tfet6TCell, hold_power
from repro.analysis.stability import dynamic_read_noise_margin, write_flips_cell

VDD = 0.8
BETA = 0.6
WRITE_PULSE = 3e-9


def evaluate(config: AccessConfig) -> dict:
    cell = Tfet6TCell(CellSizing().with_beta(BETA), access=config)
    power = hold_power(cell, VDD, average_states=False)
    writable = write_flips_cell(cell.write_testbench(VDD, WRITE_PULSE))
    drnm = dynamic_read_noise_margin(cell.read_testbench(VDD))
    return {"power": power, "writable": writable, "drnm": drnm}


def main() -> None:
    print(f"6T TFET SRAM access-transistor study (V_DD = {VDD} V, beta = {BETA})")
    print()
    header = f"{'configuration':12s} {'hold power':>12s} {'writable':>9s} {'DRNM':>9s}  verdict"
    print(header)
    print("-" * len(header))

    for config in AccessConfig:
        r = evaluate(config)
        low_power = r["power"] < 1e-15
        stable_read = r["drnm"] > 0.05
        ok = low_power and r["writable"] and stable_read
        reasons = []
        if not low_power:
            reasons.append("reverse-biased in hold")
        if not r["writable"]:
            reasons.append("write never completes")
        if not stable_read:
            reasons.append("read disturbs the cell")
        verdict = "SUITABLE" if ok else "unsuitable (" + ", ".join(reasons) + ")"
        drnm = f"{r['drnm'] * 1e3:.0f} mV" if math.isfinite(r["drnm"]) else "-"
        print(
            f"{config.value:12s} {r['power']:>12.2e} {str(r['writable']):>9s} "
            f"{drnm:>9s}  {verdict}"
        )

    print()
    print("Paper, Section 3: 'only inward pTFETs are suitable as the access")
    print("transistors for the 6T TFET SRAM.'")


if __name__ == "__main__":
    main()
