* TFET inverter demo deck for `python -m repro netlist`
VDD vdd 0 DC 0.8
VIN in 0 PULSE(0 0.8 0.2n 2n)
MP out in vdd ptfet W=0.1u
MN out in 0 ntfet W=0.1u
CL out 0 1f
.end
