"""Section 4 walkthrough: choosing the write- or read-assist technique.

Sweeps the cell ratio and evaluates all eight assist techniques the way
the paper does: write assists on cells sized for read (beta > 1), read
assists on cells sized for write (beta <= 1).  Prints the WL_crit /
DRNM landscape and the resulting design recommendation.

Usage::

    python examples/assist_explorer.py [--fast]
"""

from __future__ import annotations

import argparse
import math

from repro import READ_ASSISTS, WRITE_ASSISTS, AccessConfig, CellSizing, Tfet6TCell
from repro.analysis.stability import (
    WlCritSearch,
    critical_wordline_pulse,
    dynamic_read_noise_margin,
)

VDD = 0.8


def cell(beta: float) -> Tfet6TCell:
    return Tfet6TCell(CellSizing().with_beta(beta), access=AccessConfig.INWARD_P)


def fmt(ps: float) -> str:
    return "   inf" if math.isinf(ps) else f"{ps * 1e12:6.0f}"


def write_assist_table(betas) -> None:
    print(f"WL_crit (ps) with each write assist, V_DD = {VDD} V")
    names = list(WRITE_ASSISTS)
    print(f"{'beta':>5s} " + " ".join(f"{n:>13s}" for n in names))
    search = WlCritSearch(upper_bound=8e-9)
    for beta in betas:
        row = [
            fmt(critical_wordline_pulse(cell(beta), VDD, assist=WRITE_ASSISTS[n], search=search))
            for n in names
        ]
        print(f"{beta:5.1f} " + " ".join(f"{v:>13s}" for v in row))
    print()


def read_assist_table(betas) -> None:
    print(f"DRNM (mV) with each read assist, V_DD = {VDD} V")
    names = list(READ_ASSISTS)
    print(f"{'beta':>5s} {'none':>8s} " + " ".join(f"{n:>13s}" for n in names))
    for beta in betas:
        base = dynamic_read_noise_margin(cell(beta).read_testbench(VDD))
        row = [
            dynamic_read_noise_margin(cell(beta).read_testbench(VDD, assist=READ_ASSISTS[n]))
            for n in names
        ]
        print(
            f"{beta:5.1f} {base * 1e3:8.0f} "
            + " ".join(f"{v * 1e3:13.0f}" for v in row)
        )
    print()


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--fast", action="store_true", help="fewer beta points")
    args = parser.parse_args()

    wa_betas = (1.5, 2.5) if args.fast else (1.2, 1.6, 2.0, 2.5, 3.0)
    ra_betas = (0.4, 0.8) if args.fast else (0.2, 0.4, 0.6, 0.8, 1.0)

    write_assist_table(wa_betas)
    read_assist_table(ra_betas)

    print("Recommendation (paper, Section 4.3): size the cell at beta ~ 0.6 so")
    print("the write is naturally reliable, then use V_GND-lowering RA for the")
    print("read — the technique closest to the lower-right corner of Fig. 8.")


if __name__ == "__main__":
    main()
