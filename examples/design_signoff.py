"""Section 5 walkthrough: sign-off comparison of the four designs.

Compares the proposed 6T inpTFET cell (beta = 0.6 + V_GND-lowering RA)
against the 6T CMOS baseline, the asymmetric 6T TFET cell, and the 7T
TFET cell on every axis the paper uses: performance (write/read
delay), reliability (WL_crit, DRNM), static power, and area.

Usage::

    python examples/design_signoff.py [--vdd 0.8]
"""

from __future__ import annotations

import argparse
import math

from repro.analysis.area import cell_area_um2
from repro.analysis.power import hold_power
from repro.analysis.stability import (
    WlCritSearch,
    critical_wordline_pulse,
    dynamic_read_noise_margin,
)
from repro.analysis.timing import read_delay, write_delay
from repro.experiments.designs import (
    asym_cell,
    cmos_cell,
    proposed_cell,
    proposed_read_assist,
    seven_t_cell,
)


def fmt_ps(value: float) -> str:
    return "inf" if math.isinf(value) else f"{value * 1e12:.0f} ps"


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--vdd", type=float, default=0.8)
    args = parser.parse_args()
    vdd = args.vdd

    designs = {
        "6T CMOS": (cmos_cell(), None, True),
        "proposed 6T inpTFET": (proposed_cell(), proposed_read_assist(), True),
        "asym 6T TFET": (asym_cell(), None, False),  # no separatrix -> no WL_crit
        "7T TFET": (seven_t_cell(), None, True),
    }

    print(f"Design sign-off at V_DD = {vdd} V")
    header = (
        f"{'design':21s} {'write':>9s} {'read':>9s} {'WL_crit':>9s} "
        f"{'DRNM':>8s} {'hold power':>11s} {'area':>9s}"
    )
    print(header)
    print("-" * len(header))
    search = WlCritSearch(upper_bound=8e-9)
    for name, (cell, assist, has_wlcrit) in designs.items():
        wd = write_delay(cell, vdd, pulse_width=6e-9)
        rd = read_delay(cell, vdd, assist=assist, duration=8e-9)
        wl = critical_wordline_pulse(cell, vdd, search=search) if has_wlcrit else None
        drnm = dynamic_read_noise_margin(cell.read_testbench(vdd, assist=assist))
        power = hold_power(cell, vdd)
        area = cell_area_um2(cell)
        print(
            f"{name:21s} {fmt_ps(wd):>9s} {fmt_ps(rd):>9s} "
            f"{fmt_ps(wl) if wl is not None else 'n/a':>9s} "
            f"{drnm * 1e3:6.0f}mV {power:>11.2e} {area:7.3f}u2"
        )

    print()
    print("Paper, Section 5/6: the proposed cell matches CMOS-class reliability")
    print("while leaking 6-7 orders of magnitude less, beats the other TFET")
    print("cells on margins, and ties the smallest-area class.")


if __name__ == "__main__":
    main()
