"""Plan a low-power SRAM macro with the proposed TFET cell.

Takes the paper's conclusion — "attractive for low-power high-density
SRAM applications" — and acts on it: plans a macro at several array
organizations, comparing the proposed TFET cell against the 6T CMOS
baseline on access time, standby power, read energy, and area.  The
per-column read is re-simulated against the row-scaled bitline load.

Usage::

    python examples/array_planner.py [--kilobits 16] [--vdd 0.8]
"""

from __future__ import annotations

import argparse
import math

from repro.experiments.designs import cmos_cell, proposed_cell, proposed_read_assist
from repro.sram.array import ArrayGeometry, plan_array


def fmt_time(t: float) -> str:
    return "never" if math.isinf(t) else f"{t * 1e12:7.0f} ps"


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--kilobits", type=int, default=16)
    parser.add_argument("--vdd", type=float, default=0.8)
    args = parser.parse_args()

    bits = args.kilobits * 1024
    organizations = []
    rows = 32
    while rows * rows <= bits and rows <= 512:
        cols = bits // rows
        if cols >= 8:
            organizations.append(ArrayGeometry(rows, cols))
        rows *= 2

    designs = {
        "proposed TFET": (proposed_cell(), proposed_read_assist()),
        "6T CMOS": (cmos_cell(), None),
    }

    print(f"Planning a {args.kilobits} kb macro at V_DD = {args.vdd} V")
    print()
    header = (
        f"{'design':15s} {'org (RxC)':>10s} {'access':>10s} {'standby':>11s} "
        f"{'read energy':>12s} {'area':>10s}"
    )
    print(header)
    print("-" * len(header))
    best = {}
    for name, (cell, assist) in designs.items():
        for geometry in organizations:
            est = plan_array(cell, geometry, args.vdd, read_assist=assist)
            print(
                f"{name:15s} {geometry.rows:>4d}x{geometry.columns:<5d} "
                f"{fmt_time(est.read_access_time):>10s} {est.standby_power:>11.2e} "
                f"{est.read_energy_per_access * 1e15:>9.2f} fJ "
                f"{est.area_um2:>8.0f} u2"
            )
            if math.isfinite(est.read_access_time):
                key = (name,)
                if key not in best or est.read_access_time < best[key].read_access_time:
                    best[key] = est
        print()

    tfet = best[("proposed TFET",)]
    cmos = best[("6T CMOS",)]
    print(
        f"standby advantage of the TFET macro: "
        f"{cmos.standby_power / tfet.standby_power:.1e}x "
        f"({tfet.standby_power:.2e} W vs {cmos.standby_power:.2e} W)"
    )
    print(
        f"access-time cost: {tfet.read_access_time / cmos.read_access_time:.1f}x "
        "slower read — the paper's trade-off at macro scale."
    )


if __name__ == "__main__":
    main()
