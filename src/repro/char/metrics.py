"""The characterized metrics: what each one measures and how.

Each :class:`MetricDef` carries the measurement procedure, the unit,
the interpolation transform (power and delay span decades, so the
query layer interpolates them in log10 space), and a ``version`` tag.
The version participates in the entry fingerprint: bump it whenever
the measurement *procedure* changes (different search bounds, windows,
thresholds), and every stored value produced by the old procedure is
transparently invalidated on the next build — the solver and device
fingerprints cover everything below this layer.

``evaluate_metric`` is the single evaluation entry point used by the
build workers; it is a pure function of the grid-point coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MetricDef", "METRICS", "evaluate_metric"]


@dataclass(frozen=True)
class MetricDef:
    """One characterized figure of merit."""

    name: str
    unit: str
    description: str
    version: int = 1
    transform: str = "linear"
    """``"linear"`` or ``"log"`` — the space the query layer
    interpolates in.  Log metrics are strictly positive when finite."""


METRICS: dict[str, MetricDef] = {
    "hold_power": MetricDef(
        "hold_power", "W", "static (hold) power per cell", transform="log"
    ),
    "drnm": MetricDef(
        "drnm", "V", "dynamic read noise margin (canonical read assist)"
    ),
    "snm": MetricDef("snm", "V", "static (butterfly) read noise margin"),
    "wl_crit": MetricDef(
        "wl_crit", "s",
        "critical wordline pulse (inf when unwritable)", transform="log",
    ),
    "read_delay": MetricDef(
        "read_delay", "s",
        "wordline-to-sense-threshold read delay", transform="log",
    ),
    "write_delay": MetricDef(
        "write_delay", "s",
        "wordline-to-storage-crossing write delay", transform="log",
    ),
    "read_energy": MetricDef(
        "read_energy", "J", "energy of one read access", transform="log"
    ),
    "write_energy": MetricDef(
        "write_energy", "J", "energy of one write access", transform="log"
    ),
}

WL_CRIT_UPPER_BOUND = 8.0e-9
"""Bisection upper bound for ``wl_crit`` (Fig. 12's search window)."""


def evaluate_metric(
    metric: str, design_name: str, vdd: float,
    beta: float | None = None, corner: str = "tt",
) -> float:
    """Simulate one metric at one grid point.

    Returns a float; ``inf`` is data (an unwritable cell's ``wl_crit``,
    a read that never develops).  Raises on solver failure — the build
    layer records that as a structured failed entry.
    """
    from repro.analysis.power import hold_power
    from repro.analysis.snm import static_noise_margin
    from repro.analysis.stability import (
        WlCritSearch,
        critical_wordline_pulse,
        dynamic_read_noise_margin,
    )
    from repro.analysis.timing import read_delay, write_delay
    from repro.analysis.energy import read_energy, write_energy
    from repro.char.designs import DESIGNS, build_cell, delay_windows

    if metric not in METRICS:
        known = ", ".join(sorted(METRICS))
        raise ValueError(f"unknown metric {metric!r}; known: {known}")
    design = DESIGNS[design_name]
    if metric not in design.metrics:
        raise ValueError(f"metric {metric!r} is undefined for design {design_name!r}")
    cell, assist = build_cell(design_name, beta=beta, corner=corner)
    pulse, duration = delay_windows(design, vdd)

    if metric == "hold_power":
        return hold_power(cell, vdd, average_states=design.hold_average_states)
    if metric == "drnm":
        return dynamic_read_noise_margin(cell.read_testbench(vdd, assist=assist))
    if metric == "snm":
        return static_noise_margin(cell, vdd)
    if metric == "wl_crit":
        return critical_wordline_pulse(
            cell, vdd, search=WlCritSearch(upper_bound=WL_CRIT_UPPER_BOUND)
        )
    if metric == "read_delay":
        return read_delay(cell, vdd, assist=assist, duration=duration)
    if metric == "write_delay":
        return write_delay(cell, vdd, pulse_width=pulse)
    if metric == "read_energy":
        return read_energy(cell, vdd, assist=assist, duration=duration)
    if metric == "write_energy":
        return write_energy(cell, vdd, pulse_width=pulse)
    raise AssertionError(f"unhandled metric {metric!r}")
