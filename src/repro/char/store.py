"""The on-disk characterization store: JSONL index + npz grid payloads.

Layout under the store directory (default ``results/char/``)::

    index.jsonl            # append-only entry index, content-addressed
    grids/<digest>.npz     # compiled grid payloads, one per spec
    checkpoints/<digest>.jsonl   # engine checkpoints of in-flight builds
    table_cache/           # shared device-table cache for build workers

The **index** is the source of truth: one header line, then one JSON
line per completed entry, keyed by the entry fingerprint
(:mod:`repro.char.fingerprint`).  Appends are flushed per line, so a
killed build loses at most the entries still in flight; duplicate
fingerprints resolve last-wins (a re-characterization supersedes the
old value without rewriting history).  Values use the Python JSON
dialect (``Infinity``/``NaN`` literals), matching the engine
checkpoint convention that a diverged metric is data.

Entries are **never invalidated in place**: a solver or device change
changes the fingerprints the build layer asks for, so stale entries
simply stop being found.  ``repro char status`` reports them.

The **grid payloads** are compiled npz snapshots of one spec's
completed grid (value + presence arrays over the spec axes) written
after every successful build — the query layer loads them directly
instead of re-scanning the index.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.char.fingerprint import CHAR_SCHEMA, entry_fingerprint
from repro.char.spec import CharEntry, CharSpec
from repro.telemetry import core as telemetry

__all__ = ["CharStore", "StoreStatus", "DEFAULT_STORE_DIR", "spec_digest"]

DEFAULT_STORE_DIR = "results/char"

_INDEX_SCHEMA = "repro.char.index/v1"
_GRID_SCHEMA = "repro.char.grid/v1"


@dataclass
class StoreStatus:
    """How much of one spec the store currently holds."""

    spec: str
    total: int
    present: int
    failed: int
    stale: int

    @property
    def missing(self) -> int:
        return self.total - self.present

    def to_json(self) -> dict:
        return {
            "spec": self.spec,
            "total": self.total,
            "present": self.present,
            "missing": self.missing,
            "failed": self.failed,
            "stale": self.stale,
        }

    def summary(self) -> str:
        return (
            f"{self.spec}: {self.present}/{self.total} entries present, "
            f"{self.missing} missing ({self.failed} recorded failures, "
            f"{self.stale} stale from older solver/device configurations)"
        )


class CharStore:
    """Directory-backed characterization store; see the module docstring."""

    def __init__(self, directory: str | Path = DEFAULT_STORE_DIR):
        self.directory = Path(directory)
        self._index_cache: dict[str, dict] | None = None
        self._index_token: tuple[int, int] | None = None

    # -- paths -------------------------------------------------------------

    @property
    def index_path(self) -> Path:
        return self.directory / "index.jsonl"

    def grid_path(self, spec: CharSpec) -> Path:
        return self.directory / "grids" / f"{spec_digest(spec)}.npz"

    def checkpoint_path(self, spec: CharSpec) -> Path:
        return self.directory / "checkpoints" / f"{spec_digest(spec)}.jsonl"

    @property
    def table_cache_dir(self) -> Path:
        return self.directory / "table_cache"

    # -- index reading -----------------------------------------------------

    def index_token(self) -> tuple[int, int] | None:
        """Cheap change token for the index: ``(mtime_ns, size)``.

        Size participates because a concurrent writer can append twice
        within one mtime tick — mtime alone would serve a stale cache.
        ``None`` when no index exists yet.
        """
        try:
            stat = self.index_path.stat()
        except FileNotFoundError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def refresh(self) -> None:
        """Drop the index cache so the next read hits the disk."""
        self._index_cache, self._index_token = None, None

    def load_index(self) -> dict[str, dict]:
        """All entry records by fingerprint (last-wins), cached by
        ``(mtime, size)`` token.

        Reads tolerate a concurrent writer: a torn trailing line (kill
        or in-flight append) is ignored, and a torn *header* (the index
        file caught mid-creation) reads as an empty index without being
        cached, so the next read sees the completed file.  An index
        written by a different schema still raises.
        """
        token = self.index_token()
        if token is None:
            self._index_cache, self._index_token = {}, None
            return {}
        if self._index_cache is not None and self._index_token == token:
            return self._index_cache

        records: dict[str, dict] = {}
        with self.index_path.open() as handle:
            header_line = handle.readline().strip()
            if header_line:
                try:
                    header = json.loads(header_line)
                except json.JSONDecodeError:
                    # Mid-creation: the writer has opened the file but
                    # not finished the header line yet.
                    return {}
                if header.get("schema") != _INDEX_SCHEMA:
                    raise ValueError(
                        f"{self.index_path} has schema {header.get('schema')!r}, "
                        f"expected {_INDEX_SCHEMA!r}"
                    )
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail from an interrupted append
                records[str(record["fp"])] = record
        self._index_cache, self._index_token = records, token
        return records

    def index_summary(self) -> dict:
        """Whole-index counts for machine consumers (``status --json``)."""
        records = self.load_index()
        ok = sum(1 for r in records.values() if r.get("status") == "ok")
        return {
            "path": str(self.index_path),
            "entries": len(records),
            "ok": ok,
            "failed": len(records) - ok,
        }

    def get(self, fingerprint: str) -> dict | None:
        return self.load_index().get(fingerprint)

    def value(self, point, metric: str) -> float | None:
        """The stored value at one point, or ``None`` when absent/failed."""
        record = self.get(entry_fingerprint(point, metric))
        if record is None or record.get("status") != "ok":
            return None
        return float(record["value"])

    # -- index writing -----------------------------------------------------

    def append(self, records: list[dict]) -> None:
        """Append entry records, creating the index (with header) first.

        Each line is flushed immediately — an interrupted build keeps
        everything that was appended before the kill.
        """
        if not records:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        fresh = not self.index_path.exists()
        with self.index_path.open("a") as handle:
            if fresh:
                handle.write(json.dumps({"schema": _INDEX_SCHEMA}) + "\n")
            for record in records:
                handle.write(json.dumps(record) + "\n")
                handle.flush()
        self._index_cache = None
        tel = telemetry.active()
        if tel is not None:
            tel.count("char.store.appends", len(records))

    @staticmethod
    def entry_record(entry: CharEntry, fingerprint: str, *, value=None,
                     status: str = "ok", wall_s: float = 0.0,
                     error_type: str | None = None, error: str | None = None) -> dict:
        record = {
            "fp": fingerprint,
            "schema": CHAR_SCHEMA,
            **entry.point.coords(),
            "metric": entry.metric,
            "status": status,
            "value": value,
            "wall_s": round(float(wall_s), 6),
        }
        if error_type is not None:
            record["error_type"] = error_type
            record["error"] = error
        return record

    # -- spec-level views --------------------------------------------------

    def status(self, spec: CharSpec) -> StoreStatus:
        """Coverage of one spec: present / failed / missing / stale."""
        index = self.load_index()
        coords_seen = {_coords_key(r): r for r in index.values()}
        present = failed = stale = 0
        entries = spec.entries()
        for entry in entries:
            fp = entry_fingerprint(entry.point, entry.metric)
            record = index.get(fp)
            if record is not None:
                if record.get("status") == "ok":
                    present += 1
                else:
                    failed += 1
                continue
            old = coords_seen.get(_entry_coords_key(entry))
            if old is not None:
                stale += 1
        return StoreStatus(
            spec=spec.name,
            total=len(entries),
            present=present,
            failed=failed,
            stale=stale,
        )

    # -- compiled grid payloads -------------------------------------------

    def compile_grid(self, spec: CharSpec) -> Path:
        """Snapshot the spec's completed entries into an npz grid payload.

        Arrays are indexed ``[design, corner, beta, vdd]`` over the
        spec's axes; absent or failed entries are NaN with a zero
        presence mask.  Written atomically so readers never observe a
        partial payload.
        """
        index = self.load_index()
        shape = (
            len(spec.designs), len(spec.corners), len(spec.betas), len(spec.vdds),
        )
        axis_of = {
            "design": {v: i for i, v in enumerate(spec.designs)},
            "corner": {v: i for i, v in enumerate(spec.corners)},
            "beta": {v: i for i, v in enumerate(spec.betas)},
            "vdd": {v: i for i, v in enumerate(spec.vdds)},
        }
        values = {m: np.full(shape, np.nan) for m in spec.metrics}
        mask = {m: np.zeros(shape, dtype=np.int8) for m in spec.metrics}
        fps: dict[str, np.ndarray] = {
            m: np.full(shape, "", dtype="U64") for m in spec.metrics
        }
        for entry in spec.entries():
            point = entry.point
            loc = (
                axis_of["design"][point.design],
                axis_of["corner"][point.corner],
                axis_of["beta"][point.beta],
                axis_of["vdd"][point.vdd],
            )
            fp = entry_fingerprint(point, entry.metric)
            fps[entry.metric][loc] = fp
            record = index.get(fp)
            if record is not None and record.get("status") == "ok":
                values[entry.metric][loc] = float(record["value"])
                mask[entry.metric][loc] = 1

        path = self.grid_path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays = {"spec_json": np.array(json.dumps(spec.to_json()))}
        for metric in spec.metrics:
            arrays[f"value_{metric}"] = values[metric]
            arrays[f"mask_{metric}"] = mask[metric]
            arrays[f"fp_{metric}"] = fps[metric]
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.stem, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, format=_GRID_SCHEMA, **arrays)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path


def spec_digest(spec: CharSpec) -> str:
    """Filename-safe digest of a spec's full axis/metric content."""
    import hashlib

    canonical = json.dumps(spec.to_json(), sort_keys=True, separators=(",", ":"))
    return f"{spec.name}-{hashlib.sha256(canonical.encode()).hexdigest()[:12]}"


def _coords_key(record: dict) -> tuple:
    return (
        record.get("design"), record.get("corner"),
        record.get("beta"), record.get("vdd"), record.get("metric"),
    )


def _entry_coords_key(entry: CharEntry) -> tuple:
    c = entry.point.coords()
    return (c["design"], c["corner"], c["beta"], c["vdd"], entry.metric)
