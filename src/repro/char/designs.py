"""The characterizable cell designs and their measurement policies.

A :class:`CharDesign` is the bridge between a spec's ``design`` axis
value and a concrete simulable cell: how to build it (optionally at a
swept beta and a process corner), which read assist its canonical
configuration uses, which metrics are defined for it, and the
measurement windows its technology needs (TFET drive collapses at low
V_DD, so the TFET cells measure delays with widened wordline windows —
the same policy the paper's Fig. 11 uses).

Everything here is plain data + module-level builders, so a design
reference travels to engine worker processes by name.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CharDesign", "DESIGNS", "build_cell", "delay_windows"]

ALL_METRICS = (
    "hold_power",
    "drnm",
    "snm",
    "wl_crit",
    "read_delay",
    "write_delay",
    "read_energy",
    "write_energy",
)


@dataclass(frozen=True)
class CharDesign:
    """Plain-data description of one characterizable design."""

    name: str
    technology: str
    """``"tfet"`` or ``"cmos"`` — selects the device fingerprint the
    entries depend on, so a TFET table change never invalidates CMOS
    entries (and vice versa)."""

    corner_sensitive: bool
    """Whether corner device cards apply (TFET designs only)."""

    beta_sweepable: bool
    """Whether the cell ratio is a free axis for this design."""

    metrics: tuple[str, ...] = ALL_METRICS
    """Metrics defined for this design."""

    read_assist: str | None = None
    """``READ_ASSISTS`` entry the canonical configuration reads with."""

    hold_average_states: bool = True
    """Average the two stored states for ``hold_power`` (the outward
    cell is characterized in its leaky state, as in the paper)."""

    wide_delay_windows: bool = False
    """Measure delays with the widened low-V_DD wordline windows."""


def _no(*names):
    return tuple(m for m in ALL_METRICS if m not in names)


DESIGNS: dict[str, CharDesign] = {
    "proposed": CharDesign(
        name="proposed", technology="tfet", corner_sensitive=True,
        beta_sweepable=False, read_assist="vgnd_lowering",
        wide_delay_windows=True,
    ),
    "cmos": CharDesign(
        name="cmos", technology="cmos", corner_sensitive=False,
        beta_sweepable=True,
    ),
    "asym": CharDesign(
        name="asym", technology="tfet", corner_sensitive=True,
        beta_sweepable=False, metrics=_no("wl_crit"),
        wide_delay_windows=True,
    ),
    "7t": CharDesign(
        name="7t", technology="tfet", corner_sensitive=True,
        beta_sweepable=False, wide_delay_windows=True,
    ),
    "inward_p": CharDesign(
        name="inward_p", technology="tfet", corner_sensitive=True,
        beta_sweepable=True, wide_delay_windows=True,
    ),
    "inward_n": CharDesign(
        name="inward_n", technology="tfet", corner_sensitive=True,
        beta_sweepable=True, wide_delay_windows=True,
    ),
    "outward_n": CharDesign(
        name="outward_n", technology="tfet", corner_sensitive=True,
        beta_sweepable=True, hold_average_states=False,
        wide_delay_windows=True,
    ),
}


def delay_windows(design: CharDesign, vdd: float) -> tuple[float, float]:
    """``(write pulse, read duration)`` for delay metrics at ``vdd``.

    The CMOS baseline uses the analysis defaults; TFET cells get the
    widened windows of Fig. 11 so the slow low-V_DD corner can finish.
    """
    if not design.wide_delay_windows:
        return 2.0e-9, 4.0e-9
    if vdd >= 0.6:
        return 6.0e-9, 8.0e-9
    return 4.0e-8, 4.0e-8


def build_cell(design_name: str, beta: float | None = None, corner: str = "tt"):
    """Build ``(cell, read_assist)`` for one grid point.

    ``beta=None`` means the design's canonical sizing.  A non-``tt``
    corner on a corner-insensitive design is a caller bug (the spec
    compiler never emits such points).
    """
    from repro.devices.corners import corner_device_set
    from repro.experiments.designs import (
        asym_cell,
        cmos_cell,
        proposed_cell,
        seven_t_cell,
    )
    from repro.sram import READ_ASSISTS, AccessConfig, CellSizing, Tfet6TCell

    try:
        design = DESIGNS[design_name]
    except KeyError:
        known = ", ".join(sorted(DESIGNS))
        raise ValueError(f"unknown design {design_name!r}; known: {known}") from None
    if corner != "tt" and not design.corner_sensitive:
        raise ValueError(f"design {design_name!r} has no {corner!r} corner card")
    devices = corner_device_set(corner) if corner != "tt" else None

    if design_name == "proposed":
        cell = proposed_cell(devices)
    elif design_name == "cmos":
        if beta is None:
            cell = cmos_cell()
        else:
            from repro.sram import Cmos6TCell

            cell = Cmos6TCell(CellSizing().with_beta(beta))
    elif design_name == "asym":
        cell = asym_cell(devices)
    elif design_name == "7t":
        cell = seven_t_cell(devices)
    else:
        access = {
            "inward_p": AccessConfig.INWARD_P,
            "inward_n": AccessConfig.INWARD_N,
            "outward_n": AccessConfig.OUTWARD_N,
        }[design_name]
        sizing = CellSizing() if beta is None else CellSizing().with_beta(beta)
        cell = Tfet6TCell(sizing, access=access, devices=devices)

    assist = READ_ASSISTS[design.read_assist] if design.read_assist else None
    return cell, assist
