"""Declarative characterization grid specs.

A :class:`CharSpec` names a slice of the paper's design space — designs
x V_DD x process corners x (optionally) cell-ratio beta — and the list
of metrics to evaluate at every grid point.  ``entries()`` compiles the
spec into the deterministic, stable-ordered list of *entries* (one
``(point, metric)`` pair each) that the build layer turns into engine
tasks; the same compilation also drives resume, staleness checks, and
the query layer's axis handling, so every consumer agrees on what the
grid contains and in what order.

Specs are plain data: they round-trip through JSON (``repro char build
--spec my_grid.json``) and a few commonly useful grids ship as
:data:`BUILTIN_SPECS`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.char.designs import DESIGNS
from repro.char.metrics import METRICS

__all__ = [
    "CharPoint",
    "CharEntry",
    "CharSpec",
    "BUILTIN_SPECS",
    "load_spec",
    "resolve_spec",
]


@dataclass(frozen=True)
class CharPoint:
    """One grid point: a concrete cell design condition.

    ``beta`` is ``None`` when the design runs at its canonical sizing
    (the spec did not sweep the cell ratio).
    """

    design: str
    corner: str
    vdd: float
    beta: float | None = None

    def coords(self) -> dict:
        return {
            "design": self.design,
            "corner": self.corner,
            "vdd": self.vdd,
            "beta": self.beta,
        }

    def label(self) -> str:
        beta = "" if self.beta is None else f" beta={self.beta:g}"
        return f"{self.design}@{self.vdd:g}V/{self.corner}{beta}"


@dataclass(frozen=True)
class CharEntry:
    """One unit of characterization work: a metric at a point.

    ``index`` is the entry's position in the spec's full compiled list
    — the engine task index, so per-task seeds and checkpoint lines
    stay aligned across partial rebuilds.
    """

    index: int
    point: CharPoint
    metric: str


@dataclass(frozen=True)
class CharSpec:
    """A characterization grid: axes plus the metric list."""

    name: str
    designs: tuple[str, ...]
    vdds: tuple[float, ...]
    metrics: tuple[str, ...]
    corners: tuple[str, ...] = ("tt",)
    betas: tuple[float | None, ...] = (None,)

    def __post_init__(self) -> None:
        from repro.devices.corners import CORNERS

        if not self.name:
            raise ValueError("spec needs a name")
        for label, values in (
            ("designs", self.designs),
            ("vdds", self.vdds),
            ("metrics", self.metrics),
            ("corners", self.corners),
            ("betas", self.betas),
        ):
            if not values:
                raise ValueError(f"spec {self.name!r}: {label} axis is empty")
            if len(set(values)) != len(values):
                raise ValueError(f"spec {self.name!r}: duplicate values on {label}")
        for design in self.designs:
            if design not in DESIGNS:
                known = ", ".join(sorted(DESIGNS))
                raise ValueError(
                    f"spec {self.name!r}: unknown design {design!r}; known: {known}"
                )
        for metric in self.metrics:
            if metric not in METRICS:
                known = ", ".join(sorted(METRICS))
                raise ValueError(
                    f"spec {self.name!r}: unknown metric {metric!r}; known: {known}"
                )
        for corner in self.corners:
            if corner not in CORNERS:
                known = ", ".join(sorted(CORNERS))
                raise ValueError(
                    f"spec {self.name!r}: unknown corner {corner!r}; known: {known}"
                )
        for vdd in self.vdds:
            if not 0.0 < float(vdd) <= 2.0:
                raise ValueError(f"spec {self.name!r}: vdd {vdd} out of (0, 2] V")
        for beta in self.betas:
            if beta is not None and float(beta) <= 0.0:
                raise ValueError(f"spec {self.name!r}: beta must be positive")
        if tuple(sorted(self.vdds)) != tuple(self.vdds):
            raise ValueError(f"spec {self.name!r}: vdds must be sorted ascending")
        # The query layer's bracketing assumes ascending numeric axes;
        # None (the canonical-sizing case) may lead the axis.
        numeric_betas = tuple(b for b in self.betas if b is not None)
        if tuple(sorted(numeric_betas)) != numeric_betas:
            raise ValueError(
                f"spec {self.name!r}: numeric betas must be sorted ascending"
            )

    # -- compilation -------------------------------------------------------

    def points(self) -> list[CharPoint]:
        """The grid points in deterministic order (design-major).

        Points a design cannot realize are skipped at compile time:
        corner cards are TFET oxide scales, so corner-insensitive
        designs (the CMOS baseline) appear only at ``tt``; designs with
        a fixed topology-defined sizing appear only at ``beta=None``.
        """
        points = []
        for design_name in self.designs:
            design = DESIGNS[design_name]
            for corner in self.corners:
                if corner != "tt" and not design.corner_sensitive:
                    continue
                for beta in self.betas:
                    if beta is not None and not design.beta_sweepable:
                        continue
                    for vdd in self.vdds:
                        points.append(
                            CharPoint(
                                design=design_name,
                                corner=corner,
                                vdd=float(vdd),
                                beta=None if beta is None else float(beta),
                            )
                        )
        return points

    def entries(self) -> list[CharEntry]:
        """All ``(point, metric)`` work units, indexed in stable order.

        Metrics a design does not define (``wl_crit`` on the
        separatrix-free asymmetric cell) are skipped, mirroring the
        paper's tables.
        """
        entries = []
        index = 0
        for point in self.points():
            design = DESIGNS[point.design]
            for metric in self.metrics:
                if metric not in design.metrics:
                    continue
                entries.append(CharEntry(index=index, point=point, metric=metric))
                index += 1
        return entries

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "designs": list(self.designs),
            "vdds": list(self.vdds),
            "metrics": list(self.metrics),
            "corners": list(self.corners),
            "betas": list(self.betas),
        }

    @staticmethod
    def from_json(payload: dict) -> "CharSpec":
        for key in ("name", "designs", "vdds", "metrics"):
            if key not in payload:
                raise ValueError(f"spec file is missing the {key!r} field")
        return CharSpec(
            name=str(payload["name"]),
            designs=tuple(payload["designs"]),
            vdds=tuple(float(v) for v in payload["vdds"]),
            metrics=tuple(payload["metrics"]),
            corners=tuple(payload.get("corners", ("tt",))),
            betas=tuple(
                None if b is None else float(b) for b in payload.get("betas", (None,))
            ),
        )


BUILTIN_SPECS: dict[str, CharSpec] = {
    # The V_DD slice the paper's comparison artifacts live on: serves
    # fig11 (delays), fig12 (margins), and the static-power table.
    "nominal": CharSpec(
        name="nominal",
        designs=("cmos", "proposed", "asym", "7t", "outward_n"),
        vdds=(0.5, 0.6, 0.7, 0.8, 0.9),
        metrics=("hold_power", "drnm", "wl_crit", "read_delay", "write_delay"),
    ),
    # The Section 3 cell-ratio sweep behind fig04.
    "beta_sweep": CharSpec(
        name="beta_sweep",
        designs=("inward_p", "inward_n", "cmos"),
        vdds=(0.8,),
        metrics=("drnm", "wl_crit"),
        betas=(0.4, 0.6, 0.8, 1.0, 1.5, 2.0, 3.0),
    ),
    # The variation band of Saurabh & Kumar: the proposed cell across
    # all five process corners.
    "corners": CharSpec(
        name="corners",
        designs=("proposed",),
        vdds=(0.6, 0.7, 0.8),
        metrics=("hold_power", "drnm", "wl_crit"),
        corners=("tt", "ff", "ss", "fs", "sf"),
    ),
}


def load_spec(path: str | Path) -> CharSpec:
    """Read a spec from a JSON file."""
    return CharSpec.from_json(json.loads(Path(path).read_text()))


def resolve_spec(name_or_path: str) -> CharSpec:
    """A built-in spec by name, or a JSON spec file by path."""
    if name_or_path in BUILTIN_SPECS:
        return BUILTIN_SPECS[name_or_path]
    path = Path(name_or_path)
    if path.exists():
        return load_spec(path)
    known = ", ".join(sorted(BUILTIN_SPECS))
    raise ValueError(
        f"unknown spec {name_or_path!r}: not a built-in ({known}) "
        "and no such file"
    )
