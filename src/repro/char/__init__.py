"""Incremental design-space characterization (``repro.char``).

This subsystem turns the paper's scattered per-figure simulation loops
into one reusable asset: a **content-addressed store of characterized
grid points** plus a **query layer** over it.

* :mod:`repro.char.spec` — declarative grid specs (designs x V_DD x
  corners x beta, times a metric list) compiled into stable-ordered
  entries.
* :mod:`repro.char.fingerprint` — the content address of an entry:
  point + metric procedure + solver defaults + behavioral device
  digest.  Change the solver or a device table and exactly the
  affected entries go stale.
* :mod:`repro.char.store` — the on-disk store: append-only JSONL index
  keyed by fingerprint, plus compiled npz grid payloads per spec.
* :mod:`repro.char.build` — incremental, resumable builds through
  :mod:`repro.engine` (checkpointed batches, parallel workers,
  ``--verify`` sampling).
* :mod:`repro.char.query` — interpolated point queries with
  nearest-simulated-point provenance, and the exact-lookup serving
  path experiments use to become thin reads.

Quick start::

    from repro.char import BUILTIN_SPECS, CharGrid, CharStore, build_grid

    store = CharStore("results/char")
    build_grid(BUILTIN_SPECS["nominal"], store, jobs=4)
    grid = CharGrid.from_store(store, BUILTIN_SPECS["nominal"])
    answer = grid.query("drnm", design="proposed", vdd=0.65)
"""

from repro.char.build import BuildReport, build_grid, plan_build
from repro.char.designs import DESIGNS, CharDesign
from repro.char.fingerprint import (
    clear_fingerprint_cache,
    device_fingerprint,
    entry_fingerprint,
    solver_fingerprint,
)
from repro.char.metrics import METRICS, MetricDef, evaluate_metric
from repro.char.query import (
    CharAnswer,
    CharGrid,
    CharQueryError,
    as_store,
    metric_reader,
    stored_value,
)
from repro.char.spec import (
    BUILTIN_SPECS,
    CharEntry,
    CharPoint,
    CharSpec,
    load_spec,
    resolve_spec,
)
from repro.char.store import DEFAULT_STORE_DIR, CharStore, StoreStatus, spec_digest

__all__ = [
    "BUILTIN_SPECS",
    "BuildReport",
    "CharAnswer",
    "CharDesign",
    "CharEntry",
    "CharGrid",
    "CharPoint",
    "CharQueryError",
    "CharSpec",
    "CharStore",
    "DEFAULT_STORE_DIR",
    "DESIGNS",
    "METRICS",
    "MetricDef",
    "StoreStatus",
    "as_store",
    "build_grid",
    "clear_fingerprint_cache",
    "device_fingerprint",
    "entry_fingerprint",
    "evaluate_metric",
    "load_spec",
    "metric_reader",
    "plan_build",
    "resolve_spec",
    "solver_fingerprint",
    "spec_digest",
    "stored_value",
]
