"""Querying characterized grids: interpolation with provenance.

Two consumption styles:

* **Exact serving** (:func:`stored_value`) — experiments ask the store
  for the exact grid point they would otherwise simulate; a hit is a
  free result, a miss falls back to simulation.  No spec needed: the
  point's content address is the lookup key.
* **Interpolated queries** (:class:`CharGrid`) — a designer asks for a
  metric at an *uncharacterized* operating point
  (``DRNM(vdd=0.45)``); the grid answers by interpolating along the
  numeric axes (V_DD, and beta when the spec swept it) and attaches
  the nearest simulated point as provenance, so every answer can be
  traced back to a real simulation.

Interpolation: multilinear over the numeric axes, upgraded to a
Catmull-Rom cubic along V_DD when four or more supply points are
characterized.  Metrics tagged ``transform="log"`` (power, delay,
energy — they span decades) are interpolated in log10 space; when a
participating sample is non-finite or non-positive (an unwritable
cell's ``inf``), the query degrades to nearest-neighbour and says so
in ``notes`` instead of inventing numbers.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.char.fingerprint import entry_fingerprint
from repro.char.metrics import METRICS
from repro.char.spec import CharPoint, CharSpec
from repro.char.store import CharStore
from repro.telemetry import core as telemetry

__all__ = [
    "CharAnswer",
    "CharGrid",
    "CharQueryError",
    "as_store",
    "metric_reader",
    "stored_value",
]


class CharQueryError(LookupError):
    """The grid cannot answer: axis out of range or entries missing.

    ``reason`` classifies the failure for programmatic consumers (the
    serving daemon routes on it):

    * ``"bad-request"`` — the query itself is invalid (unknown method,
      cubic on an ineligible axis); no amount of characterization helps;
    * ``"off-grid"`` — the metric/design/corner/beta is not on this
      grid's axes (another grid, or a backfill, may hold it);
    * ``"out-of-range"`` — a numeric axis value lies outside the
      characterized range;
    * ``"missing-entry"`` — the bracketing entries exist on the axes
      but have not been characterized yet.
    """

    def __init__(self, message: str, reason: str = "bad-request"):
        super().__init__(message)
        self.reason = reason


# -- exact serving ---------------------------------------------------------


def as_store(store) -> CharStore | None:
    """Coerce ``None`` / path / :class:`CharStore` to a store handle."""
    if store is None or isinstance(store, CharStore):
        return store
    return CharStore(store)


def stored_value(
    store: CharStore,
    metric: str,
    design: str,
    vdd: float,
    beta: float | None = None,
    corner: str = "tt",
) -> float | None:
    """The exact stored value for one grid point, or ``None`` on a miss.

    This is the experiments' thin-read path: a pre-built store turns a
    figure regeneration into index lookups.
    """
    point = CharPoint(design=design, corner=corner, vdd=float(vdd), beta=beta)
    value = store.value(point, metric)
    tel = telemetry.active()
    if tel is not None:
        tel.count("char.serve.hits" if value is not None else "char.serve.misses")
    return value


def metric_reader(char_store):
    """A serve-or-simulate closure for the experiments.

    ``read(metric, design, vdd, compute, ...)`` returns the stored
    exact value when the store has it, else calls ``compute()`` (the
    experiment's own simulation).  With ``char_store=None`` every call
    simulates — the experiments' default behavior is untouched.
    """
    store = as_store(char_store)

    def read(metric, design, vdd, compute, beta=None, corner="tt"):
        if store is not None:
            value = stored_value(store, metric, design, vdd, beta=beta, corner=corner)
            if value is not None:
                return value
        return compute()

    return read


# -- interpolated queries --------------------------------------------------


@dataclass(frozen=True)
class CharAnswer:
    """One query answer with its simulation provenance."""

    metric: str
    unit: str
    value: float
    coords: dict
    method: str
    """``exact`` | ``linear`` | ``cubic`` | ``nearest``."""

    nearest: dict
    """The nearest *simulated* point: coords, value, fingerprint, and
    normalized axis distance — every answer names its evidence."""

    notes: tuple[str, ...] = ()

    def to_json(self) -> dict:
        return {
            "metric": self.metric,
            "unit": self.unit,
            "value": self.value,
            "coords": self.coords,
            "method": self.method,
            "nearest": self.nearest,
            "notes": list(self.notes),
        }

    def summary(self) -> str:
        near = self.nearest
        lines = [
            f"{self.metric}({_fmt_coords(self.coords)}) = {self.value:.6g} "
            f"{self.unit}  [{self.method}]",
            f"  nearest simulated point: {_fmt_coords(near['coords'])} -> "
            f"{near['value']:.6g} {self.unit} (fp {near['fp'][:12]})",
        ]
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt_coords(coords: dict) -> str:
    parts = [f"design={coords['design']}", f"vdd={coords['vdd']:g}"]
    if coords.get("beta") is not None:
        parts.append(f"beta={coords['beta']:g}")
    if coords.get("corner", "tt") != "tt":
        parts.append(f"corner={coords['corner']}")
    return ", ".join(parts)


class CharGrid:
    """One spec's characterized grid, loaded for querying.

    ``values[metric]`` is indexed ``[design, corner, beta, vdd]`` over
    the spec axes, with a parallel presence mask (absent entries are
    NaN + mask 0) and per-entry fingerprints for provenance.
    """

    def __init__(self, spec: CharSpec, values, mask, fps):
        self.spec = spec
        self.values = values
        self.mask = mask
        self.fps = fps

    # -- construction ------------------------------------------------------

    @staticmethod
    def from_store(store: CharStore | str | Path, spec: CharSpec) -> "CharGrid":
        """Load from the compiled npz payload, assembling it if absent
        or stale (fingerprint set changed since it was compiled).

        Tolerates a concurrent ``build_grid`` writer: when a payload
        compiled from a just-read index immediately looks stale again
        (the writer appended between the read and the load), the index
        is re-read and the payload recompiled a bounded number of
        times, then the latest snapshot is served — reads never error
        out just because a build is in flight.
        """
        store = as_store(store)
        path = store.grid_path(spec)
        for _ in range(3):
            if path.exists() and not _payload_stale(path, spec):
                break
            store.refresh()
            store.compile_grid(spec)
        return CharGrid.from_npz(path)

    @staticmethod
    def from_npz(path: str | Path) -> "CharGrid":
        with np.load(path) as data:
            spec = CharSpec.from_json(json.loads(str(data["spec_json"])))
            values = {m: np.array(data[f"value_{m}"]) for m in spec.metrics}
            mask = {m: np.array(data[f"mask_{m}"]) for m in spec.metrics}
            fps = {m: np.array(data[f"fp_{m}"]) for m in spec.metrics}
        return CharGrid(spec, values, mask, fps)

    # -- queries -----------------------------------------------------------

    def query(
        self,
        metric: str,
        design: str,
        vdd: float,
        beta: float | None = None,
        corner: str = "tt",
        method: str = "auto",
    ) -> CharAnswer:
        """Answer a point query; see the module docstring.

        ``method``: ``auto`` (cubic along V_DD when eligible, else
        multilinear), ``linear``, ``cubic``, or ``nearest``.
        """
        if metric not in self.spec.metrics:
            raise CharQueryError(
                f"metric {metric!r} is not in spec {self.spec.name!r} "
                f"(has: {', '.join(self.spec.metrics)})",
                reason="off-grid",
            )
        if method not in ("auto", "linear", "cubic", "nearest"):
            raise CharQueryError(f"unknown method {method!r}")
        d_idx = self._axis_index("design", design, self.spec.designs)
        c_idx = self._axis_index("corner", corner, self.spec.corners)
        b_idx, b_frac, beta_axis = self._numeric_axis(
            "beta", beta, self.spec.betas
        )
        v_idx, v_frac, vdd_axis = self._numeric_axis("vdd", vdd, self.spec.vdds)

        metric_def = METRICS[metric]
        plane = self.values[metric][d_idx, c_idx]
        plane_mask = self.mask[metric][d_idx, c_idx]
        plane_fps = self.fps[metric][d_idx, c_idx]
        coords = {"design": design, "corner": corner, "beta": beta, "vdd": float(vdd)}

        # Collect the multilinear corner set (1, 2, or 4 samples).
        corner_locs = [
            (bi, vi)
            for bi in {b_idx, b_idx + (1 if b_frac > 0.0 else 0)}
            for vi in {v_idx, v_idx + (1 if v_frac > 0.0 else 0)}
        ]
        for bi, vi in corner_locs:
            if not plane_mask[bi, vi]:
                raise CharQueryError(
                    f"grid incomplete: entry ({design}, corner={corner}, "
                    f"beta={self.spec.betas[bi]}, vdd={self.spec.vdds[vi]:g}) "
                    f"for {metric!r} has not been characterized — run "
                    f"`repro char build` first",
                    reason="missing-entry",
                )

        nearest = self._nearest(
            plane, plane_fps, design, corner, b_idx, b_frac, v_idx, v_frac
        )
        notes: list[str] = []
        exact = b_frac == 0.0 and v_frac == 0.0
        if exact:
            value = float(plane[b_idx, v_idx])
            return CharAnswer(
                metric=metric, unit=metric_def.unit, value=value, coords=coords,
                method="exact", nearest=nearest,
            )
        if method == "nearest":
            return CharAnswer(
                metric=metric, unit=metric_def.unit, value=nearest["value"],
                coords=coords, method="nearest", nearest=nearest,
            )

        samples = np.array([[plane[bi, vi] for bi, vi in corner_locs]])
        log_space = metric_def.transform == "log"
        if log_space and not np.all(np.isfinite(samples) & (samples > 0.0)):
            notes.append(
                "log-scale metric with non-finite/non-positive neighbours; "
                "degraded to nearest simulated point"
            )
            return CharAnswer(
                metric=metric, unit=metric_def.unit, value=nearest["value"],
                coords=coords, method="nearest", nearest=nearest,
                notes=tuple(notes),
            )
        if not np.all(np.isfinite(samples)):
            notes.append(
                "non-finite neighbours; degraded to nearest simulated point"
            )
            return CharAnswer(
                metric=metric, unit=metric_def.unit, value=nearest["value"],
                coords=coords, method="nearest", nearest=nearest,
                notes=tuple(notes),
            )

        use_cubic = (
            method in ("auto", "cubic")
            and b_frac == 0.0
            and len(vdd_axis) >= 4
        )
        if method == "cubic" and not use_cubic:
            raise CharQueryError(
                "cubic interpolation needs >= 4 characterized V_DD points "
                "and a fixed beta"
            )
        if use_cubic:
            value, how = self._cubic_vdd(
                plane[b_idx], plane_mask[b_idx], vdd_axis, vdd, log_space
            )
        else:
            value = self._multilinear(
                plane, b_idx, b_frac, v_idx, v_frac, log_space
            )
            how = "linear"
        if log_space:
            notes.append("interpolated in log10 space")
        return CharAnswer(
            metric=metric, unit=metric_def.unit, value=value, coords=coords,
            method=how, nearest=nearest, notes=tuple(notes),
        )

    # -- internals ---------------------------------------------------------

    def _axis_index(self, name: str, value, axis) -> int:
        try:
            return axis.index(value)
        except ValueError:
            raise CharQueryError(
                f"{name} {value!r} is not on the grid (axis: "
                f"{', '.join(str(v) for v in axis)})",
                reason="off-grid",
            ) from None

    def _numeric_axis(self, name: str, value, axis) -> tuple[int, float, list]:
        """``(lower index, fraction, numeric axis)`` for one numeric axis.

        ``fraction`` is 0 for an exact hit; otherwise the position
        inside the bracketing cell.  Categorical use of beta
        (``None``) is an exact index like any other value.
        """
        if name == "beta" and (value is None or None in axis):
            if value is not None and value in axis:
                return axis.index(value), 0.0, []
            if value is None:
                return self._axis_index(name, None, axis), 0.0, []
            # Numeric beta requested against a grid that also has None:
            # only exact matches make sense.
            raise CharQueryError(
                f"beta={value:g} is not on the grid (characterized betas: "
                f"{', '.join(str(b) for b in axis)})",
                reason="off-grid",
            )
        numeric = [float(v) for v in axis]
        x = float(value)
        if not numeric[0] <= x <= numeric[-1]:
            raise CharQueryError(
                f"{name}={x:g} is outside the characterized range "
                f"[{numeric[0]:g}, {numeric[-1]:g}] — extend the spec and "
                "rebuild instead of extrapolating",
                reason="out-of-range",
            )
        for i, v in enumerate(numeric):
            if math.isclose(x, v, rel_tol=1e-9, abs_tol=1e-12):
                return i, 0.0, numeric
        hi = next(i for i, v in enumerate(numeric) if v > x)
        lo = hi - 1
        frac = (x - numeric[lo]) / (numeric[hi] - numeric[lo])
        return lo, frac, numeric

    def _nearest(self, plane, plane_fps, design, corner, b_idx, b_frac, v_idx, v_frac):
        bi = b_idx + (1 if b_frac > 0.5 else 0)
        vi = v_idx + (1 if v_frac > 0.5 else 0)
        distance = math.hypot(min(b_frac, 1.0 - b_frac), min(v_frac, 1.0 - v_frac))
        return {
            "coords": {
                "design": design,
                "corner": corner,
                "beta": self.spec.betas[bi],
                "vdd": self.spec.vdds[vi],
            },
            "value": float(plane[bi, vi]),
            "fp": str(plane_fps[bi, vi]),
            "distance": round(distance, 6),
        }

    @staticmethod
    def _transform(values, log_space):
        return np.log10(values) if log_space else values

    @staticmethod
    def _untransform(value, log_space):
        return float(10.0 ** value) if log_space else float(value)

    def _multilinear(self, plane, b_idx, b_frac, v_idx, v_frac, log_space) -> float:
        b1 = b_idx + (1 if b_frac > 0.0 else 0)
        v1 = v_idx + (1 if v_frac > 0.0 else 0)
        f = self._transform(
            np.array(
                [
                    [plane[b_idx, v_idx], plane[b_idx, v1]],
                    [plane[b1, v_idx], plane[b1, v1]],
                ]
            ),
            log_space,
        )
        along_v0 = f[0, 0] * (1 - v_frac) + f[0, 1] * v_frac
        along_v1 = f[1, 0] * (1 - v_frac) + f[1, 1] * v_frac
        return self._untransform(
            along_v0 * (1 - b_frac) + along_v1 * b_frac, log_space
        )

    def _cubic_vdd(self, line, line_mask, vdd_axis, vdd, log_space):
        """``(value, method)``: Catmull-Rom along V_DD, clamped ends.

        Falls back to linear (and says so in the returned method) for a
        segment whose wider 4-point stencil is incomplete, so one
        missing or infinite entry never blocks the rest of the axis.
        """
        x = np.asarray(vdd_axis)
        hi = int(np.searchsorted(x, vdd))
        hi = max(1, min(hi, len(x) - 1))
        lo = hi - 1
        t = (vdd - x[lo]) / (x[hi] - x[lo])
        stencil = [i for i in (lo - 1, lo, hi, hi + 1) if 0 <= i < len(x)]
        if not all(line_mask[i] for i in stencil) or not np.all(
            np.isfinite(line[stencil])
        ):
            f = self._transform(np.array([line[lo], line[hi]]), log_space)
            return self._untransform(f[0] * (1 - t) + f[1] * t, log_space), "linear"
        f = self._transform(np.array(line[stencil]), log_space)
        values = dict(zip(stencil, f))
        p1, p2 = values[lo], values[hi]
        # Boundary segments use linearly extrapolated ghost points, so
        # linear data stays exactly linear at the grid edges.
        p0 = values.get(lo - 1, 2.0 * p1 - p2)
        p3 = values.get(hi + 1, 2.0 * p2 - p1)
        # Standard uniform Catmull-Rom.
        t2, t3 = t * t, t * t * t
        value = (
            0.5
            * (
                (2.0 * p1)
                + (-p0 + p2) * t
                + (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * t2
                + (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * t3
            )
        )
        return self._untransform(value, log_space), "cubic"


def _payload_stale(path: Path, spec: CharSpec) -> bool:
    """A compiled payload is stale when its fingerprints no longer match
    the current environment (or it predates entries now in the index).

    Every entry is checked: fingerprints are per-technology and
    per-metric, so sampling a subset would miss, e.g., a TFET
    recalibration on a mixed-technology spec whose sampled entries all
    sit on the CMOS baseline."""
    try:
        grid = CharGrid.from_npz(path)
    except Exception:
        return True
    if grid.spec.to_json() != spec.to_json():
        return True
    axis_of = {
        "design": {v: i for i, v in enumerate(spec.designs)},
        "corner": {v: i for i, v in enumerate(spec.corners)},
        "beta": {v: i for i, v in enumerate(spec.betas)},
        "vdd": {v: i for i, v in enumerate(spec.vdds)},
    }
    for entry in spec.entries():
        fp = entry_fingerprint(entry.point, entry.metric)
        loc = (
            axis_of["design"][entry.point.design],
            axis_of["corner"][entry.point.corner],
            axis_of["beta"][entry.point.beta],
            axis_of["vdd"][entry.point.vdd],
        )
        if str(grid.fps[entry.metric][loc]) != fp:
            return True
    return False
