"""Content-addressed keys for characterization entries.

An entry's fingerprint answers one question: *would re-simulating this
point produce the same number the store already holds?*  It hashes
together everything the simulated value depends on:

* the **point coordinates** (design, corner, beta, V_DD) and the
  **metric** with its procedure ``version`` and measurement windows;
* the **solver configuration** — the Newton and transient defaults the
  analyses run with;
* the **device behavior** the design's technology rests on — probe
  currents sampled from the actual calibrated device cards (TFET table
  or MOSFET pair), so *any* change that shifts device I-V (physics,
  calibration targets, table generation) shifts the fingerprint.

Fingerprints are per-technology: a TFET table change invalidates only
TFET-design entries; retuning the CMOS baseline leaves them untouched.
Stale entries are simply entries whose fingerprint no longer matches —
the store never deletes them, the build layer just stops finding them.

The device probes evaluate the cached device cards at a fixed small
voltage grid (cheap — the cards are process-cached), and the digests
are memoized per process.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from functools import lru_cache

import numpy as np

__all__ = [
    "CHAR_SCHEMA",
    "solver_fingerprint",
    "device_fingerprint",
    "entry_fingerprint",
]

CHAR_SCHEMA = "repro.char/v1"

_PROBE_VOLTAGES = (-1.0, -0.4, 0.0, 0.3, 0.6, 0.9)
"""Bias grid the device cards are probed on (covers reverse leakage,
subthreshold, and on-state)."""


def _digest(payload) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _probe_currents(device) -> list[str]:
    """Probe-current signature of one device card, as stable hex."""
    v = np.asarray(_PROBE_VOLTAGES, dtype=float)
    vgs, vds = np.meshgrid(v, v, indexing="ij")
    currents = np.asarray(device.current_density(vgs, vds), dtype=float)
    return [f"{x:.12e}" for x in currents.ravel()]


@lru_cache(maxsize=None)
def solver_fingerprint() -> str:
    """Digest of the solver defaults every analysis runs with."""
    from repro.circuit.dcop import SolverOptions
    from repro.circuit.transient import TransientOptions

    return _digest(
        {
            "solver": asdict(SolverOptions()),
            "transient": asdict(TransientOptions()),
        }
    )


@lru_cache(maxsize=None)
def _tfet_fingerprint() -> str:
    from repro.devices.library import tfet_device

    return _digest({"tfet_probe": _probe_currents(tfet_device())})


@lru_cache(maxsize=None)
def _cmos_fingerprint() -> str:
    from repro.devices.library import nmos_device, pmos_device

    return _digest(
        {
            "nmos_probe": _probe_currents(nmos_device()),
            "pmos_probe": _probe_currents(pmos_device()),
        }
    )


def device_fingerprint(technology: str) -> str:
    """Behavioral digest of the device cards a technology rests on."""
    if technology == "tfet":
        return _tfet_fingerprint()
    if technology == "cmos":
        return _cmos_fingerprint()
    raise ValueError(f"unknown technology {technology!r}")


def clear_fingerprint_cache() -> None:
    """Drop memoized digests (tests that tweak devices or solvers)."""
    solver_fingerprint.cache_clear()
    _tfet_fingerprint.cache_clear()
    _cmos_fingerprint.cache_clear()


def entry_fingerprint(point, metric: str) -> str:
    """The content address of one ``(point, metric)`` entry."""
    from repro.char.designs import DESIGNS, delay_windows
    from repro.char.metrics import METRICS

    design = DESIGNS[point.design]
    metric_def = METRICS[metric]
    pulse, duration = delay_windows(design, point.vdd)
    payload = {
        "schema": CHAR_SCHEMA,
        "design": point.design,
        "corner": point.corner,
        "beta": None if point.beta is None else f"{point.beta:.12g}",
        "vdd": f"{point.vdd:.12g}",
        "metric": metric,
        "metric_version": metric_def.version,
        "windows": [f"{pulse:.12g}", f"{duration:.12g}"],
        "read_assist": design.read_assist,
        "hold_average_states": design.hold_average_states,
        "solver": solver_fingerprint(),
        "device": device_fingerprint(design.technology),
    }
    return _digest(payload)
