"""Incremental grid builds: spec -> missing entries -> engine batch -> store.

``build_grid`` is the only writer of the characterization store.  Its
contract:

* **Incremental** — only entries whose fingerprint is absent from the
  store are simulated; a second identical build compiles zero tasks,
  and a solver/device change re-simulates exactly the entries whose
  fingerprints moved.
* **Resumable** — the engine checkpoints every completed entry under
  ``<store>/checkpoints/<spec digest>.jsonl``; a build killed mid-way
  replays the finished prefix on the next run and computes only the
  remainder.  Task indices are the entries' stable spec positions, so
  the replay is exact regardless of how the pending set shrank.  The
  checkpoint's ``run_key`` folds in a digest of the pending entries'
  fingerprints, so a checkpoint written under an older solver/device
  configuration is discarded and recomputed instead of being replayed
  into the index under the new fingerprints.
* **Parallel and audited** — the batch fans out over ``jobs`` worker
  processes sharing the store's device-table cache, and
  ``verify_fraction`` sample-audits entries under :mod:`repro.verify`
  exactly as any engine workload.

Failures are recorded in the index as structured ``failed`` entries
(visible in ``repro char status``) and re-attempted by the next build.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from repro.char.fingerprint import entry_fingerprint
from repro.char.spec import CharEntry, CharSpec
from repro.char.store import CharStore, spec_digest
from repro.engine.checkpoint import CheckpointMismatch
from repro.engine.jobs import Task, TaskContext, derive_seed
from repro.engine.scheduler import EngineConfig, run_tasks
from repro.telemetry import core as telemetry

__all__ = ["BuildReport", "plan_build", "build_grid", "evaluate_entry"]


@dataclass
class BuildReport:
    """What one ``build_grid`` call did."""

    spec: str
    total: int
    reused: int
    """Entries already present in the store (not simulated)."""

    computed: int
    """Entries simulated by this build (including checkpoint replays
    from a previously killed build of the same pending set)."""

    resumed: int
    """Of ``computed``, how many were replayed from the engine
    checkpoint rather than simulated now."""

    failed: int
    wall_s: float
    failures: list[dict] = field(default_factory=list)

    def summary(self) -> str:
        fresh = self.computed - self.resumed
        lines = [
            f"{self.spec}: {self.total} entries — {self.reused} reused, "
            f"{fresh} simulated, {self.resumed} resumed from checkpoint, "
            f"{self.failed} failed ({self.wall_s:.1f} s)"
        ]
        for failure in self.failures[:5]:
            lines.append(
                f"  failed: {failure['label']} [{failure['error_type']}] "
                f"{failure['error']}"
            )
        if len(self.failures) > 5:
            lines.append(f"  ... and {len(self.failures) - 5} more failures")
        return "\n".join(lines)


def plan_build(spec: CharSpec, store: CharStore) -> tuple[list[CharEntry], int]:
    """``(pending entries, reused count)`` for one spec against the store.

    Pending = fingerprint absent or recorded as failed (failures are
    re-attempted; a recorded failure never silently poisons the grid).
    """
    index = store.load_index()
    pending: list[CharEntry] = []
    reused = 0
    for entry in spec.entries():
        record = index.get(entry_fingerprint(entry.point, entry.metric))
        if record is not None and record.get("status") == "ok":
            reused += 1
        else:
            pending.append(entry)
    return pending, reused


def evaluate_entry(payload: dict, ctx: TaskContext) -> float:
    """Engine task function: simulate one ``(point, metric)`` entry.

    Module-level and payload-driven so it pickles into worker
    processes.  The telemetry span gives every characterized point its
    own trace node when a session is active in the worker.
    """
    from repro.char.metrics import evaluate_metric

    tel = telemetry.active()
    span = (
        tel.span("char.point", metric=payload["metric"], design=payload["design"])
        if tel is not None
        else None
    )
    with span if span is not None else _null():
        return evaluate_metric(
            payload["metric"],
            payload["design"],
            payload["vdd"],
            beta=payload["beta"],
            corner=payload["corner"],
        )


class _null:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def _pending_digest(pending: list[CharEntry], fps: dict[int, str]) -> str:
    """Digest over the pending entries' fingerprints (stable order).

    Part of the checkpoint ``run_key``: it covers the solver and
    per-technology device fingerprints of every entry the batch will
    compute, so a resume never mixes configurations.
    """
    joined = "\n".join(fps[entry.index] for entry in pending)
    return hashlib.sha256(joined.encode()).hexdigest()[:16]


def build_grid(
    spec: CharSpec,
    store: CharStore | None = None,
    *,
    jobs: int = 1,
    retries: int = 1,
    timeout_s: float | None = None,
    verify_fraction: float = 0.0,
    compile_payload: bool = True,
    trace_dir: str | None = None,
    trace_id: str | None = None,
) -> BuildReport:
    """Bring the store up to date with ``spec``; see the module docstring."""
    store = store or CharStore()
    start = time.perf_counter()
    tel = telemetry.active()

    pending, reused = plan_build(spec, store)
    if tel is not None:
        tel.count("char.store.hits", reused)
        tel.count("char.store.misses", len(pending))

    resumed = failed = 0
    failures: list[dict] = []
    if pending:
        fps = {
            entry.index: entry_fingerprint(entry.point, entry.metric)
            for entry in pending
        }
        tasks = [
            Task(
                index=entry.index,
                fn=evaluate_entry,
                payload={"metric": entry.metric, **entry.point.coords()},
                seed=derive_seed(0, entry.index),
            )
            for entry in pending
        ]
        config = EngineConfig(
            jobs=jobs,
            retries=retries,
            timeout_s=timeout_s,
            checkpoint_path=store.checkpoint_path(spec),
            resume=True,
            run_key=f"char:{spec_digest(spec)}:{_pending_digest(pending, fps)}",
            root_seed=0,
            cache_dir=store.table_cache_dir,
            verify_fraction=verify_fraction,
            trace_dir=trace_dir,
            trace_id=trace_id,
        )
        try:
            report = run_tasks(tasks, config)
        except CheckpointMismatch:
            # The checkpoint was written under different fingerprints
            # (solver/device configuration moved since the killed
            # build): its values belong to the old configuration, so
            # recording them under the new fingerprints would poison
            # the store.  Discard and recompute.
            store.checkpoint_path(spec).unlink(missing_ok=True)
            report = run_tasks(tasks, config)
        resumed = report.resumed_count

        by_index = {entry.index: entry for entry in pending}
        records = []
        for outcome in report.outcomes:
            entry = by_index[outcome.index]
            fp = fps[entry.index]
            if outcome.ok:
                records.append(
                    store.entry_record(
                        entry, fp, value=outcome.value, wall_s=outcome.wall_s
                    )
                )
            else:
                failed += 1
                records.append(
                    store.entry_record(
                        entry, fp, status="failed", wall_s=outcome.wall_s,
                        error_type=outcome.error_type, error=outcome.error,
                    )
                )
                failures.append(
                    {
                        "label": f"{entry.point.label()} {entry.metric}",
                        "error_type": outcome.error_type,
                        "error": outcome.error,
                    }
                )
        store.append(records)
        # The checkpoint's job is done once its outcomes are in the
        # index; leaving it would only shadow future rebuilds of
        # entries that this build recorded as failed.
        store.checkpoint_path(spec).unlink(missing_ok=True)

    if compile_payload:
        store.compile_grid(spec)
    if tel is not None:
        tel.count("char.points_computed", len(pending) - resumed)
        tel.count("char.points_failed", failed)

    return BuildReport(
        spec=spec.name,
        total=len(pending) + reused,
        reused=reused,
        computed=len(pending),
        resumed=resumed,
        failed=failed,
        wall_s=time.perf_counter() - start,
        failures=failures,
    )
