"""Static noise margins (butterfly curves) — the classical alternative.

The paper measures stability *dynamically* (DRNM, WL_crit), arguing
that static margins miss the cell dynamics.  This module implements the
classical static analysis so the two can be compared: the butterfly
plot of the two cross-coupled inverter transfer curves, and the static
noise margin as the side of the largest square inscribed in a lobe
(Seevinck's construction, evaluated on the 45-degree-rotated curves).

For the read condition the access transistors are enabled with the
bitlines clamped at their precharge level, which is exactly the
worst-case static read disturb.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.dcop import SolverOptions, solve_dc
from repro.circuit.mna import MnaSystem
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Constant

__all__ = ["ButterflyCurves", "static_noise_margin", "butterfly_curves"]


@dataclass(frozen=True)
class ButterflyCurves:
    """Sampled inverter transfer curves of a cell.

    ``forward`` is v(qb) as a function of the swept v(q); ``reverse``
    is v(q) as a function of the swept v(qb).  Both are sampled on the
    same input grid.
    """

    inputs: np.ndarray
    forward: np.ndarray
    reverse: np.ndarray

    def noise_margin(self) -> float:
        """Seevinck static noise margin (volts).

        The margin is the maximum over the two butterfly lobes of the
        largest inscribed square's side, computed via the 45-degree
        rotation u = (x - y)/sqrt(2): the square side equals the
        maximum vertical separation of the rotated curves divided by
        sqrt(2), taken per lobe.
        """
        x = self.inputs
        # Curve A: (x, forward(x)); curve B as a function of the same
        # axis: reflect the reverse curve, i.e. points (reverse(y), y).
        ya = self.forward
        xb = self.reverse
        yb = x

        # Diagonal coordinates of both curves.
        ua = (x - ya) / np.sqrt(2.0)
        va = (x + ya) / np.sqrt(2.0)
        ub = (xb - yb) / np.sqrt(2.0)
        vb = (xb + yb) / np.sqrt(2.0)

        order_b = np.argsort(ub)
        margins = []
        for sign in (1.0, -1.0):
            # For each point of curve A, the separation to curve B at
            # the same diagonal position; one lobe per sign.
            vb_at_ua = np.interp(ua, ub[order_b], vb[order_b])
            separation = sign * (vb_at_ua - va)
            margins.append(np.max(separation))
        smallest_lobe = min(margins)
        return float(max(smallest_lobe, 0.0) * np.sqrt(2.0) / 2.0)


def _half_cell_circuit(cell, vdd: float, read_condition: bool) -> tuple[Circuit, str, str]:
    """A copy of the cell with the feedback loop cut at q.

    The q node becomes an input driven by a source; the qb inverter
    output is observed.  In the read condition the wordline is active
    and both bitlines are clamped at V_DD.
    """
    bench = cell.hold_testbench(vdd)
    circuit = bench.circuit
    if read_condition:
        m = circuit.source_index("wl")
        original = circuit.voltage_sources[m]
        circuit.voltage_sources[m] = type(original)(
            original.a, original.b, Constant(cell.wl_active(vdd)), original.name
        )
    circuit.add_voltage_source("sweep", "q", "0", 0.0)
    return circuit, "q", "qb"


def butterfly_curves(
    cell,
    vdd: float,
    read_condition: bool = True,
    points: int = 41,
    options: SolverOptions | None = None,
) -> ButterflyCurves:
    """Sample both inverter transfer curves of a (symmetric) cell.

    The cell is electrically symmetric under q <-> qb for every design
    studied here except the asymmetric cell, for which the forward and
    reverse curves genuinely differ; both are measured by sweeping each
    side in turn.
    """
    inputs = np.linspace(0.0, vdd, points)

    def sweep(drive_node: str, sense_node: str) -> np.ndarray:
        circuit, _, _ = _half_cell_circuit(cell, vdd, read_condition)
        m = circuit.source_index("sweep")
        original = circuit.voltage_sources[m]
        # Re-point the sweep source at the requested storage node, then
        # build the assembler once — only the waveform changes per point.
        circuit.voltage_sources[m] = type(original)(
            circuit.index_of(drive_node), original.b, Constant(0.0), original.name
        )
        system = MnaSystem(circuit)
        outputs = np.empty_like(inputs)
        guess = {sense_node: vdd}
        warm = None
        for k, v in enumerate(inputs):
            circuit.voltage_sources[m] = type(original)(
                circuit.index_of(drive_node), original.b, Constant(float(v)), "sweep"
            )
            op = solve_dc(
                circuit, initial_guess=guess, options=options,
                system=system, x0=warm,
            )
            outputs[k] = op.voltage(sense_node)
            warm = op
        return outputs

    forward = sweep("q", "qb")
    reverse = sweep("qb", "q")
    return ButterflyCurves(inputs=inputs, forward=forward, reverse=reverse)


def static_noise_margin(
    cell, vdd: float, read_condition: bool = True, points: int = 41
) -> float:
    """Static (read) noise margin in volts."""
    return butterfly_curves(cell, vdd, read_condition, points).noise_margin()
