"""Data-retention voltage (DRV): how far the standby rail can drop.

The paper's motivation is standby power; the standard next question is
how much further a sleep mode can scale V_DD while the cells still hold
their data.  The DRV is found by bisection on the supply: at each
candidate V_DD the cell's hold-state static noise margin decides
whether both states survive.

A non-obvious result falls out: the TFET cell's DRV is *worse* than
the CMOS cell's.  The tunneling turn-on is steep but *late* (the
window only opens a few hundred millivolts up the gate axis), so below
~0.2 V the TFET inverters lose loop gain entirely, while the MOSFET's
subthreshold exponential keeps regenerating down to ~0.1 V.  The TFET
cell wins standby power through its leakage floor, not through V_DD
scaling.
"""

from __future__ import annotations

from repro.analysis.snm import static_noise_margin
from repro.circuit.dcop import ConvergenceError

__all__ = ["holds_state_at", "retention_voltage"]

DEFAULT_MARGIN = 0.02
"""Required hold SNM (V) for the state to count as retained."""


def holds_state_at(cell, vdd: float, margin: float = DEFAULT_MARGIN, points: int = 21) -> bool:
    """Whether the cell retains data at the given standby supply."""
    try:
        snm = static_noise_margin(cell, vdd, read_condition=False, points=points)
    except ConvergenceError:
        return False
    return snm >= margin


def retention_voltage(
    cell,
    vdd_max: float = 0.8,
    vdd_min: float = 0.02,
    tolerance: float = 0.01,
    margin: float = DEFAULT_MARGIN,
    points: int = 21,
) -> float:
    """Minimum standby V_DD (volts) at which the cell still holds.

    Returns ``vdd_min`` when the cell holds all the way down, and
    ``vdd_max`` when it does not even hold at the nominal supply.
    """
    if not vdd_min < vdd_max:
        raise ValueError("need vdd_min < vdd_max")
    if not holds_state_at(cell, vdd_max, margin, points):
        return vdd_max
    if holds_state_at(cell, vdd_min, margin, points):
        return vdd_min

    lo, hi = vdd_min, vdd_max  # lo fails, hi holds
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if holds_state_at(cell, mid, margin, points):
            hi = mid
        else:
            lo = mid
    return hi
