"""Dynamic cell-stability metrics: DRNM and WL_crit.

Following the paper's Section 3, stability is measured *dynamically*:

* **DRNM** (dynamic read noise margin, after Dehaene et al.): the
  minimum voltage difference between q and qb during a read access.  A
  non-positive DRNM means the read flipped the cell.
* **WL_crit** (after Wang et al.): the minimum wordline pulse width
  that flips the cell during a write.  An unwritable cell has infinite
  WL_crit.

Both capture the dynamics that static margins miss — a slow cell can
survive a disturb that would kill it at DC, and a write can fail even
when the static margin says otherwise.
"""

from __future__ import annotations

import math

from repro.circuit.dcop import ConvergenceError
from repro.circuit.transient import TransientOptions, simulate_transient
from repro.sram.assist import Assist
from repro.sram.testbench import Testbench

__all__ = [
    "dynamic_read_noise_margin",
    "write_flips_cell",
    "critical_wordline_pulse",
    "WlCritSearch",
]

SETTLE_TIME = 1.0e-9
"""Post-access settling time before declaring the final state."""

FLIP_MARGIN = 0.0
"""v(one) - v(zero) below this at the end of settling counts as flipped."""


def dynamic_read_noise_margin(
    bench: Testbench, options: TransientOptions | None = None
) -> float:
    """DRNM in volts for a read testbench.

    Simulates through the access window plus settling and returns the
    minimum separation of the storage nodes inside the window.
    """
    if bench.read_bitline is None:
        raise ValueError("testbench is not a read operation")
    result = simulate_transient(
        bench.circuit,
        bench.settle_stop(SETTLE_TIME),
        initial_conditions=bench.initial_conditions,
        options=options,
    )
    return result.min_difference(
        bench.one_node, bench.zero_node, bench.window.t_on, bench.window.t_off
    )


def _write_result(
    bench: Testbench,
    options: TransientOptions | None,
    operating_point_guess: dict[str, float] | None = None,
):
    return simulate_transient(
        bench.circuit,
        bench.settle_stop(SETTLE_TIME),
        initial_conditions=bench.initial_conditions,
        options=options,
        operating_point_guess=operating_point_guess,
    )


def write_flips_cell(
    bench: Testbench, options: TransientOptions | None = None
) -> bool:
    """Whether a write testbench ends with the cell state flipped."""
    result = _write_result(bench, options)
    final = result.final(bench.one_node) - result.final(bench.zero_node)
    return final < FLIP_MARGIN


class WlCritSearch:
    """Bisection for the critical wordline pulse width.

    ``upper_bound`` is the widest pulse tried; if even that pulse fails
    to flip the cell the write is declared impossible and the search
    returns ``math.inf`` — the paper's "infinite WL_crit".

    Every bisection iteration simulates the same cell with only the
    pulse width changed, so the t = 0 operating point is identical;
    the search caches the first converged DC solution (node voltages)
    and seeds every subsequent simulation with it, skipping the
    repeated homotopy-from-zero DC solve.
    """

    def __init__(
        self,
        lower_bound: float = 1.0e-12,
        upper_bound: float = 4.0e-9,
        relative_tolerance: float = 0.02,
        options: TransientOptions | None = None,
    ):
        if not 0.0 < lower_bound < upper_bound:
            raise ValueError("need 0 < lower_bound < upper_bound")
        if relative_tolerance <= 0.0:
            raise ValueError("relative tolerance must be positive")
        self.lower_bound = lower_bound
        self.upper_bound = upper_bound
        self.relative_tolerance = relative_tolerance
        self.options = options
        self._op_guess: dict[str, float] | None = None

    def _flips(self, bench_factory, width: float) -> bool:
        bench = bench_factory(width)
        try:
            result = _write_result(bench, self.options, self._op_guess)
        except ConvergenceError:
            # A non-converging corner case is treated as "did not
            # flip": the bisection then errs toward a *larger* WL_crit,
            # the conservative direction for a reliability metric.
            return False
        # states[0] is the converged t = 0 operating point; node_names
        # and state columns share the same index ordering.
        self._op_guess = dict(
            zip(bench.circuit.node_names, (float(v) for v in result.states[0]))
        )
        final = result.final(bench.one_node) - result.final(bench.zero_node)
        return final < FLIP_MARGIN

    def search(self, bench_factory) -> float:
        """``bench_factory(pulse_width) -> Testbench`` for this cell/assist."""
        self._op_guess = None  # a new cell/assist invalidates the cached OP
        if not self._flips(bench_factory, self.upper_bound):
            return math.inf
        if self._flips(bench_factory, self.lower_bound):
            return self.lower_bound

        lo, hi = self.lower_bound, self.upper_bound
        while hi - lo > self.relative_tolerance * hi:
            mid = math.sqrt(lo * hi)  # geometric: widths span 3+ decades
            if self._flips(bench_factory, mid):
                hi = mid
            else:
                lo = mid
        return hi


def critical_wordline_pulse(
    cell,
    vdd: float,
    assist: Assist | None = None,
    search: WlCritSearch | None = None,
) -> float:
    """WL_crit in seconds for a cell at the given supply (inf if unwritable)."""
    search = search or WlCritSearch()
    factory = getattr(cell, "write_bench_factory", None)
    if factory is not None:
        # One built netlist for the whole bisection (waveform swaps per
        # width) instead of a rebuild per probe — value-identical.
        return search.search(factory(vdd, assist=assist))
    return search.search(lambda width: cell.write_testbench(vdd, width, assist=assist))
