"""Write and read delay measurements (the paper's Fig. 11 metrics)."""

from __future__ import annotations

import numpy as np

from repro.circuit.transient import TransientOptions, simulate_transient
from repro.sram.assist import Assist
from repro.sram.testbench import Testbench

__all__ = ["write_delay", "read_delay", "SENSE_THRESHOLD"]

SENSE_THRESHOLD = 0.05
"""Bitline differential (V) at which the sense amplifier fires."""

WRITE_PULSE_FACTOR = 10.0
"""Write delay is measured with a comfortably wide wordline pulse."""


def write_delay(
    cell,
    vdd: float,
    assist: Assist | None = None,
    pulse_width: float = 2.0e-9,
    options: TransientOptions | None = None,
) -> float:
    """Time from wordline activation to the storage-node crossing.

    Returns ``math.inf`` when the cell never flips within the pulse.
    """
    bench = cell.write_testbench(vdd, pulse_width, assist=assist)
    result = simulate_transient(
        bench.circuit,
        bench.settle_stop(0.5e-9),
        initial_conditions=bench.initial_conditions,
        options=options,
    )
    crossing = result.crossing_time(
        bench.one_node, bench.zero_node, after=bench.window.t_on
    )
    if crossing is None:
        return float("inf")
    return crossing - bench.window.t_on


def read_delay(
    cell,
    vdd: float,
    assist: Assist | None = None,
    duration: float = 4.0e-9,
    threshold: float = SENSE_THRESHOLD,
    options: TransientOptions | None = None,
) -> float:
    """Time from wordline activation until the read signal develops.

    For differential cells the signal is the bitline split
    ``|v(bl) - v(blb)|``; for the 7T's single-ended port it is the read
    bitline's droop below its precharge level.  Returns ``math.inf``
    when the threshold is never reached inside the access window.
    """
    bench = cell.read_testbench(vdd, assist=assist, duration=duration)
    result = simulate_transient(
        bench.circuit,
        bench.window.t_off,
        initial_conditions=bench.initial_conditions,
        options=options,
    )
    signal_node = result.voltage(bench.read_bitline)
    if bench.read_reference is not None:
        reference = result.voltage(bench.read_reference)
    else:
        reference = np.full_like(signal_node, bench.precharge_level)
    split = np.abs(reference - signal_node)

    mask = result.times >= bench.window.t_on
    times = result.times[mask]
    split = split[mask]
    above = np.nonzero(split >= threshold)[0]
    if above.size == 0:
        return float("inf")
    k = above[0]
    if k == 0:
        return 0.0
    frac = (threshold - split[k - 1]) / (split[k] - split[k - 1])
    t_cross = times[k - 1] + frac * (times[k] - times[k - 1])
    return float(t_cross - bench.window.t_on)
