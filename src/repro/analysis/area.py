"""Lambda-rule cell-area estimation (the paper's Section 5 comparison).

The paper's area statement is topological: the three 6T cells have the
minimum transistor count and the 7T's extra read device plus read
bitline cost "an unavoidable area increase of 10-15 %".  The model here
is a standard width-aware lambda estimate: each transistor occupies its
diffusion width plus fixed overhead, and each routed port (bitline /
wordline class) adds wiring pitch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sram.cell import CellSizing

__all__ = ["AreaModel", "cell_area_um2", "area_report"]

_PORTS_6T = 3  # bl, blb, wl
_PORTS_7T = 5  # wbl, wblb, wwl, rbl, rsl/rwl


@dataclass(frozen=True)
class AreaModel:
    """Coefficients of the lambda-rule estimate (micrometres / um^2)."""

    diffusion_overhead: float = 0.06
    """Per-transistor diffusion/contact overhead added to the width."""

    gate_pitch: float = 0.18
    """Height of one transistor row (gate + spacing)."""

    port_area: float = 0.002
    """Wiring area per routed port line, per cell (um^2)."""

    fixed_overhead: float = 0.2
    """Shared well/strap/isolation area independent of device count (um^2)."""

    def transistor_area(self, width_um: float) -> float:
        return (width_um + self.diffusion_overhead) * self.gate_pitch

    def cell_area(self, widths: list[float], port_count: int) -> float:
        active = sum(self.transistor_area(w) for w in widths)
        return self.fixed_overhead + active + port_count * self.port_area


def _cell_widths(cell) -> list[float]:
    s: CellSizing = cell.sizing
    widths = [
        s.pulldown_width,
        s.pulldown_width,
        s.pullup_width,
        s.pullup_width,
        s.access_width,
        s.access_width,
    ]
    if hasattr(cell, "read_buffer_width"):
        widths.append(cell.read_buffer_width)
    return widths


def cell_area_um2(cell, model: AreaModel | None = None) -> float:
    """Estimated layout area of one cell in square micrometres."""
    model = model or AreaModel()
    widths = _cell_widths(cell)
    ports = _PORTS_7T if len(widths) == 7 else _PORTS_6T
    return model.cell_area(widths, ports)


def area_report(cells: dict[str, object], model: AreaModel | None = None) -> dict[str, float]:
    """Areas for a set of named cells, in um^2."""
    return {name: cell_area_um2(cell, model) for name, cell in cells.items()}
