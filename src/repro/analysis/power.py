"""Static (hold) power measurement.

The whole point of TFET SRAM is the hold-state leakage, which sits
13 orders of magnitude below the on current — so the operating point is
solved with an essentially disabled gmin floor (the default 1e-12 S
shunt would swamp a 1e-17 A cell).
"""

from __future__ import annotations

from repro.circuit.dcop import SolverOptions, solve_dc
from repro.circuit.transient import TransientOptions, simulate_transient
from repro.sram.testbench import Testbench

__all__ = ["static_power", "hold_power"]

POWER_SOLVER = SolverOptions(gmin=1e-19, residual_tolerance=1e-12)


def static_power(bench: Testbench, options: SolverOptions | None = None) -> float:
    """Total power delivered by all sources in the hold state (watts).

    The bistable state is selected by a short settling transient from
    the testbench's initial conditions, then the leakage is read from
    the converged rail currents.
    """
    options = options or POWER_SOLVER
    settle = simulate_transient(
        bench.circuit,
        2e-10,
        initial_conditions=bench.initial_conditions,
        options=TransientOptions(solver=options),
    )
    guess = {name: settle.final(name) for name in bench.circuit.node_names}
    op = solve_dc(bench.circuit, initial_guess=guess, options=options)
    return op.total_source_power()


def hold_power(cell, vdd: float, average_states: bool = True) -> float:
    """Hold power of a cell at the given supply.

    With ``average_states`` the two stored values are averaged — the
    asymmetric cell's leakage is strongly state-dependent (its outward
    access transistor is only reverse-biased when its node stores 0).
    """
    p_one = static_power(cell.hold_testbench(vdd, stored_one=True))
    if not average_states:
        return p_one
    p_zero = static_power(cell.hold_testbench(vdd, stored_one=False))
    return 0.5 * (p_one + p_zero)
