"""Monte-Carlo process-variation studies (Section 4.3).

Each sample draws an independent gate-insulator thickness for every
transistor position, regenerates (or fetches from cache) the
corresponding device tables, rebuilds the cell, and evaluates a metric.
Infinite metric values (write failures) are kept, not dropped — the
failure count is itself a paper result (wordline-lowering WA fails
under variation).

Sampling is *per-task*: sample ``k`` of a study with root seed ``s``
draws its scales from a generator seeded by ``(s, k)`` (see
:func:`repro.engine.mc.sample_scales`), so the sample stream is
independent of worker count and sample total.  Execution runs on
:mod:`repro.engine` — pass an :class:`~repro.engine.scheduler.EngineConfig`
to parallelize, checkpoint/resume, and retry; note that multi-process
runs need picklable callables, for which the spec-based
:class:`repro.engine.mc.MonteCarloBatch` is the intended front-end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.devices.library import tfet_device
from repro.devices.variation import OxideVariation
from repro.sram.cell import TfetDeviceSet

__all__ = ["MonteCarloResult", "MonteCarloStudy", "varied_device_set"]


def varied_device_set(scales) -> TfetDeviceSet:
    """Device cards for one sample's per-transistor thickness scales.

    ``scales`` is indexed in :attr:`TfetDeviceSet.POSITIONS` order; a
    short array leaves the remaining positions at nominal.
    """
    scales = list(np.atleast_1d(np.asarray(scales, dtype=float)))
    cards = {}
    for position in TfetDeviceSet.POSITIONS:
        scale = scales.pop(0) if scales else 1.0
        cards[position] = tfet_device(scale)
    return TfetDeviceSet(**cards)


@dataclass(frozen=True)
class MonteCarloResult:
    """Metric samples from one Monte-Carlo study.

    ``samples`` may contain ``inf`` (the metric itself diverged — a
    write failure) and ``nan`` (the engine recorded a structured task
    failure: retry exhaustion, timeout, or a died worker); both count
    as failures in the statistics.  ``report`` carries the
    :class:`~repro.engine.scheduler.BatchReport` when the study ran on
    the batch engine.
    """

    metric_name: str
    samples: np.ndarray
    report: object | None = field(default=None, compare=False, repr=False)

    @property
    def finite(self) -> np.ndarray:
        return self.samples[np.isfinite(self.samples)]

    @property
    def failure_count(self) -> int:
        """Samples where the metric diverged (e.g. write failure)."""
        return int(np.sum(~np.isfinite(self.samples)))

    @property
    def failure_fraction(self) -> float:
        return self.failure_count / len(self.samples) if len(self.samples) else 0.0

    def mean(self) -> float:
        return float(np.mean(self.finite)) if self.finite.size else math.inf

    def std(self) -> float:
        return float(np.std(self.finite)) if self.finite.size else math.nan

    def spread(self) -> float:
        """Relative spread std/mean of the finite samples."""
        m = self.mean()
        return self.std() / m if math.isfinite(m) and m != 0.0 else math.nan

    def histogram(self, bins: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """(counts, bin edges) over the finite samples."""
        if self.finite.size == 0:
            return np.zeros(bins, dtype=int), np.linspace(0.0, 1.0, bins + 1)
        counts, edges = np.histogram(self.finite, bins=bins)
        return counts, edges

    def yield_above(self, limit: float) -> float:
        """Fraction of samples with metric > limit (failures count as pass
        only if the metric diverging upward is desirable — it is not, so
        non-finite samples count against the yield)."""
        if len(self.samples) == 0:
            return math.nan
        return float(np.mean(np.isfinite(self.samples) & (self.samples > limit)))

    def yield_below(self, limit: float) -> float:
        """Fraction of samples with a finite metric < limit."""
        if len(self.samples) == 0:
            return math.nan
        return float(np.mean(np.isfinite(self.samples) & (self.samples < limit)))

    def gaussian_yield_below(self, limit: float) -> float:
        """Parametric yield from a normal fit to the finite samples.

        A Gaussian tail extrapolates the small-sample histogram the way
        SRAM margining traditionally does; write failures (non-finite
        samples) are subtracted from the fitted yield.

        Degenerate cases (explicitly part of the contract):

        * fewer than two finite samples (including an empty sample
          array) — no spread can be fitted, returns ``nan``;
        * all finite samples identical — the fitted std is clamped to
          ``1e-30`` rather than zero, so ``norm.cdf`` degenerates to a
          step function at the common value: the fitted factor is
          ``0.0`` for a limit below it, ``1.0`` above it (and ``0.5``
          exactly at it), scaled by the finite fraction as usual.  A
          distribution with literally no observed spread pins the
          entire fitted mass on one side of any other limit; callers
          wanting a smoother tail must supply samples with spread.
        """
        from scipy.stats import norm

        finite = self.finite
        if finite.size < 2:
            return math.nan
        fitted = float(norm.cdf(limit, loc=np.mean(finite), scale=max(np.std(finite), 1e-30)))
        return fitted * (1.0 - self.failure_fraction)


def _study_sample(payload, ctx) -> float:
    """Engine task function for :class:`MonteCarloStudy` samples."""
    cell_factory, metric, scales = payload
    cell = cell_factory(varied_device_set(scales))
    return float(metric(cell))


@dataclass
class MonteCarloStudy:
    """Runs a metric over sampled device sets.

    ``cell_factory(device_set)`` builds the cell under study;
    ``metric(cell)`` evaluates it (returning a float, possibly inf).

    Execution rides on :mod:`repro.engine`; the default configuration
    runs inline (single job, no checkpoint), so closures remain valid
    callables.  Passing ``engine=EngineConfig(jobs=4, ...)`` requires
    ``cell_factory`` and ``metric`` to be picklable — prefer
    :class:`repro.engine.mc.MonteCarloBatch` for parallel runs.
    """

    cell_factory: Callable[[TfetDeviceSet], object]
    metric: Callable[[object], float]
    metric_name: str = "metric"
    variation: OxideVariation = field(default_factory=OxideVariation)
    transistor_count: int = 6

    def run(
        self, sample_count: int, seed: int = 2011, engine=None
    ) -> MonteCarloResult:
        from repro.engine.jobs import Task, derive_seed
        from repro.engine.mc import sample_scales
        from repro.engine.scheduler import EngineConfig, run_tasks

        if sample_count <= 0:
            raise ValueError("sample_count must be positive")
        tasks = [
            Task(
                index=k,
                fn=_study_sample,
                payload=(
                    self.cell_factory,
                    self.metric,
                    sample_scales(self.variation, seed, k, self.transistor_count),
                ),
                seed=derive_seed(seed, k),
            )
            for k in range(sample_count)
        ]
        report = run_tasks(tasks, engine or EngineConfig())
        values = np.array(
            [v if v is not None else math.nan for v in report.values()], dtype=float
        )
        return MonteCarloResult(self.metric_name, values, report=report)
