"""Cell-level analyses: stability, timing, power, area, Monte-Carlo,
static noise margins, access energy, leakage attribution, retention."""

from repro.analysis.area import AreaModel, cell_area_um2
from repro.analysis.energy import read_energy, write_energy
from repro.analysis.leakage import LeakageBreakdown, leakage_breakdown
from repro.analysis.montecarlo import MonteCarloResult, MonteCarloStudy
from repro.analysis.power import hold_power, static_power
from repro.analysis.retention import retention_voltage
from repro.analysis.snm import butterfly_curves, static_noise_margin
from repro.analysis.stability import (
    WlCritSearch,
    critical_wordline_pulse,
    dynamic_read_noise_margin,
    write_flips_cell,
)
from repro.analysis.timing import read_delay, write_delay

__all__ = [
    "AreaModel",
    "cell_area_um2",
    "read_energy",
    "write_energy",
    "LeakageBreakdown",
    "leakage_breakdown",
    "MonteCarloResult",
    "MonteCarloStudy",
    "hold_power",
    "static_power",
    "retention_voltage",
    "butterfly_curves",
    "static_noise_margin",
    "WlCritSearch",
    "critical_wordline_pulse",
    "dynamic_read_noise_margin",
    "write_flips_cell",
    "read_delay",
    "write_delay",
]
