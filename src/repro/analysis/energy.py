"""Dynamic energy per operation.

The paper motivates TFET SRAM with *static* power; a downstream user
also needs the dynamic side of the ledger — especially because the
rail-based assist techniques the paper recommends are flagged as
carrying a "dynamic power overhead to generate lowered V_GND".  This
module integrates the power delivered by every source over an access
transient, so the assist overhead is captured automatically (the
assist rail is a source like any other).
"""

from __future__ import annotations

import numpy as np

from repro.circuit.results import TransientResult
from repro.circuit.transient import TransientOptions, simulate_transient
from repro.sram.assist import Assist
from repro.sram.testbench import Testbench

__all__ = ["delivered_energy", "operation_energy", "write_energy", "read_energy"]


def delivered_energy(
    result: TransientResult,
    t0: float,
    t1: float,
    source_names: set[str] | None = None,
) -> float:
    """Energy (J) delivered by sources over [t0, t1].

    Trapezoidal integration of the instantaneous source power computed
    from the solved branch currents; the MNA branch current flows from
    node ``a`` through the source, so delivered power is ``-(v_a -
    v_b) * i_branch`` summed over sources.

    ``source_names`` restricts the sum to the named sources — how the
    array compiler separates the accessed cell's rail energy from the
    periphery (decoder, precharge, replica, sense amp) sharing the
    same compiled netlist.
    """
    mask = result.window(t0, t1)
    times = result.times[mask]
    if times.size < 2:
        raise ValueError("integration window contains fewer than two samples")

    total_power = np.zeros(times.size)
    for source in result.circuit.voltage_sources:
        if source_names is not None and source.name not in source_names:
            continue
        va = (
            np.zeros(times.size)
            if source.a < 0
            else result.states[mask, source.a]
        )
        vb = (
            np.zeros(times.size)
            if source.b < 0
            else result.states[mask, source.b]
        )
        i_branch = result.branch_current(source.name)[mask]
        total_power += -(va - vb) * i_branch
    return float(np.trapezoid(total_power, times))


def operation_energy(
    bench: Testbench,
    settle: float = 1.0e-9,
    options: TransientOptions | None = None,
    source_names: set[str] | None = None,
) -> float:
    """Energy of one access: from just before the assist lead-in until
    the cell has settled after the access window.

    The hold-state leakage baseline is subtracted so the result is the
    *incremental* energy of the operation.  ``source_names`` restricts
    both the gross and the baseline integration to the named sources.
    """
    t_stop = bench.window.t_off + settle
    result = simulate_transient(
        bench.circuit,
        t_stop,
        initial_conditions=bench.initial_conditions,
        options=options,
    )
    gross = delivered_energy(result, 0.0, t_stop, source_names=source_names)
    # Leakage baseline measured on the pre-access quiet segment.
    quiet_end = min(bench.window.t_on * 0.2, 5e-11)
    leak = delivered_energy(result, 0.0, quiet_end, source_names=source_names) / quiet_end
    return gross - leak * t_stop


def write_energy(
    cell,
    vdd: float,
    assist: Assist | None = None,
    pulse_width: float = 2e-9,
    options: TransientOptions | None = None,
) -> float:
    """Energy (J) of one write access."""
    bench = cell.write_testbench(vdd, pulse_width, assist=assist)
    return operation_energy(bench, options=options)


def read_energy(
    cell,
    vdd: float,
    assist: Assist | None = None,
    duration: float = 1e-9,
    options: TransientOptions | None = None,
) -> float:
    """Energy (J) of one read access (bitline recharge not included —
    the bitlines are left where the read put them, as in a real array
    where the precharge phase belongs to the next cycle)."""
    bench = cell.read_testbench(vdd, assist=assist, duration=duration)
    return operation_energy(bench, options=options)
