"""Hold-state leakage breakdown: which transistor burns the power.

Attributes the cell's static current to individual devices at the hold
operating point — the tool that makes Section 3's "the outward access
transistor is reverse-biased" argument quantitative, and that a
designer would reach for first when a cell leaks more than expected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.power import POWER_SOLVER
from repro.circuit.dcop import SolverOptions, solve_dc
from repro.circuit.results import OperatingPoint
from repro.circuit.transient import TransientOptions, simulate_transient
from repro.sram.testbench import Testbench

__all__ = ["DeviceLeakage", "LeakageBreakdown", "leakage_breakdown"]


@dataclass(frozen=True)
class DeviceLeakage:
    """One transistor's contribution to the hold current."""

    name: str
    drain_current: float
    """Signed channel current (A), drain to source."""

    dissipation: float
    """Power dissipated in the channel (W), always >= 0."""

    vgs: float
    vds: float

    @property
    def is_reverse_biased(self) -> bool:
        """True when the device conducts against its forward direction.

        For the n-reference frame used internally this is simply a
        negative effective V_DS with non-negligible current.
        """
        return self.vds < -1e-6 and abs(self.drain_current) > 0.0


@dataclass(frozen=True)
class LeakageBreakdown:
    """Per-device attribution of a cell's hold power."""

    operating_point: OperatingPoint
    devices: tuple[DeviceLeakage, ...]

    @property
    def total_dissipation(self) -> float:
        return sum(d.dissipation for d in self.devices)

    def dominant(self) -> DeviceLeakage:
        """The single most dissipative transistor."""
        return max(self.devices, key=lambda d: d.dissipation)

    def fraction(self, name: str) -> float:
        """Share of the total dissipation carried by the named device."""
        total = self.total_dissipation
        if total == 0.0:
            return 0.0
        for d in self.devices:
            if d.name == name:
                return d.dissipation / total
        raise KeyError(f"unknown device {name!r}")


def leakage_breakdown(
    bench: Testbench, options: SolverOptions | None = None
) -> LeakageBreakdown:
    """Solve the hold state and attribute the leakage per transistor."""
    options = options or POWER_SOLVER
    settle = simulate_transient(
        bench.circuit,
        2e-10,
        initial_conditions=bench.initial_conditions,
        options=TransientOptions(solver=options),
    )
    guess = {name: settle.final(name) for name in bench.circuit.node_names}
    op = solve_dc(bench.circuit, initial_guess=guess, options=options)

    devices = []
    for t in bench.circuit.transistors:
        vd = op.x[t.drain] if t.drain >= 0 else 0.0
        vg = op.x[t.gate] if t.gate >= 0 else 0.0
        vs = op.x[t.source] if t.source >= 0 else 0.0
        sign = 1.0 if t.polarity == "n" else -1.0
        vgs_eff = sign * (vg - vs)
        vds_eff = sign * (vd - vs)
        density = float(np.asarray(t.model.current_density(vgs_eff, vds_eff)))
        i_d = sign * t.width_um * density
        devices.append(
            DeviceLeakage(
                name=t.name,
                drain_current=i_d,
                dissipation=abs(i_d * (vd - vs)),
                vgs=vgs_eff,
                vds=vds_eff,
            )
        )
    return LeakageBreakdown(operating_point=op, devices=tuple(devices))
