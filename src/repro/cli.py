"""Top-level command-line interface: ``python -m repro <command>``.

Commands:

* ``device-info`` — headline figures of merit of the calibrated devices;
* ``cell <design> [--vdd V]`` — hold power, margins, and delays of one
  of the studied cells;
* ``experiment <id>`` — regenerate a paper figure/table (alias of
  ``python -m repro.experiments``, including the telemetry flags
  ``--profile``, ``--trace``, ``--log-level``, ``--output-dir`` and the
  batch-engine flags ``--samples``, ``--seed``, ``--jobs``,
  ``--resume``);
* ``char build|status|query|export`` — the incremental characterization
  store (``repro.char``): build a metric grid (resumable, only missing
  points are simulated), inspect coverage, answer interpolated point
  queries with provenance, and export grids as CSV/JSON;
* ``array build|measure|compare|sweep`` — the hierarchical array
  compiler (:mod:`repro.sram.compiler`): compose a bitcell into a
  simulatable critical path (distributed bitline/wordline RC, decode
  chain, precharge, replica-timed sense amp), measure the read / write
  / half-select scenarios through the transient solver, validate the
  simulated path against the analytic array model, and run
  engine-backed geometry sweeps (``--jobs``, ``--resume``);
* ``netlist <deck.sp> [--op | --tran T]`` — parse a SPICE-subset deck
  and print its DC operating point or run a transient;
* ``diag [paths...]`` — solver-health summary of saved run manifests
  (default: ``results/``);
* ``trace summary|timeline|slowest|convergence`` — timeline analytics
  over a merged run-level trace (produced by ``experiment --trace-dir``
  or ``char build --trace-dir``);
* ``serve start|status|query`` — the online characterization service
  (:mod:`repro.serve`): run the asyncio daemon over a store, inspect a
  running daemon, and query it through the JSON-lines protocol;
* ``bench history|check`` — record ``BENCH_*.json`` headline metrics
  into ``results/bench_history.jsonl`` and flag regressions (``check``
  exits non-zero on one — the CI gate).
"""

from __future__ import annotations

import argparse
import math
import sys

__all__ = ["main"]

CELL_CHOICES = ("proposed", "cmos", "asym", "7t", "inward_n", "outward_n")


def _cmd_device_info(_args) -> int:
    import numpy as np

    from repro.devices.library import nmos_device, nominal_tfet_physics, tfet_device

    physics = nominal_tfet_physics()
    device = tfet_device()
    nmos = nmos_device()
    print("Si TFET (calibrated, Section 2 anchors):")
    print(f"  I_on  (1 V) : {device.on_current(1.0):.3e} A/um")
    print(f"  I_off (1 V) : {device.off_current(1.0):.3e} A/um")
    print(f"  min SS      : {physics.subthreshold_swing_mv_per_dec():.1f} mV/dec")
    print(f"  reverse@-1V : {abs(float(np.asarray(device.current_density(0.0, -1.0)))):.3e} A/um")
    print("32 nm MOSFET baseline:")
    print(f"  I_on  (0.8V): {nmos.on_current(0.8):.3e} A/um")
    print(f"  I_off (0.8V): {nmos.off_current(0.8):.3e} A/um")
    print(f"  SS          : {nmos.subthreshold_swing_mv_per_dec():.1f} mV/dec")
    return 0


def _build_cell(name: str, corner: str = "tt"):
    from repro.devices.corners import corner_device_set
    from repro.experiments.designs import (
        asym_cell,
        cmos_cell,
        proposed_cell,
        proposed_read_assist,
        seven_t_cell,
    )
    from repro.sram import AccessConfig, CellSizing, Tfet6TCell

    # corner_device_set raises a KeyError listing the known corners on a
    # bad name; devices stays None at "tt" so the nominal path is untouched.
    devices = corner_device_set(corner) if corner != "tt" else None
    if name == "cmos":
        if corner != "tt":
            raise ValueError(
                "corner cards are TFET oxide-thickness scales; "
                "the CMOS baseline only supports --corner tt"
            )
        return cmos_cell(), None
    if name == "proposed":
        return proposed_cell(devices), proposed_read_assist()
    if name == "asym":
        return asym_cell(devices), None
    if name == "7t":
        return seven_t_cell(devices), None
    if name == "inward_n":
        return (
            Tfet6TCell(CellSizing().with_beta(0.6), AccessConfig.INWARD_N, devices=devices),
            None,
        )
    if name == "outward_n":
        return (
            Tfet6TCell(CellSizing().with_beta(0.6), AccessConfig.OUTWARD_N, devices=devices),
            None,
        )
    raise ValueError(f"unknown cell {name!r}")


def _cmd_cell(args) -> int:
    from repro.analysis import (
        critical_wordline_pulse,
        dynamic_read_noise_margin,
        hold_power,
        read_delay,
        write_delay,
    )
    from repro.analysis.area import cell_area_um2

    try:
        cell, assist = _build_cell(args.design, corner=args.corner)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    vdd = args.vdd
    corner_note = "" if args.corner == "tt" else f" [{args.corner} corner]"
    print(f"{cell.name} at V_DD = {vdd} V{corner_note}")
    print(f"  hold power : {hold_power(cell, vdd):.3e} W")
    drnm = dynamic_read_noise_margin(cell.read_testbench(vdd, assist=assist))
    print(f"  DRNM       : {drnm * 1e3:.1f} mV" + ("  (with read assist)" if assist else ""))
    if args.design != "asym":
        wl = critical_wordline_pulse(cell, vdd)
        print(f"  WL_crit    : {'inf' if math.isinf(wl) else f'{wl * 1e12:.1f} ps'}")
    else:
        print("  WL_crit    : undefined (no separatrix)")
    wd = write_delay(cell, vdd, pulse_width=6e-9)
    rd = read_delay(cell, vdd, assist=assist, duration=8e-9)
    print(f"  write delay: {'inf' if math.isinf(wd) else f'{wd * 1e12:.1f} ps'}")
    print(f"  read delay : {'inf' if math.isinf(rd) else f'{rd * 1e12:.1f} ps'}")
    print(f"  area       : {cell_area_um2(cell):.3f} um^2")
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments.runner import main as experiments_main

    argv = [args.experiment_id]
    if args.profile:
        argv.append("--profile")
    if args.trace:
        argv.extend(["--trace", args.trace])
    if args.log_level:
        argv.extend(["--log-level", args.log_level])
    if args.trace_dir:
        argv.extend(["--trace-dir", args.trace_dir])
    if args.output_dir:
        argv.extend(["--output-dir", args.output_dir])
    if args.verify:
        argv.append("--verify")
    if args.samples is not None:
        argv.extend(["--samples", str(args.samples)])
    if args.seed is not None:
        argv.extend(["--seed", str(args.seed)])
    if args.jobs is not None:
        argv.extend(["--jobs", str(args.jobs)])
    if args.resume:
        argv.append("--resume")
    if args.char_store:
        argv.extend(["--char-store", args.char_store])
    return experiments_main(argv)


def _cmd_char(args) -> int:
    from repro.char import CharGrid, CharQueryError, CharStore, resolve_spec

    try:
        spec = resolve_spec(args.spec)
    except ValueError as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    store = CharStore(args.store)

    if args.char_command == "build":
        from repro.char import build_grid
        from repro.telemetry import core as telemetry

        session = (
            telemetry.enable() if (args.profile or args.metrics_out) else None
        )
        try:
            report = build_grid(
                spec,
                store,
                jobs=args.jobs,
                verify_fraction=args.verify_fraction,
                trace_dir=args.trace_dir,
            )
        finally:
            if session is not None:
                telemetry.disable()
        print(report.summary())
        if session is not None:
            hits = session.counters.get("char.store.hits", 0)
            misses = session.counters.get("char.store.misses", 0)
            print(f"store: {hits} hits, {misses} misses")
        if args.metrics_out and session is not None:
            from pathlib import Path

            from repro.obs.export import write_metrics

            json_path = Path(args.metrics_out)
            write_metrics(
                session,
                json_path,
                json_path.with_suffix(".prom"),
                run=f"char:{args.spec}",
                duration_s=report.wall_s,
            )
            print(f"metrics: {json_path}")
        if args.trace_dir:
            from pathlib import Path

            print(f"trace: {Path(args.trace_dir) / 'trace.json'}")
        return 1 if report.failed else 0

    if args.char_command == "status":
        status = store.status(spec)
        if args.json:
            import json as json_module

            payload = {
                **status.to_json(),
                "store": str(store.directory),
                "index": store.index_summary(),
            }
            print(json_module.dumps(payload, indent=2))
        else:
            print(status.summary())
        return 0

    if args.char_command == "query":
        try:
            grid = CharGrid.from_store(store, spec)
            answer = grid.query(
                args.metric,
                design=args.design,
                vdd=args.vdd,
                beta=args.beta,
                corner=args.corner,
                method=args.method,
            )
        except (CharQueryError, FileNotFoundError) as exc:
            print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
            return 2
        if args.json:
            import json as json_module

            # Answer values can legitimately be inf (an unwritable
            # cell's wl_crit is data); encode non-finite floats with
            # the experiments.io convention so the output stays strict
            # JSON instead of allow_nan=False raising.
            print(
                json_module.dumps(
                    _encode_json_tree(answer.to_json()), indent=2, allow_nan=False
                )
            )
        else:
            print(answer.summary())
        return 0

    if args.char_command == "export":
        return _char_export(spec, store, args)
    raise AssertionError(f"unhandled char command {args.char_command!r}")


def _encode_json_tree(value):
    """Apply the experiments.io non-finite float encoding recursively."""
    from repro.experiments.io import _encode_value

    if isinstance(value, dict):
        return {k: _encode_json_tree(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_json_tree(v) for v in value]
    return _encode_value(value)


def _char_export(spec, store, args) -> int:
    """Dump one spec's entries (values + provenance) as CSV or JSON."""
    from repro.char import entry_fingerprint
    from repro.experiments.io import _csv_value, _encode_value

    index = store.load_index()
    header = ["design", "corner", "beta", "vdd", "metric", "value", "status", "fp"]
    rows = []
    for entry in spec.entries():
        fp = entry_fingerprint(entry.point, entry.metric)
        record = index.get(fp)
        status = record.get("status", "missing") if record else "missing"
        value = record.get("value") if record else None
        point = entry.point
        rows.append(
            [point.design, point.corner, point.beta, point.vdd,
             entry.metric, value, status, fp]
        )

    out = None if args.out is None else open(args.out, "w", newline="")
    try:
        handle = out or sys.stdout
        if args.format == "csv":
            import csv

            writer = csv.writer(handle)
            writer.writerow(header)
            for row in rows:
                writer.writerow([_csv_value(v) for v in row])
        else:
            import json as json_module

            payload = {
                "spec": spec.to_json(),
                "header": header,
                "rows": [[_encode_value(v) for v in row] for row in rows],
            }
            handle.write(json_module.dumps(payload, indent=2, allow_nan=False) + "\n")
    finally:
        if out is not None:
            out.close()
    if args.out is not None:
        print(f"wrote {len(rows)} entries to {args.out}")
    return 0


def _cmd_serve(args) -> int:
    if args.serve_command == "start":
        return _serve_start(args)

    from repro.serve.client import ServeClient, ServeError

    try:
        client = ServeClient(
            socket_path=None if args.port else args.socket,
            tcp_port=args.port,
            timeout_s=args.timeout_s,
        )
    except (ConnectionError, FileNotFoundError, OSError) as exc:
        target = f"port {args.port}" if args.port else args.socket
        print(f"error: cannot reach a serve daemon at {target}: {exc}",
              file=sys.stderr)
        return 2

    import json as json_module

    with client:
        if args.serve_command == "status":
            try:
                status = client.status()
            except (ServeError, ConnectionError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if args.json:
                print(json_module.dumps(status, indent=2))
            else:
                print(_format_serve_status(status))
            return 0

        # serve query
        try:
            response = client.query(
                args.metric, design=args.design, vdd=args.vdd,
                beta=args.beta, corner=args.corner, method=args.method,
            )
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ConnectionError as exc:
            print(f"error: daemon hung up: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json_module.dumps(
                _encode_json_tree(response), indent=2, allow_nan=False))
        else:
            from repro.char.query import CharAnswer

            answer = CharAnswer(
                metric=response["result"]["metric"],
                unit=response["result"]["unit"],
                value=response["result"]["value"],
                coords=response["result"]["coords"],
                method=response["result"]["method"],
                nearest=response["result"]["nearest"],
                notes=tuple(response["result"]["notes"]),
            )
            print(answer.summary())
            print(f"  served: {response['served']} "
                  f"({response['wall_us']:.0f} us server-side)")
        return 0


def _serve_start(args) -> int:
    import asyncio

    from repro.char import resolve_spec
    from repro.serve.daemon import ServeConfig, serve

    if args.shard_index is None and (args.workers > 1 or args.http_port):
        return _serve_fleet(args)

    socket_path = args.socket
    tcp_port = args.port
    shard_count = None
    if args.shard_index is not None:
        # A fleet member: --socket/--port name the FRONT's base address
        # and the shard derives its own from them, so restarting shard
        # i by hand only needs the same command line plus --shard-index.
        from repro.serve.shard import shard_socket_path, shard_tcp_port

        shard_count = args.workers
        if not 0 <= args.shard_index < args.workers:
            print(f"error: --shard-index {args.shard_index} outside "
                  f"--workers {args.workers}", file=sys.stderr)
            return 2
        if tcp_port is not None:
            socket_path = None
            tcp_port = shard_tcp_port(args.port, args.shard_index)
        else:
            socket_path = shard_socket_path(args.socket, args.shard_index)

    try:
        specs = [resolve_spec(name) for name in (args.spec or ["nominal"])]
        config = ServeConfig(
            store_dir=args.store,
            specs=specs,
            socket_path=socket_path,
            tcp_port=tcp_port,
            max_inflight=args.max_inflight,
            backfill_depth=args.backfill_depth,
            coalesce_s=args.coalesce_s,
            request_timeout_s=args.timeout_s,
            drain_grace_s=args.drain_grace_s,
            jobs=args.jobs,
            verify_fraction=args.verify_fraction,
            metrics_out=args.metrics_out,
            trace_dir=args.trace_dir,
            shard_index=args.shard_index,
            shard_count=shard_count,
            synthetic_service_s=args.synthetic_service_s,
        )
    except ValueError as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    where = []
    if config.socket_path is not None:
        where.append(str(config.socket_path))
    if config.tcp_port is not None:
        where.append(f"127.0.0.1:{config.tcp_port}")
    label = (f"shard {args.shard_index}/{shard_count}"
             if args.shard_index is not None else "serving")
    print(f"{label} {', '.join(s.name for s in specs)} from {args.store} "
          f"on {' and '.join(where)} (SIGTERM drains)")
    asyncio.run(serve(config))
    print("serve: drained and stopped")
    return 0


def _serve_fleet(args) -> int:
    """Supervise ``--workers`` shard daemons behind one routing front."""
    import asyncio
    import subprocess
    import time as time_module
    from pathlib import Path

    from repro.serve.client import ServeClient
    from repro.serve.front import FrontConfig, ShardAddress, serve_front
    from repro.serve.shard import shard_socket_path, shard_tcp_port

    workers = args.workers
    shard_cmd_base = [
        sys.executable, "-m", "repro", "serve", "start",
        "--store", args.store,
        "--socket", args.socket,
        "--workers", str(workers),
        "--jobs", str(args.jobs),
        "--max-inflight", str(args.max_inflight),
        "--backfill-depth", str(args.backfill_depth),
        "--coalesce-s", str(args.coalesce_s),
        "--timeout-s", str(args.timeout_s),
        "--drain-grace-s", str(args.drain_grace_s),
        "--verify-fraction", str(args.verify_fraction),
        "--synthetic-service-s", str(args.synthetic_service_s),
    ]
    for spec in args.spec or []:
        shard_cmd_base += ["--spec", spec]
    if args.port is not None:
        shard_cmd_base += ["--port", str(args.port)]

    shards, procs = [], []
    for index in range(workers):
        cmd = shard_cmd_base + ["--shard-index", str(index)]
        if args.metrics_out:
            out = Path(args.metrics_out)
            cmd += ["--metrics-out",
                    str(out.with_name(f"{out.stem}.shard{index}{out.suffix}"))]
        if args.trace_dir:
            cmd += ["--trace-dir", args.trace_dir]
        procs.append(subprocess.Popen(cmd))
        if args.port is not None:
            shards.append(ShardAddress(tcp_port=shard_tcp_port(args.port, index)))
        else:
            shards.append(ShardAddress(
                socket_path=shard_socket_path(args.socket, index)))

    def _stop_shards() -> None:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=args.drain_grace_s + 10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    # Wait for every shard to answer a ping (grid loading can take a
    # while on a cold store) before exposing the front.
    deadline = time_module.monotonic() + 120.0
    try:
        for index, address in enumerate(shards):
            while True:
                if procs[index].poll() is not None:
                    print(f"error: shard {index} exited with "
                          f"{procs[index].returncode} during startup",
                          file=sys.stderr)
                    _stop_shards()
                    return 2
                try:
                    with ServeClient(socket_path=address.socket_path,
                                     tcp_port=address.tcp_port,
                                     timeout_s=5.0) as probe:
                        if probe.ping():
                            break
                except (ConnectionError, FileNotFoundError, OSError):
                    pass
                if time_module.monotonic() > deadline:
                    print(f"error: shard {index} did not come up within 120 s",
                          file=sys.stderr)
                    _stop_shards()
                    return 2
                time_module.sleep(0.1)

        config = FrontConfig(
            shards=shards,
            socket_path=None if args.port else args.socket,
            tcp_port=args.port,
            http_port=args.http_port,
            request_timeout_s=args.timeout_s + 30.0,
            metrics_out=args.metrics_out,
        )
        where = [a.describe() for a in shards]
        front_at = []
        if config.socket_path is not None:
            front_at.append(str(config.socket_path))
        if config.tcp_port is not None:
            front_at.append(f"127.0.0.1:{config.tcp_port}")
        if config.http_port is not None:
            front_at.append(f"http://127.0.0.1:{config.http_port}")
        print(f"fleet: {workers} shards on {', '.join(where)}; front on "
              f"{' and '.join(front_at)} (SIGTERM drains)")
        asyncio.run(serve_front(config))
    finally:
        _stop_shards()
    print("serve: fleet drained and stopped")
    return 0


def _format_serve_status(status: dict) -> str:
    if status.get("fleet"):
        return _format_fleet_status(status)
    lines = [
        f"serve daemon pid {status['pid']} — up {status['uptime_s']:.1f} s, "
        f"store {status['store']}"
        + (" [draining]" if status.get("draining") else ""),
    ]
    for coverage in status.get("coverage", []):
        lines.append(
            f"  {coverage['spec']}: {coverage['present']}/{coverage['total']} "
            f"present, {coverage['missing']} missing, "
            f"{coverage['failed']} failed"
        )
    backfill = status.get("backfill", {})
    lines.append(
        f"  backfill: {backfill.get('pending', 0)} pending, "
        f"{backfill.get('in_flight', 0)} in flight, "
        f"{backfill.get('batches_completed', 0)} batches / "
        f"{backfill.get('points_completed', 0)} points completed"
    )
    counters = status.get("counters", {})
    lines.append(
        f"  requests: {counters.get('serve.requests', 0)} total, "
        f"{counters.get('serve.hits', 0)} hits, "
        f"{counters.get('serve.misses', 0)} misses, "
        f"{counters.get('serve.timeouts', 0)} timeouts"
    )
    return "\n".join(lines)


def _format_fleet_status(status: dict) -> str:
    lines = [
        f"serve fleet front pid {status['pid']} — up "
        f"{status['uptime_s']:.1f} s, {status['shards_up']}/"
        f"{status['workers']} shards up"
        + (" [draining]" if status.get("draining") else ""),
    ]
    for shard in status.get("shards", []):
        if not shard.get("ok"):
            lines.append(f"  shard {shard['shard']} ({shard['address']}): "
                         f"DOWN — {shard.get('message', '')}")
            continue
        counters = (shard.get("status") or {}).get("counters", {})
        lines.append(
            f"  shard {shard['shard']} ({shard['address']}): "
            f"{counters.get('serve.requests', 0)} requests, "
            f"{counters.get('serve.hits', 0)} hits, "
            f"{counters.get('serve.misses', 0)} misses"
        )
    aggregate = status.get("aggregate", {})
    lines.append(
        f"  aggregate: {aggregate.get('serve.requests', 0)} requests, "
        f"{aggregate.get('serve.hits', 0)} hits, "
        f"{aggregate.get('serve.misses', 0)} misses, "
        f"{aggregate.get('serve.timeouts', 0)} timeouts"
    )
    return "\n".join(lines)


def _cmd_trace(args) -> int:
    from repro.obs.trace import (
        format_convergence,
        format_slowest,
        format_summary,
        format_timeline,
        load_trace,
    )

    try:
        trace = load_trace(args.trace)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    if args.trace_command == "summary":
        print(format_summary(trace))
    elif args.trace_command == "timeline":
        print(format_timeline(trace, width=args.width))
    elif args.trace_command == "slowest":
        print(format_slowest(trace, top=args.top))
    else:
        print(format_convergence(trace))
    return 0


def _cmd_bench(args) -> int:
    import json as json_module

    from repro.obs import bench

    records = []
    for path in bench.collect_bench_files(args.root):
        try:
            payload = json_module.loads(path.read_text())
        except (OSError, json_module.JSONDecodeError):
            print(f"note: skipping unreadable {path}", file=sys.stderr)
            continue
        record = bench.bench_record(payload, path.name)
        if record is not None:
            records.append(record)
    added = bench.append_history(records, args.history)
    if added:
        print(f"recorded {added} new bench result(s) into {args.history}")
    history = bench.load_history(args.history)
    print(bench.format_history(history, tolerance=args.tolerance))
    if args.bench_command == "check":
        problems = bench.check_history(history, tolerance=args.tolerance)
        if problems:
            print()
            for problem in problems:
                print(f"REGRESSION: {problem}")
            return 1
        print()
        print("no regressions detected")
    return 0


def _cmd_diag(args) -> int:
    from repro.telemetry.diag import format_diag_report, load_manifests

    manifests = load_manifests(args.paths)
    print(format_diag_report(manifests))
    return 0 if manifests else 1


def _cmd_array(args) -> int:
    from repro.sram.array import ArrayGeometry

    if args.array_command == "sweep":
        return _array_sweep(args)

    from repro.sram.compiler import CompileOptions, compile_array

    try:
        cell, assist = _build_cell(args.design, corner=args.corner)
        if args.scenario != "read" or args.no_assist:
            assist = None
        geometry = ArrayGeometry(rows=args.rows, columns=args.columns)
        options = CompileOptions(sense=args.sense)
        compiled = compile_array(
            cell, geometry, args.vdd,
            scenario=args.scenario, assist=assist, options=options,
        )
    except (KeyError, ValueError, TypeError, NotImplementedError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2

    if args.array_command == "build":
        return _array_build(compiled)
    if args.array_command == "measure":
        return _array_measure(compiled, args)
    if args.array_command == "compare":
        return _array_compare(cell, geometry, assist, compiled, args)
    raise AssertionError(f"unhandled array command {args.array_command!r}")


def _array_build(compiled) -> int:
    """Print the compiled path's structure without simulating it."""
    from repro.circuit.sparse import DEFAULT_SPARSE_THRESHOLD
    from repro.sram.compiler.census import census_macro_area

    geometry = compiled.geometry
    ladder = compiled.ladder
    size = compiled.unknown_count
    sparse = "sparse" if size >= DEFAULT_SPARSE_THRESHOLD else "dense"
    print(f"{compiled.circuit.title}")
    print(f"  unknowns : {size} -> {sparse} MNA "
          f"(auto threshold {DEFAULT_SPARSE_THRESHOLD})")
    print(f"  bitline  : C_total {ladder.total_capacitance:.3e} F, "
          f"R_total {ladder.total_resistance:.1f} ohm, "
          f"Elmore {ladder.elmore_delay * 1e12:.1f} ps")
    print(f"  explicit : {compiled.bench.notes['n_explicit']:.0f} neighbour(s)"
          + (", 1 half-selected victim" if "hs_q" in compiled.probes else ""))
    print(f"  decoder  : {compiled.decoder.stages} buffer stage(s) after the "
          f"address NAND")
    if compiled.replica is not None:
        print(f"  replica  : {compiled.replica.n_replica} timing cell(s)")
    areas = census_macro_area(compiled.cell, geometry, compiled.census)
    print(f"  census   : cells {areas['cell_array_um2']:.1f} um2, "
          f"rows {areas['row_periphery_um2']:.1f}, "
          f"columns {areas['column_periphery_um2']:.1f}, "
          f"shared {areas['shared_um2']:.2f}, "
          f"control/IO {areas['control_io_um2']:.1f} "
          f"-> total {areas['total_um2']:.1f} um2")
    return 0


def _array_result_table(rows_spec, command: str):
    """One-row ExperimentResult so --profile manifests work for `repro diag`."""
    from repro.experiments.common import ExperimentResult

    header, row = zip(*rows_spec)
    result = ExperimentResult(
        f"array_{command}", f"repro array {command}", list(header)
    )
    result.add_row(*row)
    return result


def _array_profiled(args, command: str, work):
    """Run ``work()`` under a telemetry session when --profile is set,
    writing a run manifest ``repro diag`` can summarize."""
    import time as time_module

    if not args.profile:
        value, _ = work()
        return value
    from repro.telemetry import core as telemetry
    from repro.telemetry.manifest import build_manifest, manifest_path, write_manifest

    out_dir = args.output_dir or "results"
    with telemetry.enabled() as session:
        start = time_module.perf_counter()
        with session.span(f"array.{command}"):
            value, rows_spec = work()
        wall = time_module.perf_counter() - start
        result = _array_result_table(rows_spec, command)
        manifest = build_manifest(
            result.experiment_id, result.title, result, session, wall
        )
        write_manifest(manifest, out_dir)
    print(f"manifest: {manifest_path(out_dir, result.experiment_id)}")
    return value


def _array_measure(compiled, args) -> int:
    from repro.sram.compiler import measure_array

    def work():
        m = measure_array(compiled)
        rows_spec = [
            ("scenario", m.scenario),
            ("rows", m.rows),
            ("columns", m.columns),
            ("unknowns", m.unknowns),
            ("sparse", "yes" if m.sparse_engaged else "no"),
            ("wordline_delay_ps", 1e12 * m.wordline_delay),
            ("access_delay_ps", 1e12 * m.access_delay),
            ("resolved_delay_ps", 1e12 * m.resolved_delay),
            ("energy_fJ", 1e15 * m.energy),
            ("cell_energy_fJ", 1e15 * m.cell_energy),
            ("disturb_margin_mV", 1e3 * m.disturb_margin),
            ("victim_flipped", str(m.victim_flipped)),
        ]
        return m, rows_spec

    m = _array_profiled(args, "measure", work)
    print(f"{compiled.circuit.title}: {m.unknowns} unknowns "
          f"({'sparse' if m.sparse_engaged else 'dense'} MNA)")
    print(f"  wordline delay : {1e12 * m.wordline_delay:.1f} ps (far cell)")
    print(f"  access delay   : {_fmt_ps(m.access_delay)}")
    if m.scenario == "read":
        print(f"  sense resolved : {_fmt_ps(m.resolved_delay)}")
    print(f"  path energy    : {1e15 * m.energy:.2f} fJ "
          f"(cell rails: {1e15 * m.cell_energy:.3f} fJ)")
    if not math.isnan(m.disturb_margin):
        print(f"  disturb margin : {1e3 * m.disturb_margin:.1f} mV "
              f"({'victim FLIPPED' if m.victim_flipped else 'victim held'})")
    if not m.completed:
        print("  access did not complete within the window", file=sys.stderr)
        return 1
    return 0


def _array_compare(cell, geometry, assist, compiled, args) -> int:
    from repro.experiments.ext_array_area import AREA_TOLERANCE
    from repro.experiments.ext_array_read import DELAY_TOLERANCE, ENERGY_RATIO_BAND
    from repro.sram.compiler import compare_array

    def work():
        comp = compare_array(
            cell, geometry, args.vdd, assist=assist, options=compiled.options
        )
        rows_spec = [
            ("rows", geometry.rows),
            ("columns", geometry.columns),
            ("analytic_ps", 1e12 * comp.analytic_access_time),
            ("simulated_ps", 1e12 * comp.simulated_access_time),
            ("delay_ratio", comp.delay_ratio),
            ("energy_ratio", comp.energy_ratio),
            ("analytic_area_um2", comp.analytic_area_um2),
            ("census_area_um2", comp.census_area_um2),
            ("area_ratio", comp.area_ratio),
        ]
        return comp, rows_spec

    comp = _array_profiled(args, "compare", work)
    delay_ok = abs(comp.delay_ratio - 1.0) <= DELAY_TOLERANCE
    energy_ok = ENERGY_RATIO_BAND[0] <= comp.energy_ratio <= ENERGY_RATIO_BAND[1]
    area_gated = geometry.rows >= 64
    area_ok = (not area_gated) or abs(comp.area_ratio - 1.0) <= AREA_TOLERANCE
    print(f"{compiled.circuit.title} vs analytic plan")
    print(f"  read delay : {1e12 * comp.simulated_access_time:.1f} ps simulated / "
          f"{1e12 * comp.analytic_access_time:.1f} ps analytic "
          f"(ratio {comp.delay_ratio:.3f}, tolerance +/-{DELAY_TOLERANCE:.0%}) "
          f"[{'ok' if delay_ok else 'OUT OF TOLERANCE'}]")
    print(f"  energy     : {1e15 * comp.simulated_energy:.2f} fJ path / "
          f"{1e15 * comp.analytic_energy:.3f} fJ analytic cell "
          f"(ratio {comp.energy_ratio:.1f}, band "
          f"[{ENERGY_RATIO_BAND[0]:g}x, {ENERGY_RATIO_BAND[1]:g}x]) "
          f"[{'ok' if energy_ok else 'OUT OF BAND'}]")
    print(f"  cell rails : {1e15 * comp.simulated_cell_energy:.3f} fJ simulated / "
          f"{1e15 * comp.analytic_cell_energy:.3f} fJ analytic (not gated)")
    area_note = (
        f"tolerance +/-{AREA_TOLERANCE:.0%}" if area_gated
        else "not gated below 64 rows"
    )
    print(f"  macro area : {comp.census_area_um2:.1f} um2 census / "
          f"{comp.analytic_area_um2:.1f} um2 analytic "
          f"(ratio {comp.area_ratio:.3f}, {area_note}) "
          f"[{'ok' if area_ok else 'OUT OF TOLERANCE'}]")
    return 0 if (delay_ok and energy_ok and area_ok) else 1


def _array_sweep(args) -> int:
    from pathlib import Path

    from repro.engine import EngineConfig
    from repro.sram.compiler import run_array_sweep

    try:
        rows_list = [int(r) for r in args.rows_list.split(",") if r.strip()]
        if not rows_list:
            raise ValueError("--rows-list is empty")
    except ValueError as exc:
        print(f"error: bad --rows-list: {exc}", file=sys.stderr)
        return 2
    base = Path(args.output_dir or "results")
    run_key = f"array_{args.design}_{args.scenario}_{args.columns}x@{args.vdd}"
    engine = EngineConfig(
        jobs=args.jobs,
        resume=args.resume,
        checkpoint_path=base / "checkpoints" / "array_sweep.jsonl",
        run_key=run_key,
        root_seed=args.seed,
        cache_dir=base / "table_cache",
    )
    try:
        results, report = run_array_sweep(
            rows_list, columns=args.columns, vdd=args.vdd,
            design=args.design, scenario=args.scenario, engine=engine,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    print(f"{args.design} {args.scenario} sweep, {args.columns} columns, "
          f"V_DD {args.vdd} V ({report.jobs} job(s), "
          f"{report.resumed_count} resumed, {report.wall_s:.1f} s)")
    print("  rows  unknowns  sparse  access (ps)  energy (fJ)")
    failed = False
    for rows, m in zip(rows_list, results):
        if m is None:
            print(f"  {rows:<5} FAILED (see checkpoint log)")
            failed = True
            continue
        print(f"  {rows:<5} {m['unknowns']:<9} "
              f"{'yes' if m['sparse_engaged'] else 'no':<7} "
              f"{_fmt_ps(m['access_delay']):<12} {1e15 * m['energy']:.2f}")
    return 1 if failed else 0


def _fmt_ps(value: float) -> str:
    if value is None or (isinstance(value, float) and not math.isfinite(value)):
        return "inf"
    return f"{value * 1e12:.1f} ps"


def _cmd_netlist(args) -> int:
    from pathlib import Path

    from repro.circuit.dcop import solve_dc
    from repro.circuit.parser import parse_netlist
    from repro.circuit.report import format_netlist, format_operating_point
    from repro.circuit.transient import simulate_transient

    circuit = parse_netlist(Path(args.deck).read_text())
    print(format_netlist(circuit))
    if args.tran is not None:
        result = simulate_transient(circuit, args.tran)
        print(f"\n* transient to {args.tran:g} s ({len(result.times)} points)")
        for name in circuit.node_names:
            print(f"v({name}) final = {result.final(name):+.6f} V")
    else:
        print()
        print(format_operating_point(solve_dc(circuit)))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("device-info", help="calibrated device figures of merit")

    cell = sub.add_parser("cell", help="metrics of one studied SRAM cell")
    cell.add_argument("design", choices=CELL_CHOICES)
    cell.add_argument("--vdd", type=float, default=0.8)
    cell.add_argument("--corner", default="tt", metavar="NAME",
                      help="process-corner device cards (tt, ff, ss, fs, sf); "
                      "TFET designs only")

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument("experiment_id")
    exp.add_argument("--profile", action="store_true",
                     help="collect solver telemetry and write a run manifest")
    exp.add_argument("--trace", metavar="PATH", default=None,
                     help="write the structured JSON event trace to PATH")
    exp.add_argument("--log-level", default=None,
                     choices=("debug", "info", "warning", "error"),
                     help="event threshold for the trace/event log")
    exp.add_argument("--trace-dir", metavar="DIR", default=None,
                     help="stream cross-process span trees into DIR and "
                     "merge them into DIR/trace.json (see `repro trace`)")
    exp.add_argument("--output-dir", metavar="DIR", default=None,
                     help="directory for result JSON and run manifests")
    exp.add_argument("--verify", action="store_true",
                     help="re-check accepted solver results against the "
                     "reference implementations while the experiment runs")
    exp.add_argument("--samples", type=int, default=None, metavar="N",
                     help="Monte-Carlo sample count (sampling experiments)")
    exp.add_argument("--seed", type=int, default=None, metavar="S",
                     help="root seed for the batch engine's per-sample seeds")
    exp.add_argument("--jobs", type=int, default=None, metavar="J",
                     help="worker processes; bit-identical to --jobs 1")
    exp.add_argument("--resume", action="store_true",
                     help="resume an interrupted run from its checkpoints")
    exp.add_argument("--char-store", metavar="DIR", default=None,
                     help="serve grid points from a pre-built "
                     "characterization store (repro char build)")

    char = sub.add_parser("char", help="incremental characterization store")
    char_sub = char.add_subparsers(dest="char_command", required=True)

    def _char_common(p):
        p.add_argument("--spec", default="nominal", metavar="NAME|FILE",
                       help="built-in spec name (nominal, beta_sweep, corners) "
                       "or a JSON spec file")
        p.add_argument("--store", default="results/char", metavar="DIR",
                       help="store directory (default: results/char)")

    char_build = char_sub.add_parser(
        "build", help="simulate the spec's missing grid points")
    _char_common(char_build)
    char_build.add_argument("--jobs", type=int, default=1, metavar="J",
                            help="worker processes for the engine batch")
    char_build.add_argument("--verify-fraction", type=float, default=0.0,
                            metavar="F", help="sample-audit this fraction of "
                            "points under repro.verify")
    char_build.add_argument("--profile", action="store_true",
                            help="print store hit/miss counters after the build")
    char_build.add_argument("--trace-dir", metavar="DIR", default=None,
                            help="stream the build batch's span trees into DIR "
                            "and merge them into DIR/trace.json")
    char_build.add_argument("--metrics-out", metavar="PATH", default=None,
                            help="write the build's metrics snapshot to PATH "
                            "(JSON; a .prom sibling is written too)")

    char_status = char_sub.add_parser(
        "status", help="coverage of one spec: present/missing/failed/stale")
    _char_common(char_status)
    char_status.add_argument("--json", action="store_true",
                             help="machine-readable store state (spec "
                             "coverage + whole-index counts)")

    char_query = char_sub.add_parser(
        "query", help="interpolated metric query with provenance")
    _char_common(char_query)
    char_query.add_argument("metric")
    char_query.add_argument("--design", required=True)
    char_query.add_argument("--vdd", type=float, required=True)
    char_query.add_argument("--beta", type=float, default=None)
    char_query.add_argument("--corner", default="tt")
    char_query.add_argument("--method", default="auto",
                            choices=("auto", "linear", "cubic", "nearest"))
    char_query.add_argument("--json", action="store_true",
                            help="print the answer as JSON")

    char_export = char_sub.add_parser(
        "export", help="dump a spec's entries as CSV or JSON")
    _char_common(char_export)
    char_export.add_argument("--format", default="csv", choices=("csv", "json"))
    char_export.add_argument("--out", default=None, metavar="PATH",
                             help="output file (default: stdout)")

    array = sub.add_parser(
        "array", help="hierarchical array compiler (repro.sram.compiler)")
    array_sub = array.add_subparsers(dest="array_command", required=True)

    def _array_common(p):
        p.add_argument("--design", default="proposed",
                       choices=("proposed", "cmos", "asym", "inward_n",
                                "outward_n"),
                       help="bitcell composed into the array (7T's decoupled "
                       "read port is outside the column topology)")
        p.add_argument("--rows", type=int, default=16)
        p.add_argument("--columns", type=int, default=4)
        p.add_argument("--vdd", type=float, default=0.8)
        p.add_argument("--corner", default="tt", metavar="NAME",
                       help="process-corner device cards (TFET designs only)")
        p.add_argument("--scenario", default="read",
                       choices=("read", "write", "half_select"))
        p.add_argument("--sense", default="replica",
                       choices=("replica", "fixed", "none"),
                       help="read sense-enable source (replica-bitline "
                       "timed, ideal pulse, or no sense amp)")
        p.add_argument("--no-assist", action="store_true",
                       help="drop the design's default read assist")

    array_build = array_sub.add_parser(
        "build", help="compile the critical path and print its structure")
    _array_common(array_build)

    for verb, verb_help in (
        ("measure", "simulate the compiled path and print its metrics"),
        ("compare", "validate the simulated path against the analytic model"),
    ):
        verb_p = array_sub.add_parser(verb, help=verb_help)
        _array_common(verb_p)
        verb_p.add_argument("--profile", action="store_true",
                            help="collect solver telemetry and write a run "
                            "manifest (`repro diag` summarizes it)")
        verb_p.add_argument("--output-dir", metavar="DIR", default=None,
                            help="manifest directory (default: results/)")

    array_sweep = array_sub.add_parser(
        "sweep", help="engine-backed geometry sweep (checkpointed, resumable)")
    _array_common(array_sweep)
    array_sweep.add_argument("--rows-list", default="8,16,32", metavar="R1,R2",
                             help="comma-separated row counts to sweep")
    array_sweep.add_argument("--jobs", type=int, default=1, metavar="J",
                             help="worker processes")
    array_sweep.add_argument("--resume", action="store_true",
                             help="resume from the sweep's JSONL checkpoint")
    array_sweep.add_argument("--seed", type=int, default=0, metavar="S",
                             help="engine root seed (sweep tasks are "
                             "deterministic; the seed keys the checkpoint)")
    array_sweep.add_argument("--output-dir", metavar="DIR", default=None,
                             help="checkpoint/cache directory "
                             "(default: results/)")

    net = sub.add_parser("netlist", help="parse and solve a SPICE-subset deck")
    net.add_argument("deck")
    net.add_argument("--tran", type=float, default=None, help="transient stop time (s)")

    diag = sub.add_parser("diag", help="summarize saved run manifests")
    diag.add_argument("paths", nargs="*", default=["results"],
                      help="manifest files or directories (default: results/)")

    trace_p = sub.add_parser("trace", help="timeline analytics on a merged trace")
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    trace_verbs = (
        ("summary", "span population, wall times, task coverage"),
        ("timeline", "ASCII Gantt of task spans in concurrency lanes"),
        ("slowest", "tasks ranked by wall time and Newton effort"),
        ("convergence", "ConvergenceError forensics grouped per task"),
    )
    for verb, verb_help in trace_verbs:
        verb_p = trace_sub.add_parser(verb, help=verb_help)
        verb_p.add_argument("--trace", default="results/trace", metavar="PATH",
                            help="merged trace.json or its trace directory "
                            "(default: results/trace)")
        if verb == "timeline":
            verb_p.add_argument("--width", type=int, default=72, metavar="COLS",
                                help="timeline width in characters")
        if verb == "slowest":
            verb_p.add_argument("--top", type=int, default=10, metavar="N",
                                help="how many tasks to list")

    serve_p = sub.add_parser(
        "serve", help="online characterization service (repro.serve)")
    serve_sub = serve_p.add_subparsers(dest="serve_command", required=True)

    serve_start = serve_sub.add_parser(
        "start", help="run the serving daemon in the foreground")
    serve_start.add_argument("--spec", action="append", default=None,
                             metavar="NAME|FILE",
                             help="serving spec (repeatable; default: nominal)")
    serve_start.add_argument("--store", default="results/char", metavar="DIR",
                             help="characterization store directory")
    serve_start.add_argument("--socket", default="results/serve.sock",
                             metavar="PATH", help="unix socket to listen on")
    serve_start.add_argument("--port", type=int, default=None, metavar="N",
                             help="also listen on localhost TCP port N")
    serve_start.add_argument("--jobs", type=int, default=1, metavar="J",
                             help="worker processes per backfill build")
    serve_start.add_argument("--max-inflight", type=int, default=64,
                             metavar="N", help="concurrent query budget "
                             "(past it: structured overload rejection)")
    serve_start.add_argument("--backfill-depth", type=int, default=256,
                             metavar="N", help="pending backfill point budget")
    serve_start.add_argument("--coalesce-s", type=float, default=0.05,
                             metavar="F", help="miss-coalescing window (s)")
    serve_start.add_argument("--timeout-s", type=float, default=120.0,
                             metavar="F", help="per-request budget (s)")
    serve_start.add_argument("--drain-grace-s", type=float, default=30.0,
                             metavar="F", help="graceful shutdown budget (s)")
    serve_start.add_argument("--verify-fraction", type=float, default=0.0,
                             metavar="F", help="sample-audit fraction for "
                             "backfill builds")
    serve_start.add_argument("--metrics-out", metavar="PATH", default=None,
                             help="write the final metrics snapshot to PATH "
                             "(JSON; a .prom sibling is written too)")
    serve_start.add_argument("--trace-dir", metavar="DIR", default=None,
                             help="stream backfill-build span trees into DIR")
    serve_start.add_argument("--workers", type=int, default=1, metavar="N",
                             help="shard the keyspace over N daemon workers "
                             "behind one routing front (default: 1, no fleet)")
    serve_start.add_argument("--http-port", type=int, default=None,
                             metavar="N", help="also expose the front over "
                             "HTTP/1.1 on localhost port N (/v1/query, "
                             "/v1/status, /metrics)")
    serve_start.add_argument("--shard-index", type=int, default=None,
                             help=argparse.SUPPRESS)  # fleet-internal: run as
    # shard i of --workers, deriving the shard address from the front's
    # --socket/--port base (also how an operator restarts a dead shard).
    serve_start.add_argument("--synthetic-service-s", type=float, default=0.0,
                             metavar="F", help="benchmark calibration: block "
                             "F seconds per query (keep 0 in production)")

    for verb, verb_help in (
        ("status", "coverage, backfill queue, and request counters"),
        ("query", "one metric query against a running daemon"),
    ):
        verb_p = serve_sub.add_parser(verb, help=verb_help)
        verb_p.add_argument("--socket", default="results/serve.sock",
                            metavar="PATH", help="daemon unix socket")
        verb_p.add_argument("--port", type=int, default=None, metavar="N",
                            help="connect via localhost TCP instead")
        verb_p.add_argument("--timeout-s", type=float, default=120.0,
                            metavar="F", help="client-side timeout (s)")
        verb_p.add_argument("--json", action="store_true",
                            help="print the raw response as JSON")
        if verb == "query":
            verb_p.add_argument("metric")
            verb_p.add_argument("--design", required=True)
            verb_p.add_argument("--vdd", type=float, required=True)
            verb_p.add_argument("--beta", type=float, default=None)
            verb_p.add_argument("--corner", default="tt")
            verb_p.add_argument("--method", default="auto",
                                choices=("auto", "linear", "cubic", "nearest"))

    bench_p = sub.add_parser(
        "bench", help="record and check benchmark headline history")
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)
    for verb, verb_help in (
        ("history", "record fresh BENCH_*.json results and print the history"),
        ("check", "same, then exit non-zero on any regression (CI gate)"),
    ):
        verb_p = bench_sub.add_parser(verb, help=verb_help)
        verb_p.add_argument("--history", default="results/bench_history.jsonl",
                            metavar="PATH", help="history log location")
        verb_p.add_argument("--root", default=".", metavar="DIR",
                            help="directory scanned for BENCH_*.json")
        verb_p.add_argument("--tolerance", type=float, default=0.25, metavar="F",
                            help="allowed fractional drop below the baseline "
                            "median for higher-is-better metrics")

    args = parser.parse_args(argv)
    handlers = {
        "device-info": _cmd_device_info,
        "cell": _cmd_cell,
        "experiment": _cmd_experiment,
        "char": _cmd_char,
        "array": _cmd_array,
        "netlist": _cmd_netlist,
        "diag": _cmd_diag,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
