"""The invariant checks behind :mod:`repro.verify`.

Each audit takes the active :class:`~repro.verify.core.VerifySession`
plus the accepted result it re-checks, and reports violations through
:meth:`~repro.verify.core.VerifySession.record_violation` (which raises
unless the session runs in collection mode).  The audits deliberately
avoid the optimized code paths they police: reference quantities come
from the retained seed implementations
(:class:`repro.circuit.mna_reference.ReferenceMnaSystem`,
``CubicTable2D._evaluate_inside_reference``), reached lazily through
the session so this module imports nothing from :mod:`repro.circuit`
at import time (the hooks in ``dcop``/``transient``/``tables`` import
this module, and those modules are themselves imported while the
``repro.circuit`` package initializes).

Tolerances are relative to the natural scale of each quantity — the
solver's residual tolerance for KCL, the largest capacitor charge for
the charge balance, the patch magnitude for table outputs — so the
same defaults hold from femtoamp leakage studies to write transients.
"""

from __future__ import annotations

import numpy as np

from repro.verify.core import VerifySession

__all__ = [
    "audit_newton_solution",
    "audit_transient_step",
    "audit_table",
]


def audit_newton_solution(
    session: VerifySession,
    system,
    x: np.ndarray,
    t: float,
    *,
    gmin: float,
    transient,
    clamps,
    source_scale: float,
    residual_tolerance: float,
) -> None:
    """Re-check one converged Newton solution.

    Two invariants:

    * **KCL** — the *reference* assembler's residual at the accepted
      ``x`` must still satisfy the solver tolerance (times
      ``kcl_margin``).  Catches solutions accepted off a stale device
      cache or a wrong stamp: the optimized residual said "converged"
      but the real circuit equations disagree.
    * **Equivalence** — the optimized residual at the same point must
      match the reference residual.  Localizes a KCL failure to the
      assembler (stamping bug) rather than the solver (acceptance bug).

    Plus, when enabled and due, the finite-difference **Jacobian
    probe** (see :func:`_audit_jacobian`).
    """
    options = session.options
    if options.kcl_audit:
        session.count("kcl")
        reference = session.reference_for(system)
        f_ref = reference.assemble_residual(
            x, t, gmin=gmin, transient=transient, clamps=clamps,
            source_scale=source_scale,
        )
        worst = float(np.max(np.abs(f_ref))) if f_ref.size else 0.0
        limit = options.kcl_margin * residual_tolerance
        if not worst <= limit:  # NaN-safe: NaN comparisons are False
            node = int(np.argmax(np.abs(f_ref)))
            session.record_violation(
                "kcl",
                "accepted solution violates reference KCL",
                {
                    "max_residual": worst,
                    "limit": limit,
                    "worst_row": node,
                    "sim_time": float(t),
                },
            )
        f_opt = system.assemble_residual(
            x, t, gmin=gmin, transient=transient, clamps=clamps,
            source_scale=source_scale,
        )
        session.count("equivalence")
        diff = float(np.max(np.abs(f_opt - f_ref))) if f_ref.size else 0.0
        scale = 1.0 + worst
        if not diff <= options.equivalence_tolerance * scale:
            node = int(np.argmax(np.abs(f_opt - f_ref)))
            session.record_violation(
                "equivalence",
                "optimized and reference residuals disagree",
                {
                    "max_difference": diff,
                    "tolerance": options.equivalence_tolerance * scale,
                    "worst_row": node,
                    "sim_time": float(t),
                },
            )
    if options.jacobian_audit and session.jacobian_due():
        _audit_jacobian(
            session, system, x, t, gmin=gmin, transient=transient,
            clamps=clamps, source_scale=source_scale,
        )


def _audit_jacobian(
    session: VerifySession,
    system,
    x: np.ndarray,
    t: float,
    *,
    gmin: float,
    transient,
    clamps,
    source_scale: float,
) -> None:
    """Stamped Jacobian vs central finite differences of the reference
    residual.

    Catches wrong derivative stamps (sign flips, missing gm/gds terms,
    companion-conductance errors) that a residual audit cannot see —
    they bend Newton's path without moving its fixed point.  Costs
    ``2 * size`` reference assemblies; gated by ``jacobian_interval``.
    """
    options = session.options
    session.count("jacobian")
    reference = session.reference_for(system)
    _, jac = system.assemble(
        x, t, gmin=gmin, transient=transient, clamps=clamps,
        source_scale=source_scale, copy=True,
    )
    eps = options.jacobian_step
    fd = np.empty_like(jac)
    probe = x.copy()
    for k in range(x.size):
        probe[k] = x[k] + eps
        f_plus = reference.assemble_residual(
            probe, t, gmin=gmin, transient=transient, clamps=clamps,
            source_scale=source_scale,
        )
        probe[k] = x[k] - eps
        f_minus = reference.assemble_residual(
            probe, t, gmin=gmin, transient=transient, clamps=clamps,
            source_scale=source_scale,
        )
        probe[k] = x[k]
        fd[:, k] = (f_plus - f_minus) / (2.0 * eps)
    # Entrywise relative tolerance, floored by the finite-difference
    # noise scale (assembly roundoff / eps plus truncation on the
    # strongly curved TFET characteristics).
    magnitude = np.abs(jac) + np.abs(fd)
    floor = 1e-9 * (1.0 + float(np.max(magnitude, initial=0.0)))
    allowed = options.jacobian_tolerance * magnitude + floor
    excess = np.abs(fd - jac) - allowed
    if not np.all(excess <= 0.0):  # NaN-safe
        row, col = np.unravel_index(int(np.nanargmax(excess)), excess.shape)
        session.record_violation(
            "jacobian",
            "stamped Jacobian disagrees with finite differences",
            {
                "row": int(row),
                "col": int(col),
                "stamped": float(jac[row, col]),
                "finite_difference": float(fd[row, col]),
                "sim_time": float(t),
            },
        )


def audit_transient_step(
    session: VerifySession,
    system,
    x_prev: np.ndarray,
    x_new: np.ndarray,
    state,
    charges_new: np.ndarray,
    currents_new: np.ndarray,
) -> None:
    """Charge-conservation audit of one accepted transient step.

    ``state`` is the companion-model state the step was solved with
    (previous charges/currents, the step actually taken); ``charges_new``
    and ``currents_new`` are the integrator's stored values for the new
    point — the ones the *next* step will build its companion model on.

    Three invariants, all against from-scratch reference evaluations:

    * the stored previous charges match ``q(x_prev)`` — a stale
      capacitor cache here silently injects or destroys charge;
    * the stored new charges/currents match ``q(x_new)`` /
      ``i(x_new, state)``;
    * the companion-model charge balance holds: ``Δq = h·i`` (backward
      Euler) or ``Δq = h·(i_new + i_prev)/2`` (trapezoid), i.e. the
      charge delivered to each capacitor equals the integral of its
      companion current over the step.
    """
    options = session.options
    if not options.charge_audit:
        return
    session.count("charge")
    reference = session.reference_for(system)
    q_prev_ref = reference.capacitor_charges(x_prev)
    if not q_prev_ref.size:
        return
    q_new_ref = reference.capacitor_charges(x_new)
    i_new_ref = reference.capacitor_currents(x_new, state)
    h = state.timestep
    scale_q = max(
        float(np.max(np.abs(q_prev_ref))),
        float(np.max(np.abs(q_new_ref))),
        h * float(np.max(np.abs(i_new_ref))),
        1e-24,  # ~6 electrons: below this, "charge" is numerical dust
    )
    tolerance = options.charge_tolerance

    checks = (
        ("stored previous charges", state.capacitor_charges, q_prev_ref, scale_q),
        ("stored new charges", charges_new, q_new_ref, scale_q),
        ("stored companion currents", currents_new, i_new_ref, scale_q / h),
    )
    for label, stored, ref, scale in checks:
        diff = float(np.max(np.abs(stored - ref)))
        if not diff <= tolerance * scale:
            session.record_violation(
                "charge",
                f"{label} disagree with reference evaluation",
                {"max_difference": diff, "tolerance": tolerance * scale,
                 "cap": int(np.argmax(np.abs(stored - ref)))},
            )

    if state.method == "trapezoidal":
        i_eff = 0.5 * (np.asarray(currents_new) + np.asarray(state.capacitor_currents))
    else:
        i_eff = np.asarray(currents_new)
    balance = q_new_ref - q_prev_ref - h * i_eff
    worst = float(np.max(np.abs(balance)))
    if not worst <= tolerance * scale_q:
        session.record_violation(
            "charge",
            "companion-model charge balance violated",
            {"max_imbalance": worst, "tolerance": tolerance * scale_q,
             "cap": int(np.argmax(np.abs(balance)))},
        )


def audit_table(session: VerifySession, table, x: np.ndarray, y: np.ndarray) -> None:
    """Baked-coefficient table evaluation vs the retained seed kernel.

    ``x``/``y`` are the already-clamped in-domain coordinates — the
    tangent-plane extrapolation applied outside is shared arithmetic,
    so comparing the inside kernels covers the optimized surface.
    """
    session.count("table")
    optimized = table._evaluate_inside(x, y)
    reference = table._evaluate_inside_reference(x, y)
    tolerance = session.options.table_tolerance
    # Both kernels contract the same 4x4 sample patch, so their
    # roundoff is relative to the *patch* magnitude — with derivative
    # components amplified by the inverse grid steps — not to each
    # component's own (possibly near-zero) value.
    base = max(float(np.max(np.abs(table.values))), 1e-30)
    inv_hx = 1.0 / table.x_grid.step
    inv_hy = 1.0 / table.y_grid.step
    scales = (base, base * inv_hx, base * inv_hy, base * inv_hx * inv_hy)
    for label, opt, ref, scale in zip(("f", "fx", "fy", "fxy"), optimized, reference, scales):
        diff = float(np.max(np.abs(np.asarray(opt) - np.asarray(ref)), initial=0.0))
        if not diff <= tolerance * scale:
            session.record_violation(
                "table",
                f"baked-coefficient kernel disagrees with seed kernel on {label}",
                {"max_difference": diff, "tolerance": tolerance * scale},
            )
