"""Verification primitives: options, session, violation bookkeeping.

The optimized SPICE core (precompiled stamping, reused LU
factorizations, warm-started Newton, last-point caches, baked table
coefficients) can fail *silently*: a stale cache or a wrong stamp
returns plausible numbers without raising.  This package makes the
optimizations continuously provable against the retained reference
implementations (:class:`repro.circuit.mna_reference.ReferenceMnaSystem`,
``CubicTable2D.reference_evaluation``).

Verification is **off by default** and follows the exact discipline of
:mod:`repro.telemetry`: every audit point starts with one call to
:func:`active`, which returns ``None`` unless a session has been
installed, so the disabled cost is a single module-global read per
audited operation (guarded by ``benchmarks/test_verify_overhead.py``
at < 3 %).

With a session installed, the audits re-check *accepted* results:

* **KCL residual audit** — every converged Newton solution (DC and
  transient points alike) is re-assembled through the loop-based
  reference stamper; the true residual must still satisfy the solver
  tolerance, and the optimized residual must agree with the reference.
* **Charge audit** — every accepted transient step's stored capacitor
  charges and companion currents are recomputed from scratch; the
  integrator's cached values must match, and the companion-model
  charge balance ``delta q = integral i dt`` must hold.
* **Table audit** — every Nth ``CubicTable2D`` evaluation is replayed
  through the retained seed kernel and compared.
* **Jacobian probe** — every Nth Newton solve compares the stamped
  Jacobian against central finite differences of the reference
  residual (off by default: it costs ``2 * size`` reference
  assemblies per probe).

Violations are recorded on the session, mirrored into any active
:mod:`repro.telemetry` session (``verify.violations`` counter plus a
``verify.violation`` event), and — by default — raised as
:class:`VerificationError` so a silent-corruption bug becomes a loud
test failure.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.telemetry import core as telemetry

__all__ = [
    "VerificationError",
    "VerifyOptions",
    "VerifySession",
    "active",
    "disable",
    "enable",
    "enabled",
]


class VerificationError(AssertionError):
    """An audit found an accepted result that violates an invariant.

    ``kind`` names the audit (``kcl``, ``equivalence``, ``charge``,
    ``table``, ``jacobian``) and ``detail`` carries the measured
    numbers, both also rendered into the message.
    """

    def __init__(self, kind: str, message: str, detail: dict | None = None):
        self.kind = kind
        self.detail = dict(detail or {})
        if self.detail:
            rendered = ", ".join(
                f"{key}={value:.3e}" if isinstance(value, float) else f"{key}={value}"
                for key, value in self.detail.items()
            )
            message = f"{message} [{rendered}]"
        super().__init__(f"verify.{kind}: {message}")


@dataclass(frozen=True)
class VerifyOptions:
    """Audit selection and tolerances.

    Tolerances are *relative to the natural scale* of each compared
    quantity (see :mod:`repro.verify.audits`): residuals compare
    against the solver's own residual tolerance, charges against the
    largest charge in the circuit, table outputs against the patch
    magnitude — so one set of defaults works from femtoamp leakage
    studies to write transients.
    """

    kcl_audit: bool = True
    """Re-check every converged Newton solution against the reference
    assembler's residual."""

    kcl_margin: float = 20.0
    """Accepted reference-residual excess over the solver's
    ``residual_tolerance`` (the optimized and reference stampers agree
    to ~1e-12, but line-search acceptance can sit just under the
    tolerance)."""

    equivalence_tolerance: float = 1e-9
    """Largest accepted relative difference between the optimized and
    reference residuals at the same point."""

    charge_audit: bool = True
    """Recompute capacitor charges/companion currents of every accepted
    transient step from scratch and check the integrator's cached
    values plus the charge-balance identity."""

    charge_tolerance: float = 1e-9
    """Relative tolerance of the charge audit."""

    table_audit: bool = True
    """Replay every ``table_interval``-th ``CubicTable2D.evaluate``
    through the retained seed kernel."""

    table_interval: int = 64
    table_tolerance: float = 1e-9

    jacobian_audit: bool = False
    """Probe every ``jacobian_interval``-th converged Newton solve's
    stamped Jacobian against central finite differences of the
    reference residual.  Costs ``2 * size`` reference assemblies per
    probe; off by default."""

    jacobian_interval: int = 16
    jacobian_tolerance: float = 5e-3
    """Relative tolerance of the finite-difference probe (dominated by
    FD truncation error on the strongly curved TFET characteristics,
    not by stamping accuracy)."""

    jacobian_step: float = 1e-6
    """Voltage perturbation of the central difference (volts)."""

    raise_on_violation: bool = True
    """Raise :class:`VerificationError` at the first violation.  With
    ``False`` violations only accumulate on the session (the fuzzer's
    collection mode)."""

    max_violations: int = 100
    """Bound on recorded violation records (counting continues)."""

    def __post_init__(self) -> None:
        if self.kcl_margin < 1.0:
            raise ValueError(f"kcl_margin must be >= 1, got {self.kcl_margin}")
        if self.table_interval < 1 or self.jacobian_interval < 1:
            raise ValueError("audit intervals must be >= 1")
        for name in (
            "equivalence_tolerance",
            "charge_tolerance",
            "table_tolerance",
            "jacobian_tolerance",
            "jacobian_step",
        ):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")


class VerifySession:
    """One enabled verification window.

    Holds the audit counters, the recorded violations, and a cache of
    reference assemblers keyed on the audited system (rebuilt when the
    system recompiles, so topology changes are tracked).
    """

    def __init__(self, options: VerifyOptions | None = None):
        self.options = options or VerifyOptions()
        self.audits: dict[str, int] = {}
        self.violations: list[dict] = []
        self.violation_count = 0
        self._references: dict[int, tuple] = {}
        self._table_clock = 0
        self._jacobian_clock = 0

    # -- bookkeeping -----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.audits[name] = self.audits.get(name, 0) + n

    def reference_for(self, system):
        """The loop-based reference assembler for an optimized system.

        Cached per system identity and invalidated when the system's
        compiled topology changes (``invalidate_caches`` or the
        element-count guard), so mutation-then-reuse is audited against
        a reference that saw the mutation.
        """
        from repro.circuit.mna_reference import ReferenceMnaSystem

        key = id(system)
        topology = getattr(system, "_topology", None)
        cached = self._references.get(key)
        if cached is not None and cached[0] is topology:
            return cached[1]
        reference = ReferenceMnaSystem(system.circuit)
        self._references[key] = (topology, reference)
        return reference

    def table_due(self) -> bool:
        """Clock for the table spot check (every Nth evaluation)."""
        self._table_clock += 1
        return self._table_clock % self.options.table_interval == 0

    def jacobian_due(self) -> bool:
        """Clock for the finite-difference Jacobian probe."""
        self._jacobian_clock += 1
        return self._jacobian_clock % self.options.jacobian_interval == 0

    def record_violation(self, kind: str, message: str, detail: dict | None = None) -> None:
        """Register one invariant violation.

        Mirrors into the active telemetry session, appends to the
        violation log (bounded), and raises unless the session runs in
        collection mode.
        """
        self.violation_count += 1
        record = {"kind": kind, "message": message, **(detail or {})}
        if len(self.violations) < self.options.max_violations:
            self.violations.append(record)
        tel = telemetry.active()
        if tel is not None:
            tel.count("verify.violations")
            tel.count(f"verify.violations.{kind}")
            tel.event("verify.violation", level="error", **record)
        if self.options.raise_on_violation:
            raise VerificationError(kind, message, detail)

    def snapshot(self) -> dict:
        """Audit counters and violations as one JSON-serializable dict."""
        return {
            "audits": dict(sorted(self.audits.items())),
            "violation_count": self.violation_count,
            "violations": list(self.violations),
        }


# -- global session management --------------------------------------------------

_session: VerifySession | None = None


def active() -> VerifySession | None:
    """The installed session, or ``None`` when verification is off.

    This is the hot-path guard (same contract as
    :func:`repro.telemetry.core.active`); keep it trivial.
    """
    return _session


def enable(options: VerifyOptions | None = None) -> VerifySession:
    """Install (and return) a fresh global verification session."""
    global _session
    _session = VerifySession(options)
    return _session


def disable() -> VerifySession | None:
    """Remove the global session; returns it for post-hoc inspection."""
    global _session
    session, _session = _session, None
    return session


@contextmanager
def enabled(options: VerifyOptions | None = None):
    """Scoped verification: installs a session, restores the previous one."""
    global _session
    previous = _session
    session = VerifySession(options)
    _session = session
    try:
        yield session
    finally:
        _session = previous
