"""repro.verify — differential and invariant verification of the
optimized SPICE core.

See :mod:`repro.verify.core` for the audit catalogue and the
enable/disable discipline, :mod:`repro.verify.audits` for the invariant
implementations, and :mod:`repro.verify.fuzz` for the randomized
netlist fuzzer (kept out of this namespace on purpose: the fuzzer
imports the solver stack, while ``core``/``audits`` must stay
importable *from* it).
"""

from repro.verify.audits import (
    audit_newton_solution,
    audit_table,
    audit_transient_step,
)
from repro.verify.core import (
    VerificationError,
    VerifyOptions,
    VerifySession,
    active,
    disable,
    enable,
    enabled,
)

__all__ = [
    "VerificationError",
    "VerifyOptions",
    "VerifySession",
    "active",
    "disable",
    "enable",
    "enabled",
    "audit_newton_solution",
    "audit_table",
    "audit_transient_step",
]
