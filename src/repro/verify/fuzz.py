"""Randomized differential fuzzer for the optimized SPICE core.

Generates small SPICE-subset decks (TFET/MOS mixes, capacitors,
resistors, pulsed/PWL/DC sources), then cross-checks the optimized
paths against the retained seed references:

* the precompiled :class:`~repro.circuit.mna.MnaSystem` assembly
  against :class:`~repro.circuit.mna_reference.ReferenceMnaSystem` at
  randomized solution vectors, across DC / gmin / clamp /
  source-scaled / transient companion configurations;
* full solves (``solve_dc`` warm and cold, ``dc_sweep`` warm starts,
  ``simulate_transient`` with the predictor on and off) under a
  collection-mode :mod:`repro.verify` session, harvesting every KCL,
  equivalence, charge, table, and Jacobian audit violation.

A failing deck is *shrunk* by greedy card removal (a reduced deck is
kept whenever it still reproduces the same failure kind) and the
minimal reproducer is dumped as a ``.sp`` file — the artifact a human
debugs from.

Everything is deterministic: deck ``i`` of a run is a pure function of
``(root_seed, i)`` via the same ``SeedSequence`` derivation the batch
engine uses, and the probe vectors inside a check depend only on the
deck text.  This module imports the solver stack, which is why it is
*not* re-exported from :mod:`repro.verify` (the solver imports
``repro.verify`` for its audit hooks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.circuit.dcop import ConvergenceError, solve_dc
from repro.circuit.mna import MnaSystem, TransientState, VoltageClamp
from repro.circuit.mna_reference import ReferenceMnaSystem
from repro.circuit.parser import NetlistSyntaxError, parse_netlist
from repro.circuit.sweep import dc_sweep
from repro.circuit.transient import TransientOptions, simulate_transient
from repro.verify import core as verify
from repro.verify.core import VerifyOptions

__all__ = [
    "CheckResult",
    "FuzzFailure",
    "FuzzReport",
    "check_deck",
    "generate_deck",
    "run_fuzz",
    "shrink_deck",
]

_MODELS = ("ntfet", "ptfet", "nmos", "pmos")

_EQUIVALENCE_TOLERANCE = 1e-9
"""Relative agreement required between the optimized and reference
assemblies at randomized (non-converged) probe vectors."""


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def generate_deck(rng: np.random.Generator) -> str:
    """One random small netlist as SPICE-subset deck text.

    Every deck has a DC supply; beyond that the element mix is random:
    1–5 transistors of mixed models and polarities wired to arbitrary
    nodes, optional resistors, capacitors (node-to-node pairs included,
    so floating subnets occur and lean on the solver's gmin floor), an
    optional pulsed/PWL stimulus, and an optional DC current source.
    """
    vdd = float(rng.uniform(0.5, 0.9))
    n_internal = int(rng.integers(2, 6))
    internal = [f"n{k}" for k in range(1, n_internal + 1)]
    nodes = ["0", "vdd", *internal]

    lines = [f"* fuzz deck vdd={_fmt(vdd)}", f"Vvdd vdd 0 DC {_fmt(vdd)}"]

    if rng.random() < 0.7:
        nodes.append("in")
        if rng.random() < 0.6:
            t0 = float(rng.uniform(2e-11, 2e-10))
            width = float(rng.uniform(5e-11, 2e-10))
            edge = float(rng.uniform(5e-12, 5e-11))
            lines.append(
                f"Vin in 0 PULSE(0 {_fmt(vdd)} {_fmt(t0)} {_fmt(width)} {_fmt(edge)})"
            )
        else:
            n_corners = int(rng.integers(2, 5))
            # Strictly increasing corner times with >= 2 ps gaps.
            times = 1e-11 + np.cumsum(rng.uniform(2e-12, 1.5e-10, n_corners))
            values = rng.uniform(0.0, vdd, n_corners)
            pairs = " ".join(
                f"{_fmt(float(t))} {_fmt(float(v))}" for t, v in zip(times, values)
            )
            lines.append(f"Vin in 0 PWL({pairs})")

    for k in range(int(rng.integers(1, 6))):
        model = str(rng.choice(_MODELS))
        d, g, s = rng.choice(nodes, 3)
        width_m = float(rng.uniform(0.05, 0.4)) * 1e-6
        lines.append(f"M{k} {d} {g} {s} {model} W={_fmt(width_m)}")

    for k in range(int(rng.integers(0, 3))):
        a, b = rng.choice(nodes, 2, replace=False)
        lines.append(f"R{k} {a} {b} {_fmt(float(rng.uniform(1e3, 1e6)))}")

    for k in range(int(rng.integers(0, 4))):
        a, b = rng.choice(nodes, 2, replace=False)
        lines.append(f"C{k} {a} {b} {_fmt(float(rng.uniform(5e-17, 5e-15)))}")

    if rng.random() < 0.3:
        a, b = rng.choice(nodes, 2, replace=False)
        lines.append(f"I0 {a} {b} DC {_fmt(float(rng.uniform(-1e-6, 1e-6)))}")

    lines.append(".end")
    return "\n".join(lines) + "\n"


@dataclass
class CheckResult:
    """Outcome of every cross-check stage on one deck."""

    failure: dict | None = None
    """First failure as ``{"kind", "message", ...}``; None when clean."""

    audits: dict[str, int] = field(default_factory=dict)
    nonconverged: int = 0
    """Solve stages that raised ConvergenceError (not a verify failure:
    pathological random circuits may legitimately defeat the homotopy)."""


def _deck_rng(deck: str) -> np.random.Generator:
    """Probe-vector generator derived from the deck text alone, so a
    shrunk deck re-checks deterministically."""
    digest = np.frombuffer(deck.encode()[:64].ljust(64, b"\0"), dtype=np.uint32)
    return np.random.default_rng(np.random.SeedSequence(digest.tolist()))


def _equivalence_failure(system, reference, x, t, **kwargs) -> dict | None:
    f_opt, jac_opt = system.assemble(x, t, copy=True, **kwargs)
    f_ref, jac_ref = reference.assemble(x, t, **kwargs)
    scale_f = _EQUIVALENCE_TOLERANCE * (1.0 + float(np.max(np.abs(f_ref), initial=0.0)))
    diff_f = float(np.max(np.abs(f_opt - f_ref), initial=0.0))
    if not diff_f <= scale_f:
        return {
            "kind": "equivalence",
            "message": f"residual mismatch {diff_f:.3e} (allowed {scale_f:.3e})",
        }
    allowed = _EQUIVALENCE_TOLERANCE * (
        np.abs(jac_ref) + 1.0 + float(np.max(np.abs(jac_ref), initial=0.0))
    )
    diff_j = np.abs(jac_opt - jac_ref)
    if not np.all(diff_j <= allowed):
        worst = float(np.max(diff_j - allowed))
        return {
            "kind": "equivalence",
            "message": f"jacobian mismatch (worst excess {worst:.3e})",
        }
    return None


def _check_assembly(circuit, rng) -> dict | None:
    """Optimized vs reference assembly at randomized probe vectors."""
    system = MnaSystem(circuit)
    reference = ReferenceMnaSystem(circuit)
    n_caps = len(circuit.capacitors)
    clamps = ()
    if circuit.node_count:
        clamps = (VoltageClamp(0, float(rng.uniform(0.0, 0.8))),)
    for _ in range(4):
        x = rng.uniform(-0.2, 1.0, system.size)
        x_prev = rng.uniform(-0.2, 1.0, system.size)
        h = float(rng.uniform(1e-13, 1e-11))
        q_prev = reference.capacitor_charges(x_prev)
        i_prev = np.zeros(n_caps)
        configs = [
            {},
            {"gmin": 1e-3},
            {"clamps": clamps, "source_scale": float(rng.uniform(0.1, 1.0))},
            {
                "transient": TransientState(h, q_prev, i_prev, "backward_euler"),
                "gmin": 1e-12,
            },
            {
                "transient": TransientState(h, q_prev, i_prev, "trapezoidal"),
            },
        ]
        for kwargs in configs:
            failure = _equivalence_failure(
                system, reference, x, float(rng.uniform(0.0, 5e-10)), **kwargs
            )
            if failure is not None:
                return failure
    return None


def check_deck(deck: str) -> CheckResult:
    """Run every cross-check stage on one deck.

    Deterministic in the deck text.  Returns the first failure (with
    its kind), the audit counters accumulated across the solve stages,
    and how many stages failed to converge (allowed).
    """
    result = CheckResult()
    try:
        circuit = parse_netlist(deck)
    except NetlistSyntaxError as exc:
        result.failure = {"kind": "parse", "message": str(exc)}
        return result

    rng = _deck_rng(deck)
    try:
        result.failure = _check_assembly(circuit, rng)
        if result.failure is not None:
            return result

        options = VerifyOptions(
            raise_on_violation=False,
            table_interval=16,
            jacobian_audit=True,
            jacobian_interval=11,
        )
        t_stop = max([*circuit.breakpoints(), 3e-10]) * 1.3
        with verify.enabled(options) as session:
            op = None
            try:
                op = solve_dc(circuit)
            except ConvergenceError:
                result.nonconverged += 1
            if op is not None:
                try:
                    solve_dc(circuit, x0=op)  # warm start from own solution
                except ConvergenceError:
                    result.nonconverged += 1
            try:
                values = np.linspace(0.0, 0.8, 5)
                dc_sweep(circuit, circuit.voltage_sources[0].name, values)
            except ConvergenceError:
                result.nonconverged += 1
            for predictor in ("linear", "none"):
                try:
                    simulate_transient(
                        circuit, t_stop,
                        options=TransientOptions(predictor=predictor),
                    )
                except ConvergenceError:
                    result.nonconverged += 1
            result.audits = dict(session.audits)
            if session.violation_count:
                first = session.violations[0]
                result.failure = {
                    "kind": first["kind"],
                    "message": first["message"],
                    "violations": session.violation_count,
                }
    except Exception as exc:  # noqa: BLE001 — a crash is a finding, not an abort
        result.failure = {
            "kind": "crash",
            "message": f"{type(exc).__name__}: {exc}",
        }
    return result


def shrink_deck(deck: str, kind: str, max_checks: int = 200) -> str:
    """Greedy card removal to a minimal deck reproducing ``kind``.

    Repeatedly tries dropping one card line; a drop is kept when the
    reduced deck still fails with the same kind.  Node renumbering is
    unnecessary — the parser creates nodes on first use — so every
    reduction stays parseable.  ``max_checks`` bounds the re-check
    budget (each re-check runs full solves).
    """
    lines = deck.strip().splitlines()
    checks = 0
    changed = True
    while changed and checks < max_checks:
        changed = False
        for i, line in enumerate(lines):
            if line.startswith("*") or line.lower() == ".end":
                continue
            candidate_lines = lines[:i] + lines[i + 1 :]
            candidate = "\n".join(candidate_lines) + "\n"
            checks += 1
            result = check_deck(candidate)
            if result.failure is not None and result.failure["kind"] == kind:
                lines = candidate_lines
                changed = True
                break
            if checks >= max_checks:
                break
    return "\n".join(lines) + "\n"


@dataclass
class FuzzFailure:
    """One fuzzed deck that failed a cross-check."""

    index: int
    kind: str
    message: str
    deck: str
    minimized: str
    path: str | None = None


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz batch."""

    count: int
    root_seed: int
    failures: list[FuzzFailure] = field(default_factory=list)
    nonconverged: int = 0
    audits: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_fuzz(
    count: int,
    root_seed: int = 0,
    out_dir: str | Path | None = None,
    shrink: bool = True,
    on_progress=None,
) -> FuzzReport:
    """Fuzz ``count`` decks; deck ``i`` depends only on ``(root_seed, i)``.

    Failures are shrunk (unless ``shrink=False``) and, with ``out_dir``
    set, each minimal reproducer is dumped as
    ``fuzz_<index>_<kind>.sp`` for offline debugging.
    """
    report = FuzzReport(count=count, root_seed=root_seed)
    directory = Path(out_dir) if out_dir is not None else None
    if directory is not None:
        directory.mkdir(parents=True, exist_ok=True)
    for i in range(count):
        rng = np.random.default_rng(np.random.SeedSequence([int(root_seed), i]))
        deck = generate_deck(rng)
        result = check_deck(deck)
        report.nonconverged += result.nonconverged
        for name, n in result.audits.items():
            report.audits[name] = report.audits.get(name, 0) + n
        if result.failure is not None:
            kind = result.failure["kind"]
            minimized = shrink_deck(deck, kind) if shrink else deck
            failure = FuzzFailure(
                index=i,
                kind=kind,
                message=result.failure["message"],
                deck=deck,
                minimized=minimized,
            )
            if directory is not None:
                path = directory / f"fuzz_{i:05d}_{kind}.sp"
                header = (
                    f"* minimal reproducer: deck {i} of root seed {root_seed}\n"
                    f"* failure: {kind}: {result.failure['message']}\n"
                )
                path.write_text(header + minimized)
                failure.path = str(path)
            report.failures.append(failure)
        if on_progress is not None:
            on_progress(i + 1, count, len(report.failures))
    return report
