"""In-memory grid registry: what the daemon answers queries from.

A :class:`GridRegistry` holds one :class:`~repro.char.query.CharGrid`
per serving spec, loaded from the characterization store, plus the
store handle itself for exact-point lookups of backfilled entries that
live outside every serving spec's axes.

``maybe_reload()`` is the store-coherence hook: it stats the index
(``(mtime, size)`` token) before answering and reloads grids when the
store changed underneath — which is exactly what happens every time a
backfill batch lands, and whenever an external ``repro char build``
touches the same store while the daemon runs.  Reloads go through
:meth:`CharGrid.from_store`, so a solver/device fingerprint change
recompiles the payloads and stale entries silently stop being served.

``answer()`` tries every grid in spec order, falls back to the exact
index lookup, and raises the *most backfillable* of the collected
:class:`CharQueryError` causes on a miss — ``missing-entry`` beats
``out-of-range`` beats ``off-grid`` beats ``bad-request`` — so the
daemon can route the miss without string-matching error text.
"""

from __future__ import annotations

from pathlib import Path

from repro.char.fingerprint import entry_fingerprint
from repro.char.metrics import METRICS
from repro.char.query import CharAnswer, CharGrid, CharQueryError, as_store
from repro.char.spec import CharPoint, CharSpec
from repro.char.store import CharStore

__all__ = ["GridRegistry", "BACKFILLABLE_REASONS", "validate_point"]

BACKFILLABLE_REASONS = ("missing-entry", "out-of-range", "off-grid")
"""Miss reasons a backfill build can cure, most-specific first."""

_REASON_RANK = {reason: rank for rank, reason in enumerate(BACKFILLABLE_REASONS)}


def validate_point(metric: str, design: str, vdd: float, beta, corner: str) -> None:
    """Reject points that can never be characterized.

    Raises :class:`CharQueryError` with ``reason="bad-request"`` for an
    unknown metric/design/corner, a metric the design does not define,
    a beta sweep on a fixed-sizing design, a non-``tt`` corner on a
    corner-insensitive design, or an out-of-domain V_DD/beta — the
    same constraints :class:`~repro.char.spec.CharSpec` compiles away.
    """
    from repro.char.designs import DESIGNS
    from repro.devices.corners import CORNERS

    if metric not in METRICS:
        known = ", ".join(sorted(METRICS))
        raise CharQueryError(f"unknown metric {metric!r}; known: {known}")
    if design not in DESIGNS:
        known = ", ".join(sorted(DESIGNS))
        raise CharQueryError(f"unknown design {design!r}; known: {known}")
    if corner not in CORNERS:
        known = ", ".join(sorted(CORNERS))
        raise CharQueryError(f"unknown corner {corner!r}; known: {known}")
    design_def = DESIGNS[design]
    if metric not in design_def.metrics:
        raise CharQueryError(
            f"metric {metric!r} is not defined for design {design!r}"
        )
    if corner != "tt" and not design_def.corner_sensitive:
        raise CharQueryError(
            f"design {design!r} is corner-insensitive; only tt applies"
        )
    if beta is not None and not design_def.beta_sweepable:
        raise CharQueryError(
            f"design {design!r} has a fixed topology-defined sizing; "
            "beta is not a free axis"
        )
    if beta is not None and float(beta) <= 0.0:
        raise CharQueryError(f"beta must be positive, got {beta:g}")
    if not 0.0 < float(vdd) <= 2.0:
        raise CharQueryError(f"vdd {vdd:g} out of the (0, 2] V device domain")


class GridRegistry:
    """Loaded serving grids plus the store's exact-lookup path."""

    def __init__(self, store: CharStore | str | Path, specs: list[CharSpec]):
        self.store = as_store(store) or CharStore()
        self.specs = list(specs)
        self._grids: list[CharGrid] = []
        self._token: tuple[int, int] | None = None
        self.reloads = 0
        self.reload()

    # -- store coherence ---------------------------------------------------

    def reload(self) -> None:
        """(Re)load every serving grid from the store, unconditionally."""
        self.store.refresh()
        self._grids = [CharGrid.from_store(self.store, s) for s in self.specs]
        self._token = self.store.index_token()
        self.reloads += 1

    def maybe_reload(self) -> bool:
        """Reload iff the store index changed since the last load."""
        token = self.store.index_token()
        if token == self._token:
            return False
        self.reload()
        return True

    # -- coverage ----------------------------------------------------------

    def coverage(self) -> list[dict]:
        """Per-spec :class:`~repro.char.store.StoreStatus` as JSON."""
        return [self.store.status(spec).to_json() for spec in self.specs]

    # -- answering ---------------------------------------------------------

    def answer(
        self,
        metric: str,
        design: str,
        vdd: float,
        beta: float | None = None,
        corner: str = "tt",
        method: str = "auto",
    ) -> CharAnswer:
        """Answer from the loaded grids, else the exact index lookup.

        Raises :class:`CharQueryError` with the most backfillable
        collected reason on a miss (see the module docstring).
        """
        validate_point(metric, design, vdd, beta, corner)
        misses: list[CharQueryError] = []
        for grid in self._grids:
            try:
                return grid.query(
                    metric, design=design, vdd=vdd, beta=beta,
                    corner=corner, method=method,
                )
            except CharQueryError as exc:
                misses.append(exc)
        exact = self._exact(metric, design, vdd, beta, corner)
        if exact is not None:
            return exact
        if not misses:
            raise CharQueryError(
                f"no serving grids are loaded and ({design}, vdd={vdd:g}) "
                f"is not in the store index",
                reason="off-grid",
            )
        misses.sort(key=lambda e: _REASON_RANK.get(e.reason, len(_REASON_RANK)))
        raise misses[0]

    def _exact(self, metric, design, vdd, beta, corner) -> CharAnswer | None:
        """Exact stored value for points outside every serving spec —
        how previously backfilled ad-hoc points stay warm."""
        point = CharPoint(design=design, corner=corner, vdd=float(vdd), beta=beta)
        value = self.store.value(point, metric)
        if value is None and self.store.index_token() != self._token:
            # A writer appended since the serving grids loaded.  The
            # retry is gated on the index token: a storm of misses for
            # an unrealizable point must not drop the store's cache
            # (and force a full index re-read) on every request — that
            # synchronous disk work sits inside the event loop and
            # stalls every connected client.
            self.store.refresh()
            value = self.store.value(point, metric)
        if value is None:
            return None
        coords = {"design": design, "corner": corner, "beta": beta,
                  "vdd": float(vdd)}
        return CharAnswer(
            metric=metric,
            unit=METRICS[metric].unit,
            value=value,
            coords=coords,
            method="exact",
            nearest={
                "coords": coords,
                "value": value,
                "fp": entry_fingerprint(point, metric),
                "distance": 0.0,
            },
            notes=("served from the store index (off-spec exact point)",),
        )
