"""The fleet front: one accept point routing queries to shard daemons.

A :class:`Front` accepts client connections (unix socket and/or
localhost TCP, same JSON-lines protocol as a single daemon, plus an
optional HTTP/1.1 adapter from :mod:`repro.serve.http`) and speaks the
*existing* protocol upstream to N shard daemons:

* ``query`` — routed to the one shard that owns the request's
  ``(design, corner, beta)`` routing key (:class:`ShardMap`), so a
  spec's grid and every backfill it triggers live on exactly one
  worker and two shards never build the same spec;
* ``status`` / ``metrics`` — fanned out to every shard concurrently
  and aggregated (per-shard payloads plus summed counters);
* ``map`` — answered locally with the consistent-hash ring and the
  shard addresses, so shard-aware tooling can route directly;
* ``ping`` — answered locally (the front's own liveness);
* ``shutdown`` — fanned out to every reachable shard, then the front
  drains itself.

Shard connections are pooled per shard: a request checks out an idle
connection (dialing a new one when the pool is empty — the upstream
daemon serves one request at a time per connection, so concurrency
needs as many connections as in-flight requests) and returns it after
the response line.  A connection that timed out mid-request is closed,
not returned — its late response would desynchronize the next request.

Failure containment is per shard: a dead shard (connect refused,
connect/request timeout, EOF mid-request) answers that key's queries
with a structured ``shard_down`` error while every other shard's
keyspace keeps serving.  The front never restarts shards — a restarted
shard is simply dialed again on the next request for its keyspace and
resumes its backfills from the engine checkpoint.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.serve import protocol
from repro.serve.shard import ShardMap
from repro.telemetry import core as telemetry

__all__ = ["ShardAddress", "FrontConfig", "Front", "serve_front"]


@dataclass(frozen=True)
class ShardAddress:
    """Where one shard daemon listens (unix socket or localhost TCP)."""

    socket_path: str | Path | None = None
    tcp_port: int | None = None

    def __post_init__(self) -> None:
        if self.socket_path is None and self.tcp_port is None:
            raise ValueError("a shard address needs a socket path or a TCP port")

    def describe(self) -> str:
        if self.socket_path is not None:
            return str(self.socket_path)
        return f"127.0.0.1:{self.tcp_port}"


@dataclass
class FrontConfig:
    """Everything one front run needs."""

    shards: list[ShardAddress] = field(default_factory=list)
    socket_path: str | Path | None = None
    tcp_port: int | None = None
    http_port: int | None = None
    """Optional localhost HTTP/1.1 adapter (``repro.serve.http``)."""

    replicas: int | None = None
    """Virtual nodes per shard on the hash ring (``None`` = default)."""

    request_timeout_s: float = 150.0
    """Per shard round trip; a shade over the shard's own request
    budget so the shard's structured ``timeout`` answer wins."""
    connect_timeout_s: float = 5.0
    max_line_bytes: int = protocol.MAX_LINE_BYTES
    metrics_out: str | Path | None = None

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a front needs at least one shard address")
        if (
            self.socket_path is None
            and self.tcp_port is None
            and self.http_port is None
        ):
            raise ValueError("front needs a socket path, TCP port, or HTTP port")


class ShardDown(ConnectionError):
    """The owning shard is unreachable; the error code clients see."""


class Front:
    """One long-running routing loop over a fleet of shard daemons."""

    def __init__(self, config: FrontConfig):
        self.config = config
        replicas = config.replicas
        self.shard_map = (
            ShardMap(len(config.shards))
            if replicas is None
            else ShardMap(len(config.shards), replicas)
        )
        existing = telemetry.active()
        self._owns_session = existing is None
        self.session = existing or telemetry.enable()
        self._pools: list[list[tuple[asyncio.StreamReader, asyncio.StreamWriter]]] = [
            [] for _ in config.shards
        ]
        self._servers: list[asyncio.base_events.Server] = []
        self._shutdown = asyncio.Event()
        self._draining = False
        self._active_requests = 0
        self._started_unix = time.time()

    # -- lifecycle ---------------------------------------------------------

    async def run(self) -> None:
        """Listen, route until shutdown is requested, then drain."""
        if self.config.socket_path is not None:
            path = Path(self.config.socket_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.unlink(missing_ok=True)
            self._servers.append(
                await asyncio.start_unix_server(
                    self._on_client, path=str(path),
                    limit=self.config.max_line_bytes,
                )
            )
        if self.config.tcp_port is not None:
            self._servers.append(
                await asyncio.start_server(
                    self._on_client, host="127.0.0.1",
                    port=self.config.tcp_port,
                    limit=self.config.max_line_bytes,
                )
            )
        if self.config.http_port is not None:
            from repro.serve.http import HttpAdapter

            adapter = HttpAdapter(self)
            self._servers.append(
                await asyncio.start_server(
                    adapter.on_client, host="127.0.0.1",
                    port=self.config.http_port,
                    limit=self.config.max_line_bytes,
                )
            )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # non-main-thread loops (tests) poll the event instead

        try:
            await self._shutdown.wait()
            await self._drain()
        finally:
            if self._owns_session and telemetry.active() is self.session:
                telemetry.disable()

    def request_shutdown(self) -> None:
        """Idempotent: the first call wins, later ones are no-ops."""
        self._draining = True
        self._shutdown.set()

    async def _drain(self) -> None:
        for server in self._servers:
            server.close()
        deadline = time.monotonic() + 10.0
        while self._active_requests and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for server in self._servers:
            await server.wait_closed()
        for pool in self._pools:
            while pool:
                _, writer = pool.pop()
                writer.close()
        if self.config.socket_path is not None:
            Path(self.config.socket_path).unlink(missing_ok=True)
        self._write_metrics()

    def _write_metrics(self) -> None:
        if self.config.metrics_out is None:
            return
        from repro.obs.export import write_metrics

        json_path = Path(self.config.metrics_out)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        write_metrics(
            self.session,
            json_path,
            json_path.with_suffix(".prom"),
            run="serve-front",
            duration_s=time.time() - self._started_unix,
        )

    # -- connection handling (same framing contract as the daemon) ---------

    async def _on_client(self, reader, writer) -> None:
        self.session.count("serve.front.connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.session.count("serve.front.rejected.oversized")
                    await self._send(
                        writer,
                        protocol.error_response(
                            "oversized",
                            f"request line exceeds "
                            f"{self.config.max_line_bytes} bytes",
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._dispatch(line)
                close_after = response.pop("_close", False)
                if not await self._send(writer, response):
                    break
                if close_after:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(self, writer, response: dict) -> bool:
        try:
            writer.write(protocol.encode_line(response))
            await writer.drain()
            return True
        except (ConnectionResetError, BrokenPipeError, OSError):
            self.session.count("serve.front.disconnects")
            return False

    # -- request dispatch --------------------------------------------------

    async def _dispatch(self, line: bytes) -> dict:
        try:
            request = protocol.parse_request(line, self.config.max_line_bytes)
        except protocol.ProtocolError as exc:
            self.session.count(f"serve.front.rejected.{exc.code}")
            response = protocol.error_response(exc.code, exc.message)
            if exc.code == "oversized":
                response["_close"] = True
            return response
        return await self.handle_request(request)

    async def handle_request(self, request: dict) -> dict:
        """One validated request through the fleet (shared with the
        HTTP adapter, which builds the request dict itself)."""
        self.session.count("serve.front.requests")
        t0 = time.perf_counter()
        op = request["op"]
        if op == "ping":
            return protocol.ok_response(request, pong=True)
        if op == "map":
            return protocol.ok_response(request, map=self.describe_map())
        if op == "status":
            return protocol.ok_response(request, status=await self._status())
        if op == "metrics":
            return protocol.ok_response(request, metrics=await self._metrics())
        if op == "shutdown":
            return await self._shutdown_fleet(request)

        # op == "query"
        if self._draining:
            self.session.count("serve.front.rejected.shutting_down")
            return protocol.error_response(
                "shutting_down", "front is draining", request
            )
        owner = self.shard_map.owner(
            request["design"], request["corner"], request["beta"]
        )
        self._active_requests += 1
        try:
            response = await self._shard_request(owner, request)
        except ShardDown as exc:
            self.session.count("serve.front.shard_down")
            response = protocol.error_response("shard_down", str(exc), request)
        except Exception as exc:  # noqa: BLE001 — the front must survive
            self.session.count("serve.front.errors.internal")
            response = protocol.error_response(
                "internal", f"{type(exc).__name__}: {exc}", request
            )
        finally:
            self._active_requests -= 1
        self.session.count(f"serve.front.routed.shard{owner}")
        self.session.add_time("serve.front.request_s", time.perf_counter() - t0)
        return response

    # -- shard links -------------------------------------------------------

    async def _connect(self, index: int):
        address = self.config.shards[index]
        try:
            if address.socket_path is not None:
                dial = asyncio.open_unix_connection(
                    str(address.socket_path), limit=self.config.max_line_bytes
                )
            else:
                dial = asyncio.open_connection(
                    "127.0.0.1", address.tcp_port,
                    limit=self.config.max_line_bytes,
                )
            return await asyncio.wait_for(dial, self.config.connect_timeout_s)
        except asyncio.TimeoutError:
            raise ShardDown(
                f"shard {index} ({address.describe()}) did not accept within "
                f"{self.config.connect_timeout_s:g} s"
            )
        except (ConnectionError, FileNotFoundError, OSError) as exc:
            raise ShardDown(
                f"shard {index} ({address.describe()}) is unreachable: {exc}"
            )

    async def _shard_request(
        self, index: int, request: dict, timeout_s: float | None = None
    ) -> dict:
        """One request/response round trip to shard ``index``.

        Raises :class:`ShardDown` when the shard cannot be reached or
        hangs up/times out mid-request.
        """
        budget = timeout_s if timeout_s is not None else self.config.request_timeout_s
        pool = self._pools[index]
        pooled = bool(pool)
        link = pool.pop() if pool else await self._connect(index)
        reader, writer = link
        try:
            writer.write(protocol.encode_line(request))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), budget)
        except asyncio.TimeoutError:
            writer.close()
            raise ShardDown(
                f"shard {index} did not answer within {budget:g} s"
            )
        except (ConnectionError, OSError) as exc:
            writer.close()
            if pooled:
                # A pooled connection can be stale (shard restarted
                # since checkout); one fresh dial distinguishes
                # "restarted" from "down".
                fresh = await self._connect(index)
                return await self._finish_request(index, fresh, request, budget)
            raise ShardDown(f"shard {index} hung up: {exc}")
        if not line:
            writer.close()
            if pooled:
                fresh = await self._connect(index)
                return await self._finish_request(index, fresh, request, budget)
            raise ShardDown(f"shard {index} closed the connection mid-request")
        pool.append(link)
        return protocol.decode_line(line)

    async def _finish_request(self, index, link, request, budget) -> dict:
        reader, writer = link
        try:
            writer.write(protocol.encode_line(request))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), budget)
        except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
            writer.close()
            raise ShardDown(f"shard {index} hung up: {exc}")
        if not line:
            writer.close()
            raise ShardDown(f"shard {index} closed the connection mid-request")
        self._pools[index].append(link)
        return protocol.decode_line(line)

    async def _fan_out(self, op: str) -> list[dict | ShardDown]:
        """One ``op`` to every shard concurrently; per-shard outcome."""
        results = await asyncio.gather(
            *(
                self._shard_request(index, {"op": op}, timeout_s=10.0)
                for index in range(len(self.config.shards))
            ),
            return_exceptions=True,
        )
        normalized: list[dict | ShardDown] = []
        for result in results:
            if isinstance(result, ShardDown):
                normalized.append(result)
            elif isinstance(result, BaseException):
                normalized.append(ShardDown(str(result)))
            else:
                normalized.append(result)
        return normalized

    # -- aggregated ops ----------------------------------------------------

    def describe_map(self) -> dict:
        payload = self.shard_map.to_json()
        payload["fleet"] = True
        payload["shards"] = [
            {"shard": index, "address": address.describe()}
            for index, address in enumerate(self.config.shards)
        ]
        return payload

    async def _status(self) -> dict:
        shards = []
        aggregate: dict[str, float] = {}
        up = 0
        for index, result in enumerate(await self._fan_out("status")):
            if isinstance(result, ShardDown):
                shards.append(
                    {
                        "shard": index,
                        "ok": False,
                        "error": "shard_down",
                        "message": str(result),
                        "address": self.config.shards[index].describe(),
                    }
                )
                continue
            up += 1
            status = result.get("status") or {}
            for name, value in (status.get("counters") or {}).items():
                aggregate[name] = aggregate.get(name, 0) + value
            shards.append(
                {
                    "shard": index,
                    "ok": True,
                    "address": self.config.shards[index].describe(),
                    "status": status,
                }
            )
        return {
            "schema": protocol.PROTOCOL_SCHEMA,
            "fleet": True,
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self._started_unix, 3),
            "workers": len(self.config.shards),
            "shards_up": up,
            "shard_map": self.shard_map.to_json(),
            "draining": self._draining,
            "shards": shards,
            "aggregate": dict(sorted(aggregate.items())),
            "counters": dict(sorted(self.session.counters.items())),
        }

    async def _metrics(self) -> dict:
        """Fleet metrics: per-shard payloads plus one merged snapshot
        (counters summed, distributions merged as count/total) rendered
        to Prometheus text for scraping."""
        from repro.obs.export import metrics_payload, to_prometheus

        shard_payloads: list[dict | None] = []
        counters: dict[str, float] = dict(self.session.counters)
        merged_dists: dict[str, dict[str, dict[str, float]]] = {
            "histograms": {},
            "timers": {},
        }
        for result in await self._fan_out("metrics"):
            if isinstance(result, ShardDown):
                shard_payloads.append(None)
                continue
            payload = (result.get("metrics") or {}).get("json") or {}
            shard_payloads.append(payload)
            snapshot = payload.get("metrics") or {}
            for name, value in (snapshot.get("counters") or {}).items():
                counters[name] = counters.get(name, 0) + value
            for family in ("histograms", "timers"):
                for name, snap in (snapshot.get(family) or {}).items():
                    merged = merged_dists[family].setdefault(
                        name, {"count": 0, "total": 0.0}
                    )
                    merged["count"] += snap.get("count", 0)
                    merged["total"] += snap.get("total", 0.0)
        merged_payload = metrics_payload(
            {
                "counters": dict(sorted(counters.items())),
                "histograms": merged_dists["histograms"],
                "timers": merged_dists["timers"],
            },
            run="serve-fleet",
            duration_s=time.time() - self._started_unix,
        )
        return {
            "json": merged_payload,
            "prom": to_prometheus(merged_payload),
            "shards": shard_payloads,
        }

    async def _shutdown_fleet(self, request: dict) -> dict:
        already = self._draining
        results = await self._fan_out("shutdown")
        stopped = sum(1 for r in results if isinstance(r, dict))
        self.request_shutdown()
        return protocol.ok_response(
            request, stopping=True, already=already,
            shards_stopping=stopped, workers=len(self.config.shards),
        )


async def serve_front(config: FrontConfig) -> None:
    """Build a front from ``config`` and run it to completion."""
    await Front(config).run()
