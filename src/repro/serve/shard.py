"""Shard ownership for the serve fleet: consistent hashing over keys.

A fleet of N daemon workers partitions the characterization keyspace
by **routing key** ``(design, corner, beta)`` — deliberately *not* by
V_DD or metric, because the backfill queue coalesces misses into one
ad-hoc spec per ``(corner, beta)`` group and a grid's V_DD axis must
stay on one worker to interpolate.  Everything about one key — its
serving grid slices, its exact index entries, and every backfill it
ever triggers — therefore lives on exactly one shard, so two shards
never build the same spec.

The map is a classic consistent-hash ring (``replicas`` virtual nodes
per shard, SHA-256 positions, successor lookup by bisection):

* **deterministic** — pure function of ``(workers, replicas)``; every
  front, client, script, and test computes identical ownership with no
  coordination, across processes and machines (no ``PYTHONHASHSEED``
  dependence);
* **stable under resize** — growing the fleet from N to N+1 workers
  remaps only the keys the new worker's virtual nodes capture
  (~1/(N+1) of the space), so a warm store stays mostly owned by the
  shards that built it.

``shard_socket_path``/``shard_tcp_port`` derive the per-shard
addresses from the front's base address — ``results/serve.sock`` owns
``results/serve.shard0.sock`` …, a TCP front on port P owns shards on
P+1 … P+N.
"""

from __future__ import annotations

import bisect
import hashlib
from pathlib import Path

__all__ = [
    "SHARD_SCHEME",
    "routing_key",
    "ShardMap",
    "shard_socket_path",
    "shard_tcp_port",
]

SHARD_SCHEME = "repro.serve.shard/v1"

DEFAULT_REPLICAS = 64


def routing_key(design: str, corner: str = "tt", beta: float | None = None) -> str:
    """Canonical routing key text for one query's ownership lookup.

    Beta is formatted through ``%.12g`` so ``1.5`` and ``1.50`` (and a
    float that took a JSON round trip) hash identically; ``None`` (the
    design's canonical sizing) gets its own token.
    """
    beta_part = "-" if beta is None else format(float(beta), ".12g")
    return f"{design}|{corner}|{beta_part}"


def _position(text: str) -> int:
    """Ring position of ``text``: the first 8 bytes of its SHA-256."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class ShardMap:
    """Consistent-hash ring mapping routing keys to shard indices."""

    def __init__(self, workers: int, replicas: int = DEFAULT_REPLICAS):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.workers = workers
        self.replicas = replicas
        ring = sorted(
            (_position(f"{SHARD_SCHEME}|worker={shard}|replica={replica}"), shard)
            for shard in range(workers)
            for replica in range(replicas)
        )
        self._positions = [position for position, _ in ring]
        self._owners = [shard for _, shard in ring]

    def owner(self, design: str, corner: str = "tt", beta: float | None = None) -> int:
        """The shard index owning one ``(design, corner, beta)`` key."""
        return self.owner_of(routing_key(design, corner, beta))

    def owner_of(self, key: str) -> int:
        """The shard index owning an already-formatted routing key."""
        index = bisect.bisect_right(self._positions, _position(key))
        return self._owners[index % len(self._owners)]

    def to_json(self) -> dict:
        """Machine-readable description (``status``/``map`` payloads)."""
        return {
            "scheme": SHARD_SCHEME,
            "workers": self.workers,
            "replicas": self.replicas,
            "key": "(design, corner, beta)",
        }

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ShardMap)
            and self.workers == other.workers
            and self.replicas == other.replicas
        )

    def __repr__(self) -> str:
        return f"ShardMap(workers={self.workers}, replicas={self.replicas})"


def shard_socket_path(base: str | Path, index: int) -> Path:
    """Shard ``index``'s unix socket derived from the front's socket:
    ``results/serve.sock`` -> ``results/serve.shard0.sock``."""
    base = Path(base)
    return base.with_name(f"{base.stem}.shard{index}{base.suffix}")


def shard_tcp_port(base_port: int, index: int) -> int:
    """Shard ``index``'s TCP port derived from the front's port."""
    return base_port + 1 + index
