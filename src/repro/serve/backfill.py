"""Coalescing backfill: cache misses batched into engine build jobs.

Misses arrive one point at a time (``submit``); the queue coalesces
everything that lands within one window into a single *batch*, compiles
the batch into ad-hoc :class:`~repro.char.spec.CharSpec` grids (one per
``(corner, beta)`` group — designs x V_DDs x metrics union within the
group), and runs them through :func:`repro.char.build.build_grid` on a
single-thread executor.  When the builds land, every waiting future is
resolved from the store index and the daemon reloads its grids.

Durability falls out of the char layer, not from anything here:

* every completed point is flushed to the build's engine checkpoint
  the moment it finishes, so a daemon killed mid-backfill loses
  nothing — re-submitting the same miss set after a restart coalesces
  into the same spec (sorted unions are deterministic), hits the same
  checkpoint, and replays the completed prefix instead of recomputing;
* completed batches are ordinary store entries: they stay warm across
  restarts and are served as exact points by the registry.

Duplicate in-flight misses share one future (true coalescing: N
clients asking for the same cold point cost one simulation).
Admission control is a bounded pending-point count — past
``depth``, :class:`BackfillOverloaded` tells the daemon to reject with
a structured overload error instead of queueing unboundedly.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.char.build import build_grid
from repro.char.fingerprint import entry_fingerprint
from repro.char.spec import CharPoint, CharSpec
from repro.char.store import CharStore

__all__ = ["MissKey", "BackfillOverloaded", "BackfillFailed", "BackfillQueue"]

BACKFILL_SPEC_NAME = "backfill"


class BackfillOverloaded(RuntimeError):
    """The pending-point budget is exhausted; admission control says no."""


class BackfillFailed(RuntimeError):
    """The point was simulated and failed; the store records the error."""


@dataclass(frozen=True)
class MissKey:
    """One missed point: the unit of backfill coalescing."""

    design: str
    corner: str
    beta: float | None
    vdd: float
    metric: str

    def point(self) -> CharPoint:
        return CharPoint(
            design=self.design, corner=self.corner,
            vdd=float(self.vdd), beta=self.beta,
        )


def batch_specs(keys: list[MissKey]) -> list[CharSpec]:
    """Compile one batch of misses into deterministic ad-hoc specs.

    Grouped by ``(corner, beta)``; within a group the spec covers the
    sorted unions of designs, V_DDs, and metrics.  The cross-product
    may include a few points nobody asked for — they are computed once
    and enrich the store, which is cheaper than one engine batch per
    point.  Sorted unions make the spec (and therefore its digest,
    checkpoint path, and resume key) a pure function of the miss set.
    """
    groups: dict[tuple, list[MissKey]] = {}
    for key in keys:
        groups.setdefault((key.corner, key.beta), []).append(key)
    specs = []
    for (corner, beta), members in sorted(
        groups.items(), key=lambda item: (item[0][0], repr(item[0][1]))
    ):
        specs.append(
            CharSpec(
                name=BACKFILL_SPEC_NAME,
                designs=tuple(sorted({m.design for m in members})),
                vdds=tuple(sorted({float(m.vdd) for m in members})),
                metrics=tuple(sorted({m.metric for m in members})),
                corners=(corner,),
                betas=(beta,),
            )
        )
    return specs


class BackfillQueue:
    """The daemon's miss queue; see the module docstring."""

    def __init__(
        self,
        store: CharStore,
        *,
        depth: int = 256,
        coalesce_s: float = 0.05,
        jobs: int = 1,
        verify_fraction: float = 0.0,
        trace_dir: str | None = None,
    ):
        self.store = store
        self.depth = depth
        self.coalesce_s = coalesce_s
        self.jobs = jobs
        self.verify_fraction = verify_fraction
        self.trace_dir = trace_dir
        self._pending: dict[MissKey, asyncio.Future] = {}
        self._in_flight: dict[MissKey, asyncio.Future] = {}
        self._kick = asyncio.Event()
        self._closed = False
        self._worker: asyncio.Task | None = None
        # Single thread: engine builds already parallelize internally
        # via ``jobs``, and one build thread keeps the global telemetry
        # session handoff in execute_task race-free.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-backfill"
        )
        self.batches_completed = 0
        self.points_completed = 0
        self.last_report: list[dict] | None = None

    # -- introspection -----------------------------------------------------

    @property
    def pending_points(self) -> int:
        return len(self._pending) + len(self._in_flight)

    def status(self) -> dict:
        return {
            "pending": len(self._pending),
            "in_flight": len(self._in_flight),
            "depth": self.depth,
            "batches_completed": self.batches_completed,
            "points_completed": self.points_completed,
            "last_reports": self.last_report,
        }

    # -- submission --------------------------------------------------------

    def start(self) -> None:
        self._worker = asyncio.get_running_loop().create_task(self._run())

    def submit(self, key: MissKey) -> asyncio.Future:
        """Enqueue one miss; returns the (possibly shared) future.

        The future resolves to the stored float value once the batch
        lands, or raises :class:`BackfillFailed`.  Raises
        :class:`BackfillOverloaded` / :class:`RuntimeError` immediately
        when the queue is full or draining.
        """
        if self._closed:
            raise RuntimeError("backfill queue is draining")
        existing = self._pending.get(key) or self._in_flight.get(key)
        if existing is not None:
            return existing
        if self.pending_points >= self.depth:
            raise BackfillOverloaded(
                f"backfill queue is full ({self.pending_points} points "
                f"pending, depth {self.depth})"
            )
        future = asyncio.get_running_loop().create_future()
        self._pending[key] = future
        self._kick.set()
        return future

    # -- the batch loop ----------------------------------------------------

    async def _run(self) -> None:
        while True:
            await self._kick.wait()
            self._kick.clear()
            if not self._pending:
                if self._closed:
                    return
                continue
            await asyncio.sleep(self.coalesce_s)  # the coalescing window
            batch = dict(self._pending)
            self._pending.clear()
            self._in_flight.update(batch)
            try:
                await self._build_batch(batch)
            finally:
                for key in batch:
                    self._in_flight.pop(key, None)
            if self._closed and not self._pending:
                return

    async def _build_batch(self, batch: dict[MissKey, asyncio.Future]) -> None:
        loop = asyncio.get_running_loop()
        specs = batch_specs(list(batch))
        try:
            reports = await loop.run_in_executor(
                self._executor, self._build_specs, specs
            )
        except Exception as exc:  # noqa: BLE001 — resolve, never crash the loop
            for future in batch.values():
                if not future.done():
                    future.set_exception(
                        BackfillFailed(f"backfill build crashed: {exc}")
                    )
            return
        self.batches_completed += 1
        self.points_completed += sum(r["computed"] for r in reports)
        self.last_report = reports
        self._resolve(batch)

    def _build_specs(self, specs: list[CharSpec]) -> list[dict]:
        """Executor-thread body: run every spec's build, report back."""
        reports = []
        for spec in specs:
            report = build_grid(
                spec,
                self.store,
                jobs=self.jobs,
                verify_fraction=self.verify_fraction,
                trace_dir=self.trace_dir,
            )
            reports.append(
                {
                    "spec": spec.to_json(),
                    "total": report.total,
                    "reused": report.reused,
                    "computed": report.computed,
                    "resumed": report.resumed,
                    "failed": report.failed,
                    "wall_s": report.wall_s,
                }
            )
        return reports

    def _resolve(self, batch: dict[MissKey, asyncio.Future]) -> None:
        """Settle every waiting future from the (just-updated) index."""
        self.store.refresh()
        for key, future in batch.items():
            if future.done():  # a timed-out request abandoned it
                continue
            value = self.store.value(key.point(), key.metric)
            if value is not None:
                future.set_result(value)
                continue
            record = self.store.get(entry_fingerprint(key.point(), key.metric))
            if record is not None:
                future.set_exception(
                    BackfillFailed(
                        f"{key.metric} at {key.point().label()} failed: "
                        f"[{record.get('error_type')}] {record.get('error')}"
                    )
                )
            else:
                future.set_exception(
                    BackfillFailed(
                        f"{key.metric} at {key.point().label()} did not land "
                        "in the store (point not realizable for this design?)"
                    )
                )

    # -- shutdown ----------------------------------------------------------

    async def drain(self, grace_s: float = 30.0) -> bool:
        """Stop accepting, wait for in-flight work, shut the executor.

        Returns ``True`` when everything drained inside the grace
        budget.  On ``False`` the in-flight build keeps running in its
        (daemon) thread until process exit — its engine checkpoint has
        every completed point either way, so nothing is lost.
        """
        self._closed = True
        self._kick.set()
        drained = True
        if self._worker is not None:
            try:
                await asyncio.wait_for(asyncio.shield(self._worker), grace_s)
            except asyncio.TimeoutError:
                drained = False
        for future in {**self._pending, **self._in_flight}.values():
            if not future.done():
                future.set_exception(RuntimeError("daemon is shutting down"))
        self._executor.shutdown(wait=drained, cancel_futures=True)
        return drained
