"""The ``repro serve`` daemon: an asyncio characterization service.

One process, one event loop, one :class:`GridRegistry`: queries are
answered from in-memory :class:`~repro.char.query.CharGrid` surrogates
(microseconds of numpy per hit), misses flow through the
:class:`~repro.serve.backfill.BackfillQueue`, and everything speaks the
JSON-lines protocol of :mod:`repro.serve.protocol` over a unix socket
and/or a localhost TCP port.

Operational contract:

* **Admission control** — at most ``max_inflight`` query requests are
  processed concurrently and at most ``backfill_depth`` points may be
  pending backfill; both limits reject with structured errors
  (``overloaded``) instead of queueing unboundedly.  Request lines
  over ``max_line_bytes`` are answered with ``oversized`` and the
  connection is closed.
* **Per-request timeout** — ``request_timeout_s`` bounds every query
  (including its backfill wait); expiry answers ``timeout`` while the
  backfill itself keeps running, so a retry after the build lands is a
  warm hit.
* **Graceful shutdown** — SIGTERM/SIGINT (or a ``shutdown`` op) stops
  accepting, drains in-flight requests and backfill within
  ``drain_grace_s``, writes the final metrics snapshot (JSON +
  Prometheus), and exits.  In-flight backfill is checkpointed by the
  engine continuously, so even an ungraceful kill loses nothing.
* **Telemetry** — every request lands in ``serve.*`` counters/timers
  on the daemon's session; ``metrics`` returns the same snapshot the
  shutdown files persist, in both JSON and Prometheus text form.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.char.query import CharQueryError
from repro.char.spec import CharSpec
from repro.char.store import CharStore
from repro.serve import protocol
from repro.serve.backfill import (
    BackfillFailed,
    BackfillOverloaded,
    BackfillQueue,
    MissKey,
)
from repro.serve.registry import BACKFILLABLE_REASONS, GridRegistry
from repro.telemetry import core as telemetry

__all__ = ["ServeConfig", "ServeDaemon", "serve"]

DEFAULT_SOCKET = "results/serve.sock"


@dataclass
class ServeConfig:
    """Everything one daemon run needs; see the module docstring."""

    store_dir: str | Path = "results/char"
    specs: list[CharSpec] = field(default_factory=list)
    socket_path: str | Path | None = DEFAULT_SOCKET
    tcp_port: int | None = None
    """Optional localhost TCP listener (same protocol as the socket)."""

    max_inflight: int = 64
    backfill_depth: int = 256
    coalesce_s: float = 0.05
    request_timeout_s: float = 120.0
    drain_grace_s: float = 30.0
    jobs: int = 1
    """Worker processes per backfill build (1 = inline in the build
    thread)."""

    verify_fraction: float = 0.0
    max_line_bytes: int = protocol.MAX_LINE_BYTES
    metrics_out: str | Path | None = None
    trace_dir: str | Path | None = None

    shard_index: int | None = None
    """This worker's position in a fleet (``None`` outside one); echoed
    in ``status`` so a front can label aggregated payloads."""
    shard_count: int | None = None
    """Fleet size this worker belongs to (``None`` outside one)."""

    synthetic_service_s: float = 0.0
    """Benchmark calibration: block the event loop for this long per
    query, emulating heavier per-request work.  Core-starved hosts
    (1–2 visible cores) cannot demonstrate real CPU scaling across a
    fleet, so ``benchmarks/test_serve_fleet.py`` uses this the same way
    ``test_engine_speedup.py`` uses calibrated sleeps: the overlap of
    independent worker loops is what gets measured, and the mode is
    recorded in the emitted JSON.  Keep 0.0 in production."""

    def __post_init__(self) -> None:
        if self.socket_path is None and self.tcp_port is None:
            raise ValueError("serve needs a unix socket path or a TCP port")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.backfill_depth < 1:
            raise ValueError("backfill_depth must be >= 1")
        if self.request_timeout_s <= 0.0:
            raise ValueError("request_timeout_s must be positive")


class ServeDaemon:
    """One long-running serving loop over a characterization store."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.store = CharStore(config.store_dir)
        self.registry = GridRegistry(self.store, config.specs)
        self.backfill = BackfillQueue(
            self.store,
            depth=config.backfill_depth,
            coalesce_s=config.coalesce_s,
            jobs=config.jobs,
            verify_fraction=config.verify_fraction,
            trace_dir=str(config.trace_dir) if config.trace_dir else None,
        )
        # Held by reference: the backfill thread briefly shadows the
        # global session during task execution, so the daemon must
        # never depend on telemetry.active() for its own accounting.
        existing = telemetry.active()
        self._owns_session = existing is None
        self.session = existing or telemetry.enable()
        self._servers: list[asyncio.base_events.Server] = []
        self._shutdown = asyncio.Event()
        self._draining = False
        self._active_queries = 0
        self._started_unix = time.time()

    # -- lifecycle ---------------------------------------------------------

    async def run(self) -> None:
        """Listen, serve until shutdown is requested, then drain."""
        self.backfill.start()
        if self.config.socket_path is not None:
            path = Path(self.config.socket_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.unlink(missing_ok=True)
            self._servers.append(
                await asyncio.start_unix_server(
                    self._on_client, path=str(path),
                    limit=self.config.max_line_bytes,
                )
            )
        if self.config.tcp_port is not None:
            self._servers.append(
                await asyncio.start_server(
                    self._on_client, host="127.0.0.1",
                    port=self.config.tcp_port,
                    limit=self.config.max_line_bytes,
                )
            )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # non-main-thread loops (tests) poll the event instead

        try:
            await self._shutdown.wait()
            await self._drain()
        finally:
            if self._owns_session and telemetry.active() is self.session:
                telemetry.disable()

    def request_shutdown(self) -> None:
        """Idempotent: the first call wins, later ones are no-ops."""
        self._draining = True
        self._shutdown.set()

    async def _drain(self) -> None:
        for server in self._servers:
            server.close()
        deadline = time.monotonic() + self.config.drain_grace_s
        # Backfill first: settling its futures is what unblocks any
        # queries still awaiting a batch.
        drained = await self.backfill.drain(
            max(0.0, deadline - time.monotonic())
        )
        while self._active_queries and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for server in self._servers:
            await server.wait_closed()
        if self.config.socket_path is not None:
            Path(self.config.socket_path).unlink(missing_ok=True)
        self._write_metrics()
        if not drained:
            # The build thread is wedged past the grace budget; its
            # checkpoint holds every completed point, so a hard exit
            # loses nothing and beats hanging the supervisor.
            os._exit(0)

    def _write_metrics(self) -> None:
        if self.config.metrics_out is None:
            return
        from repro.obs.export import write_metrics

        json_path = Path(self.config.metrics_out)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        write_metrics(
            self.session,
            json_path,
            json_path.with_suffix(".prom"),
            run="serve",
            duration_s=time.time() - self._started_unix,
        )

    # -- connection handling -----------------------------------------------

    async def _on_client(self, reader, writer) -> None:
        self.session.count("serve.connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.session.count("serve.rejected.oversized")
                    await self._send(
                        writer,
                        protocol.error_response(
                            "oversized",
                            f"request line exceeds "
                            f"{self.config.max_line_bytes} bytes",
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._dispatch(line)
                close_after = response.pop("_close", False)
                if not await self._send(writer, response):
                    break
                if close_after:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(self, writer, response: dict) -> bool:
        try:
            writer.write(protocol.encode_line(response))
            await writer.drain()
            return True
        except (ConnectionResetError, BrokenPipeError, OSError):
            self.session.count("serve.disconnects")
            return False

    # -- request dispatch --------------------------------------------------

    async def _dispatch(self, line: bytes) -> dict:
        self.session.count("serve.requests")
        t0 = time.perf_counter()
        try:
            request = protocol.parse_request(line, self.config.max_line_bytes)
        except protocol.ProtocolError as exc:
            self.session.count(f"serve.rejected.{exc.code}")
            response = protocol.error_response(exc.code, exc.message)
            if exc.code == "oversized":
                response["_close"] = True
            return response
        op = request["op"]
        if op == "ping":
            return protocol.ok_response(request, pong=True)
        if op == "status":
            return protocol.ok_response(request, status=self._status())
        if op == "metrics":
            return protocol.ok_response(request, metrics=self._metrics())
        if op == "map":
            return protocol.ok_response(request, map=self._map())
        if op == "shutdown":
            already = self._draining
            self.request_shutdown()
            return protocol.ok_response(request, stopping=True, already=already)

        # op == "query"
        if self._draining:
            self.session.count("serve.rejected.shutting_down")
            return protocol.error_response(
                "shutting_down", "daemon is draining", request
            )
        if self._active_queries >= self.config.max_inflight:
            self.session.count("serve.rejected.overload")
            return protocol.error_response(
                "overloaded",
                f"{self._active_queries} queries in flight "
                f"(limit {self.config.max_inflight})",
                request,
            )
        self._active_queries += 1
        try:
            response = await asyncio.wait_for(
                self._query(request), self.config.request_timeout_s
            )
        except asyncio.TimeoutError:
            self.session.count("serve.timeouts")
            response = protocol.error_response(
                "timeout",
                f"request exceeded {self.config.request_timeout_s:g} s "
                "(a triggered backfill keeps running; retry later)",
                request,
            )
        except Exception as exc:  # noqa: BLE001 — the daemon must survive
            self.session.count("serve.errors.internal")
            response = protocol.error_response(
                "internal", f"{type(exc).__name__}: {exc}", request
            )
        finally:
            self._active_queries -= 1
        self.session.add_time("serve.request_s", time.perf_counter() - t0)
        return response

    async def _query(self, request: dict) -> dict:
        t0 = time.perf_counter()
        coords = {k: request[k] for k in ("metric", "design", "vdd", "beta", "corner")}
        if self.config.synthetic_service_s > 0.0:
            # Deliberately blocking (see ServeConfig): the calibrated
            # fleet benchmark measures how independent worker loops
            # overlap loop-occupying work.
            time.sleep(self.config.synthetic_service_s)
        self.registry.maybe_reload()
        try:
            with self.session.span("serve.query", **{
                "metric": coords["metric"], "design": coords["design"],
            }):
                answer = self.registry.answer(method=request["method"], **coords)
            self.session.count("serve.hits")
            return self._answer_response(request, answer, "memory", t0)
        except CharQueryError as exc:
            if exc.reason not in BACKFILLABLE_REASONS:
                self.session.count("serve.rejected.bad_request")
                return protocol.error_response("bad_request", str(exc), request)
        self.session.count("serve.misses")
        return await self._backfill_query(request, coords, t0)

    async def _backfill_query(self, request, coords, t0) -> dict:
        key = MissKey(
            design=coords["design"], corner=coords["corner"],
            beta=coords["beta"], vdd=float(coords["vdd"]),
            metric=coords["metric"],
        )
        try:
            future = self.backfill.submit(key)
        except BackfillOverloaded as exc:
            self.session.count("serve.rejected.overload")
            return protocol.error_response("overloaded", str(exc), request)
        except RuntimeError as exc:
            return protocol.error_response("shutting_down", str(exc), request)
        self.session.count("serve.backfill.requests")
        try:
            # Shielded: a per-request timeout must not cancel a future
            # other coalesced clients are waiting on.
            await asyncio.shield(future)
        except asyncio.CancelledError:
            raise
        except BackfillFailed as exc:
            return protocol.error_response("backfill_failed", str(exc), request)
        except RuntimeError as exc:
            return protocol.error_response("shutting_down", str(exc), request)
        self.registry.maybe_reload()
        try:
            answer = self.registry.answer(method=request["method"], **coords)
        except CharQueryError as exc:
            # The point landed but is no longer servable — a concurrent
            # `repro char build` can recalibrate the store between the
            # backfill landing and this reload.  That is a retryable
            # race, not an internal error.
            self.session.count("serve.backfill.lost")
            return protocol.error_response(
                "backfill_failed",
                f"backfill landed but the point is no longer servable "
                f"({exc.reason}): {exc}; a concurrent build may have "
                "recalibrated the store — retry",
                request,
            )
        return self._answer_response(request, answer, "backfill", t0)

    def _answer_response(self, request, answer, served: str, t0) -> dict:
        wall_us = (time.perf_counter() - t0) * 1e6
        self.session.observe("serve.answer_us", wall_us)
        return protocol.ok_response(
            request,
            result=answer.to_json(),
            served=served,
            wall_us=round(wall_us, 1),
        )

    # -- introspection payloads --------------------------------------------

    def _map(self) -> dict:
        """Single-worker shard map: a fleet front overrides this with
        the real consistent-hash ring (``repro.serve.shard``)."""
        payload: dict = {"fleet": False, "workers": self.config.shard_count or 1}
        if self.config.shard_index is not None:
            payload["shard"] = self.config.shard_index
        return payload

    def _status(self) -> dict:
        status = {
            "schema": protocol.PROTOCOL_SCHEMA,
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self._started_unix, 3),
            "store": str(self.store.directory),
            "specs": [spec.name for spec in self.registry.specs],
            "coverage": self.registry.coverage(),
            "index": self.store.index_summary(),
            "reloads": self.registry.reloads,
            "draining": self._draining,
            "active_queries": self._active_queries,
            "backfill": self.backfill.status(),
            "counters": dict(sorted(self.session.counters.items())),
        }
        if self.config.shard_index is not None:
            status["shard"] = {
                "index": self.config.shard_index,
                "count": self.config.shard_count,
            }
        return status

    def _metrics(self) -> dict:
        from repro.obs.export import metrics_payload, to_prometheus

        payload = metrics_payload(
            self.session.snapshot(),
            run="serve",
            trace_id=self.session.trace_id,
            duration_s=time.time() - self._started_unix,
        )
        return {"json": payload, "prom": to_prometheus(payload)}


async def serve(config: ServeConfig) -> None:
    """Build a daemon from ``config`` and run it to completion."""
    await ServeDaemon(config).run()
