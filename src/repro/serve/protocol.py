"""The serve wire protocol: JSON lines over a byte stream.

One request per line, one response line per request, in order.  The
transport is a unix-domain socket (default) or a localhost TCP port —
the framing and payloads are identical on both.

Requests are JSON objects with an ``op`` field::

    {"op": "ping"}
    {"op": "query", "metric": "drnm", "design": "proposed", "vdd": 0.65,
     "beta": null, "corner": "tt", "method": "auto", "id": "q1"}
    {"op": "status"}
    {"op": "metrics"}
    {"op": "map"}
    {"op": "shutdown"}

Responses echo the request ``id`` (when given) and carry either a
``result`` or a structured ``error``::

    {"ok": true, "id": "q1", "result": {...}, "served": "memory",
     "wall_us": 180.2}
    {"ok": false, "error": {"code": "overloaded", "message": "..."}}

Error codes (``ERROR_CODES``) are part of the protocol contract:

* ``bad_request`` — malformed JSON, missing/unknown fields, or a point
  that can never be characterized (unknown metric/design/corner, a
  metric the design does not define);
* ``oversized`` — the request line exceeded the daemon's byte limit;
  the connection is closed after this response;
* ``overloaded`` — admission control rejected the request (too many
  in-flight requests or a full backfill queue); retry later;
* ``shutting_down`` — the daemon is draining; no new queries;
* ``timeout`` — the per-request budget elapsed (a triggered backfill
  keeps running; retry once it lands);
* ``backfill_failed`` — the point was simulated and failed (the
  failure is recorded in the store index), or it landed but became
  unservable before the answer could be read (a concurrent
  recalibration); retry after the store settles;
* ``shard_down`` — a fleet front could not reach the shard that owns
  the queried key (connect refused / timeout); the rest of the
  keyspace keeps serving, retry once the shard is back;
* ``internal`` — an unexpected server-side error.

Values ride the same strict-JSON convention as the experiment
artifacts: non-finite floats (an unwritable cell's infinite
``wl_crit`` is data) are encoded as ``{"__float__": "Infinity"}``
objects (:mod:`repro.experiments.io`) — the bare ``NaN``/``Infinity``
literals are rejected on ingress exactly as ``encode_line`` refuses to
emit them (``allow_nan=False``).
"""

from __future__ import annotations

import json
import math

__all__ = [
    "PROTOCOL_SCHEMA",
    "MAX_LINE_BYTES",
    "ERROR_CODES",
    "OPS",
    "ProtocolError",
    "parse_request",
    "normalize_request",
    "encode_line",
    "decode_line",
    "ok_response",
    "error_response",
]

PROTOCOL_SCHEMA = "repro.serve/v1"

MAX_LINE_BYTES = 64 * 1024
"""Default request-line byte budget; the daemon closes connections
that exceed it (after sending an ``oversized`` error)."""

OPS = ("ping", "query", "status", "metrics", "map", "shutdown")

ERROR_CODES = (
    "bad_request",
    "oversized",
    "overloaded",
    "shutting_down",
    "timeout",
    "backfill_failed",
    "shard_down",
    "internal",
)

_QUERY_REQUIRED = ("metric", "design", "vdd")
_QUERY_OPTIONAL = {"beta": None, "corner": "tt", "method": "auto"}


class ProtocolError(ValueError):
    """A request that violates the wire contract."""

    def __init__(self, code: str, message: str):
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message


def _reject_constant(literal: str):
    """``parse_constant`` hook: the non-standard ``NaN``/``Infinity``
    JSON literals are rejected on ingress — egress enforces
    ``allow_nan=False``, so accepting them here would admit values the
    protocol can never echo back."""
    raise ProtocolError(
        "bad_request",
        f"non-standard JSON literal {literal} is not allowed; "
        'non-finite values ride {"__float__": ...} objects',
    )


def _finite(name: str, value) -> float:
    """``value`` as a finite float, rejecting booleans (which are
    ``int`` to ``isinstance``) and non-finite results either from the
    HTTP adapter's string params (``"nan"``) or arithmetic."""
    if isinstance(value, bool):
        raise ProtocolError("bad_request", f"{name} {value!r} is not a number")
    try:
        number = float(value)
    except (TypeError, ValueError):
        raise ProtocolError("bad_request", f"{name} {value!r} is not a number")
    if not math.isfinite(number):
        raise ProtocolError("bad_request", f"{name} must be finite, got {number!r}")
    return number


def parse_request(line: bytes | str, max_bytes: int = MAX_LINE_BYTES) -> dict:
    """Validate one request line into a normalized request dict.

    Raises :class:`ProtocolError` (``oversized`` / ``bad_request``) on
    any violation; never raises anything else for untrusted input.
    """
    raw = line.encode() if isinstance(line, str) else line
    if len(raw) > max_bytes:
        raise ProtocolError(
            "oversized", f"request line is {len(raw)} bytes (limit {max_bytes})"
        )
    try:
        payload = json.loads(raw, parse_constant=_reject_constant)
    except ProtocolError:
        raise
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad_request", f"request is not valid JSON: {exc}")
    return normalize_request(payload)


def normalize_request(payload) -> dict:
    """Validate one already-decoded request payload (the JSON-lines
    path after :func:`parse_request`'s framing checks, and the HTTP
    adapter's query-string params, which arrive as strings)."""
    if not isinstance(payload, dict):
        raise ProtocolError("bad_request", "request must be a JSON object")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(
            "bad_request", f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    request: dict = {"op": op}
    request_id = payload.get("id")
    if request_id is not None:
        if isinstance(request_id, bool) or not isinstance(request_id, (str, int)):
            raise ProtocolError("bad_request", "id must be a string or integer")
        request["id"] = request_id
    if op != "query":
        return request

    for field in _QUERY_REQUIRED:
        if field not in payload:
            raise ProtocolError("bad_request", f"query is missing {field!r}")
    metric, design = payload["metric"], payload["design"]
    if not isinstance(metric, str) or not isinstance(design, str):
        raise ProtocolError("bad_request", "metric and design must be strings")
    vdd = _finite("vdd", payload["vdd"])
    beta = payload.get("beta", _QUERY_OPTIONAL["beta"])
    if beta is not None:
        beta = _finite("beta", beta)
    corner = payload.get("corner", _QUERY_OPTIONAL["corner"])
    if not isinstance(corner, str):
        raise ProtocolError("bad_request", "corner must be a string")
    method = payload.get("method", _QUERY_OPTIONAL["method"])
    if method not in ("auto", "linear", "cubic", "nearest"):
        raise ProtocolError("bad_request", f"unknown method {method!r}")
    request.update(metric=metric, design=design, vdd=vdd, beta=beta,
                   corner=corner, method=method)
    return request


def _encode_tree(value):
    """Strict-JSON encoding of a response tree (non-finite floats wrapped)."""
    from repro.experiments.io import _encode_value

    if isinstance(value, dict):
        return {k: _encode_tree(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_tree(v) for v in value]
    return _encode_value(value)


def _decode_tree(value):
    from repro.experiments.io import _decode_value

    if isinstance(value, dict):
        if "__float__" in value:
            return _decode_value(value)
        return {k: _decode_tree(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_tree(v) for v in value]
    return value


def encode_line(payload: dict) -> bytes:
    """One response/request dict as a newline-terminated JSON line."""
    return (
        json.dumps(_encode_tree(payload), allow_nan=False, separators=(",", ":"))
        + "\n"
    ).encode()


def decode_line(line: bytes | str) -> dict:
    """Parse a received line, unwrapping the non-finite float encoding."""
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError("protocol line must be a JSON object")
    return _decode_tree(payload)


def ok_response(request: dict | None = None, **fields) -> dict:
    response = {"ok": True, **fields}
    if request is not None and "id" in request:
        response["id"] = request["id"]
    return response


def error_response(
    code: str, message: str, request: dict | None = None
) -> dict:
    assert code in ERROR_CODES, code
    response = {"ok": False, "error": {"code": code, "message": message}}
    if request is not None and "id" in request:
        response["id"] = request["id"]
    return response
