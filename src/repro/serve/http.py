"""Minimal HTTP/1.1 adapter over the fleet front.

Dashboards, load balancers, and ``curl`` get the serving layer without
speaking JSON lines.  The adapter is a thin translation layer: every
request becomes a normal protocol request dict and goes through
``Front.handle_request`` — same validation, same routing, same
structured error codes — and the JSON-lines error code maps onto an
HTTP status.

Endpoints (GET only):

* ``/v1/query?metric=M&design=D&vdd=V[&beta=B][&corner=C][&method=m]``
  — one metric query; the response body is exactly the JSON-lines
  ``ok``/``error`` object;
* ``/v1/status`` — the aggregated fleet status document;
* ``/v1/map`` — the consistent-hash shard map;
* ``/v1/ping`` — front liveness;
* ``/metrics`` — fleet-merged metrics in the Prometheus text
  exposition format (counters summed across shards).

Status mapping: ``bad_request`` 400, ``oversized`` 413, ``overloaded``
/ ``shutting_down`` / ``shard_down`` 503, ``timeout`` 504, everything
else 500.  Keep-alive is honored (HTTP/1.1 default; ``Connection:
close`` respected); request bodies are not read — queries are pure
GETs.
"""

from __future__ import annotations

import asyncio
from urllib.parse import parse_qsl, urlsplit

from repro.serve import protocol

__all__ = ["HttpAdapter", "STATUS_BY_CODE"]

STATUS_BY_CODE = {
    "bad_request": 400,
    "oversized": 413,
    "overloaded": 503,
    "shutting_down": 503,
    "shard_down": 503,
    "timeout": 504,
    "backfill_failed": 500,
    "internal": 500,
}

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

_MAX_HEADER_BYTES = 16 * 1024

#: URL path -> protocol op for the parameterless endpoints.
_SIMPLE_OPS = {"/v1/status": "status", "/v1/map": "map", "/v1/ping": "ping"}


class HttpAdapter:
    """Serves HTTP connections by translating onto a ``Front``."""

    def __init__(self, front):
        self.front = front

    async def on_client(self, reader, writer) -> None:
        self.front.session.count("serve.http.connections")
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError as exc:
                    if exc.partial:
                        await self._respond(
                            writer, 400,
                            self._error_body("bad_request", "truncated request"),
                        )
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    await self._respond(
                        writer, 413,
                        self._error_body(
                            "oversized",
                            f"request head exceeds {_MAX_HEADER_BYTES} bytes",
                        ),
                    )
                    break
                if len(head) > _MAX_HEADER_BYTES:
                    await self._respond(
                        writer, 413,
                        self._error_body(
                            "oversized",
                            f"request head exceeds {_MAX_HEADER_BYTES} bytes",
                        ),
                    )
                    break
                keep_alive = await self._one_request(writer, head)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, OSError):
            self.front.session.count("serve.http.disconnects")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _one_request(self, writer, head: bytes) -> bool:
        """Answer one parsed request head; returns keep-alive."""
        self.front.session.count("serve.http.requests")
        try:
            request_line, headers = self._parse_head(head)
            method, target, version = request_line
        except ValueError as exc:
            await self._respond(
                writer, 400, self._error_body("bad_request", str(exc)),
                keep_alive=False,
            )
            return False
        keep_alive = version != "HTTP/1.0"
        if headers.get("connection", "").lower() == "close":
            keep_alive = False
        if method != "GET":
            await self._respond(
                writer, 405,
                self._error_body("bad_request", f"method {method} not allowed"),
                keep_alive=keep_alive, extra_headers=("Allow: GET",),
            )
            return keep_alive
        status, body, content_type = await self._route(target)
        await self._respond(
            writer, status, body, content_type=content_type,
            keep_alive=keep_alive,
        )
        return keep_alive

    @staticmethod
    def _parse_head(head: bytes):
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError:
            raise ValueError("undecodable request head")
        lines = text.split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ValueError(f"malformed request line {lines[0]!r}")
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return (parts[0], parts[1], parts[2]), headers

    async def _route(self, target: str) -> tuple[int, bytes, str]:
        split = urlsplit(target)
        path = split.path
        if path == "/metrics":
            response = await self.front.handle_request({"op": "metrics"})
            prom = (response.get("metrics") or {}).get("prom", "")
            return 200, prom.encode(), "text/plain; version=0.0.4"
        if path in _SIMPLE_OPS:
            response = await self.front.handle_request(
                {"op": _SIMPLE_OPS[path]}
            )
            return self._json_response(response)
        if path == "/v1/query":
            params = dict(parse_qsl(split.query, keep_blank_values=False))
            payload: dict = {"op": "query"}
            for name in ("metric", "design", "vdd", "beta", "corner",
                         "method", "id"):
                if params.get(name, "") != "":
                    payload[name] = params[name]
            try:
                request = protocol.normalize_request(payload)
            except protocol.ProtocolError as exc:
                self.front.session.count(f"serve.http.rejected.{exc.code}")
                return (
                    STATUS_BY_CODE.get(exc.code, 500),
                    self._error_body(exc.code, exc.message),
                    "application/json",
                )
            response = await self.front.handle_request(request)
            return self._json_response(response)
        return (
            404,
            self._error_body(
                "bad_request",
                f"unknown path {path!r}; try /v1/query, /v1/status, "
                "/v1/map, /v1/ping, or /metrics",
            ),
            "application/json",
        )

    def _json_response(self, response: dict) -> tuple[int, bytes, str]:
        status = 200
        if not response.get("ok", False):
            code = (response.get("error") or {}).get("code", "internal")
            status = STATUS_BY_CODE.get(code, 500)
        body = protocol.encode_line(response)
        return status, body, "application/json"

    @staticmethod
    def _error_body(code: str, message: str) -> bytes:
        return protocol.encode_line(protocol.error_response(code, message))

    async def _respond(
        self, writer, status: int, body: bytes,
        content_type: str = "application/json",
        keep_alive: bool = True, extra_headers: tuple[str, ...] = (),
    ) -> None:
        reason = _REASONS.get(status, "")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
            *extra_headers,
        ]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()


def _self_check() -> None:  # pragma: no cover — import-time sanity only
    assert set(STATUS_BY_CODE) == set(protocol.ERROR_CODES), (
        "HTTP status mapping out of sync with protocol.ERROR_CODES"
    )
    assert all(status in _REASONS for status in STATUS_BY_CODE.values())


_self_check()
