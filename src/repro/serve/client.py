"""Blocking client for the serve protocol.

The CLI verbs, the load generator, and the smoke script all talk to
the daemon through this one class — plain sockets, no asyncio, so a
client is importable anywhere (benchmark worker threads included).

::

    with ServeClient(socket_path="results/serve.sock") as client:
        answer = client.query("drnm", design="proposed", vdd=0.65)

``request`` sends one JSON line and reads one response line;
:class:`ServeError` carries the structured protocol error code on any
``ok: false`` response.

The same client speaks to a single daemon or to a fleet front — the
front relays each query to the owning shard and answers ``status`` /
``metrics`` with fleet aggregates.  A query whose owning shard is
unreachable raises ``ServeError`` with code ``shard_down``; the rest
of the keyspace keeps serving.
"""

from __future__ import annotations

import socket
from pathlib import Path

from repro.serve import protocol

__all__ = ["ServeError", "ServeClient"]


class ServeError(RuntimeError):
    """A structured protocol error (``code`` is from ``ERROR_CODES``)."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServeClient:
    """One connection to a serve daemon (unix socket or localhost TCP)."""

    def __init__(
        self,
        socket_path: str | Path | None = None,
        tcp_port: int | None = None,
        timeout_s: float = 120.0,
    ):
        if socket_path is None and tcp_port is None:
            raise ValueError("need a unix socket path or a TCP port")
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout_s)
            self._sock.connect(str(socket_path))
        else:
            self._sock = socket.create_connection(
                ("127.0.0.1", tcp_port), timeout=timeout_s
            )
        self._file = self._sock.makefile("rb")

    # -- transport ---------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """One request line out, one response line back.

        Returns the decoded response dict on ``ok: true``; raises
        :class:`ServeError` on a structured error, ``ConnectionError``
        when the daemon hangs up without answering.
        """
        self._sock.sendall(protocol.encode_line(payload))
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        response = protocol.decode_line(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                str(error.get("code", "internal")),
                str(error.get("message", "unknown error")),
            )
        return response

    def raw(self, line: bytes) -> dict | None:
        """Send a pre-encoded line verbatim and read one response.

        For protocol-edge testing (malformed JSON, oversized lines):
        no client-side validation, returns ``None`` when the daemon
        hangs up instead of answering.
        """
        self._sock.sendall(line)
        response = self._file.readline()
        return protocol.decode_line(response) if response else None

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- verbs -------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def query(
        self,
        metric: str,
        design: str,
        vdd: float,
        beta: float | None = None,
        corner: str = "tt",
        method: str = "auto",
        request_id: str | int | None = None,
    ) -> dict:
        """One metric query; returns the full response (``result``,
        ``served``, ``wall_us``)."""
        payload = {
            "op": "query", "metric": metric, "design": design, "vdd": vdd,
            "beta": beta, "corner": corner, "method": method,
        }
        if request_id is not None:
            payload["id"] = request_id
        return self.request(payload)

    def status(self) -> dict:
        return self.request({"op": "status"})["status"]

    def map(self) -> dict:
        """The server's shard topology (``fleet``, ``workers``, …)."""
        return self.request({"op": "map"})["map"]

    def metrics(self) -> dict:
        return self.request({"op": "metrics"})["metrics"]

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})
