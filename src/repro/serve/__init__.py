"""Online characterization service (``repro.serve``).

The serving layer over the :mod:`repro.char` store (ROADMAP item 1): a
long-running asyncio daemon that answers metric queries from in-memory
:class:`~repro.char.query.CharGrid` surrogates, turns cache misses into
coalesced, checkpointed :mod:`repro.engine` build batches, and streams
the results back to every waiting client when the grids land.

* :mod:`repro.serve.protocol` — the JSON-lines wire protocol (ops,
  error codes, non-finite float encoding, line limits).
* :mod:`repro.serve.registry` — in-memory grids + exact index lookups,
  with store-change detection and reload.
* :mod:`repro.serve.backfill` — the coalescing miss queue: misses →
  deterministic ad-hoc specs → ``build_grid`` batches → resolved
  futures.
* :mod:`repro.serve.daemon` — the event loop: admission control,
  per-request timeouts, graceful drain, telemetry and metrics
  snapshots.
* :mod:`repro.serve.client` — the blocking client the CLI verbs, load
  generator, and smoke tests use.
* :mod:`repro.serve.shard` — the consistent-hash ownership map that
  partitions the keyspace over a fleet of N daemon workers.
* :mod:`repro.serve.front` — the fleet front: routes each query to the
  owning shard, aggregates ``status``/``metrics``, degrades to
  ``shard_down`` for dead shards' keyspace.
* :mod:`repro.serve.http` — GET-only HTTP/1.1 adapter on the front
  (``/v1/query``, ``/v1/status``, ``/metrics`` Prometheus text).

Quick start::

    $ python -m repro char build --spec nominal
    $ python -m repro serve start --spec nominal &
    $ python -m repro serve query drnm --design proposed --vdd 0.65

Fleet (4 shard workers behind one front, plus HTTP)::

    $ python -m repro serve start --spec nominal --workers 4 --http-port 8080 &
    $ curl 'http://127.0.0.1:8080/v1/query?metric=drnm&design=proposed&vdd=0.65'
"""

from repro.serve.backfill import (
    BackfillFailed,
    BackfillOverloaded,
    BackfillQueue,
    MissKey,
    batch_specs,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ServeConfig, ServeDaemon, serve
from repro.serve.front import Front, FrontConfig, ShardAddress, ShardDown, serve_front
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_SCHEMA,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    normalize_request,
    ok_response,
    parse_request,
)
from repro.serve.registry import BACKFILLABLE_REASONS, GridRegistry, validate_point
from repro.serve.shard import (
    ShardMap,
    routing_key,
    shard_socket_path,
    shard_tcp_port,
)

__all__ = [
    "BACKFILLABLE_REASONS",
    "BackfillFailed",
    "BackfillOverloaded",
    "BackfillQueue",
    "ERROR_CODES",
    "Front",
    "FrontConfig",
    "GridRegistry",
    "MAX_LINE_BYTES",
    "MissKey",
    "OPS",
    "PROTOCOL_SCHEMA",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "ShardAddress",
    "ShardDown",
    "ShardMap",
    "batch_specs",
    "decode_line",
    "encode_line",
    "error_response",
    "normalize_request",
    "ok_response",
    "parse_request",
    "routing_key",
    "serve",
    "serve_front",
    "shard_socket_path",
    "shard_tcp_port",
    "validate_point",
]
