"""Online characterization service (``repro.serve``).

The serving layer over the :mod:`repro.char` store (ROADMAP item 1): a
long-running asyncio daemon that answers metric queries from in-memory
:class:`~repro.char.query.CharGrid` surrogates, turns cache misses into
coalesced, checkpointed :mod:`repro.engine` build batches, and streams
the results back to every waiting client when the grids land.

* :mod:`repro.serve.protocol` — the JSON-lines wire protocol (ops,
  error codes, non-finite float encoding, line limits).
* :mod:`repro.serve.registry` — in-memory grids + exact index lookups,
  with store-change detection and reload.
* :mod:`repro.serve.backfill` — the coalescing miss queue: misses →
  deterministic ad-hoc specs → ``build_grid`` batches → resolved
  futures.
* :mod:`repro.serve.daemon` — the event loop: admission control,
  per-request timeouts, graceful drain, telemetry and metrics
  snapshots.
* :mod:`repro.serve.client` — the blocking client the CLI verbs, load
  generator, and smoke tests use.

Quick start::

    $ python -m repro char build --spec nominal
    $ python -m repro serve start --spec nominal &
    $ python -m repro serve query drnm --design proposed --vdd 0.65
"""

from repro.serve.backfill import (
    BackfillFailed,
    BackfillOverloaded,
    BackfillQueue,
    MissKey,
    batch_specs,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ServeConfig, ServeDaemon, serve
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_SCHEMA,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.registry import BACKFILLABLE_REASONS, GridRegistry, validate_point

__all__ = [
    "BACKFILLABLE_REASONS",
    "BackfillFailed",
    "BackfillOverloaded",
    "BackfillQueue",
    "ERROR_CODES",
    "GridRegistry",
    "MAX_LINE_BYTES",
    "MissKey",
    "OPS",
    "PROTOCOL_SCHEMA",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "batch_specs",
    "decode_line",
    "encode_line",
    "error_response",
    "ok_response",
    "parse_request",
    "serve",
    "validate_point",
]
