"""Engine-backed Monte-Carlo: picklable sample specs and batch runs.

The serial :class:`repro.analysis.montecarlo.MonteCarloStudy` takes
arbitrary callables, which cannot cross a process boundary when they
are closures.  This module provides the parallel counterpart: a
:class:`McMetricSpec` *describes* the cell and metric as plain data
(beta, access configuration, assist name, metric kind), and a
module-level task function rebuilds and evaluates it inside any worker
process.

Per-sample thickness scales derive from ``(root_seed, sample_index)``
via the engine's seed derivation, so a batch is reproducible at any
worker count, resumable, and extendable (a 200-sample run shares its
first 64 samples with a 64-sample run of the same seed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.dcop import SolverOptions
from repro.circuit.transient import TransientOptions
from repro.devices.variation import OxideVariation
from repro.engine.jobs import Task, TaskContext, derive_seed, task_rng
from repro.engine.scheduler import BatchReport, EngineConfig, run_tasks

__all__ = [
    "McMetricSpec",
    "MonteCarloBatch",
    "escalated_transient_options",
    "evaluate_mc_sample",
    "sample_scales",
]


def sample_scales(
    variation: OxideVariation, root_seed: int, index: int, transistor_count: int
) -> tuple[float, ...]:
    """The per-transistor thickness scales of one Monte-Carlo sample.

    A pure function of ``(root_seed, index)`` — the engine's
    determinism and resume guarantees for Monte-Carlo rest on exactly
    this property.
    """
    rng = task_rng(root_seed, index)
    return tuple(variation.sample_per_transistor(rng, 1, transistor_count)[0])


def escalated_transient_options(attempt: int) -> TransientOptions | None:
    """Solver knobs for retry attempt ``attempt`` (0 = experiment defaults).

    Escalation follows the standard SPICE playbook: first give Newton
    more room (iterations, backtracks, gentler step rejection), then
    additionally raise the gmin floor to shunt the near-singular
    operating points that defeat attempt 1.
    """
    if attempt <= 0:
        return None
    if attempt == 1:
        solver = SolverOptions(max_iterations=160, line_search_backtracks=8)
        return TransientOptions(solver=solver, shrink=0.25)
    solver = SolverOptions(
        max_iterations=240, line_search_backtracks=10, gmin=1e-11
    )
    return TransientOptions(solver=solver, shrink=0.2, max_voltage_step=0.04)


@dataclass(frozen=True)
class McMetricSpec:
    """Plain-data description of one Monte-Carlo metric evaluation.

    ``metric`` is ``"wlcrit"`` (critical wordline pulse; ``assist``
    names an entry of ``WRITE_ASSISTS``) or ``"drnm"`` (dynamic read
    noise margin; ``assist`` names an entry of ``READ_ASSISTS``).
    ``access`` is an :class:`~repro.sram.AccessConfig` member name.
    Everything here is picklable, so a spec travels to worker
    processes by value.
    """

    metric: str
    beta: float
    vdd: float = 0.8
    access: str = "INWARD_P"
    assist: str | None = None
    wlcrit_upper_bound: float = 4.0e-9
    metric_name: str = "metric"
    transistor_count: int = 6
    variation: OxideVariation = field(default_factory=OxideVariation)

    def __post_init__(self) -> None:
        if self.metric not in ("wlcrit", "drnm"):
            raise ValueError(
                f"metric must be 'wlcrit' or 'drnm', got {self.metric!r}"
            )


def evaluate_mc_sample(payload, ctx: TaskContext) -> float:
    """Task function: build the varied cell and evaluate the spec's metric.

    ``payload`` is ``(spec, scales)``.  On retries the transient solver
    runs with :func:`escalated_transient_options` for the attempt.
    """
    from repro.analysis.montecarlo import varied_device_set
    from repro.analysis.stability import (
        WlCritSearch,
        critical_wordline_pulse,
        dynamic_read_noise_margin,
    )
    from repro.sram import (
        READ_ASSISTS,
        WRITE_ASSISTS,
        AccessConfig,
        CellSizing,
        Tfet6TCell,
    )

    spec, scales = payload
    options = escalated_transient_options(ctx.attempt)
    devices = varied_device_set(scales)
    cell = Tfet6TCell(
        CellSizing().with_beta(spec.beta), AccessConfig[spec.access], devices=devices
    )
    if spec.metric == "wlcrit":
        assist = WRITE_ASSISTS[spec.assist] if spec.assist else None
        search = WlCritSearch(upper_bound=spec.wlcrit_upper_bound, options=options)
        return float(
            critical_wordline_pulse(cell, spec.vdd, assist=assist, search=search)
        )
    assist = READ_ASSISTS[spec.assist] if spec.assist else None
    return float(
        dynamic_read_noise_margin(
            cell.read_testbench(spec.vdd, assist=assist), options=options
        )
    )


@dataclass(frozen=True)
class MonteCarloBatch:
    """Monte-Carlo study of one :class:`McMetricSpec` on the batch engine."""

    spec: McMetricSpec

    def tasks(self, sample_count: int, seed: int) -> list[Task]:
        """The batch's task list (sample scales drawn parent-side)."""
        if sample_count <= 0:
            raise ValueError("sample_count must be positive")
        return [
            Task(
                index=k,
                fn=evaluate_mc_sample,
                payload=(
                    self.spec,
                    sample_scales(
                        self.spec.variation, seed, k, self.spec.transistor_count
                    ),
                ),
                seed=derive_seed(seed, k),
            )
            for k in range(sample_count)
        ]

    def run(
        self,
        sample_count: int,
        seed: int = 2011,
        engine: EngineConfig | None = None,
    ):
        """Evaluate ``sample_count`` samples; returns a
        :class:`~repro.analysis.montecarlo.MonteCarloResult` whose
        ``report`` attribute carries the :class:`BatchReport`.

        Engine-level task failures (retry exhaustion, timeout, a died
        worker) enter the sample array as ``nan`` — distinguishable
        from the metric's own ``inf`` write failures, but equally
        counted by ``MonteCarloResult.failure_count``.
        """
        from repro.analysis.montecarlo import MonteCarloResult

        config = engine or EngineConfig()
        report = run_tasks(self.tasks(sample_count, seed), config)
        values = np.array(
            [v if v is not None else math.nan for v in report.values()], dtype=float
        )
        return MonteCarloResult(self.spec.metric_name, values, report=report)
