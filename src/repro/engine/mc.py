"""Engine-backed Monte-Carlo: picklable sample specs and batch runs.

The serial :class:`repro.analysis.montecarlo.MonteCarloStudy` takes
arbitrary callables, which cannot cross a process boundary when they
are closures.  This module provides the parallel counterpart: a
:class:`McMetricSpec` *describes* the cell and metric as plain data
(beta, access configuration, assist name, metric kind), and a
module-level task function rebuilds and evaluates it inside any worker
process.

Per-sample thickness scales derive from ``(root_seed, sample_index)``
via the engine's seed derivation, so a batch is reproducible at any
worker count, resumable, and extendable (a 200-sample run shares its
first 64 samples with a 64-sample run of the same seed).
"""

from __future__ import annotations

import math
import traceback
from dataclasses import dataclass, field, replace

import numpy as np

from repro.circuit.dcop import SolverOptions
from repro.circuit.transient import TransientOptions
from repro.devices.variation import OxideVariation
from repro.engine.jobs import Task, TaskContext, TaskOutcome, derive_seed, task_rng
from repro.engine.scheduler import BatchReport, EngineConfig, run_tasks

__all__ = [
    "McMetricSpec",
    "MonteCarloBatch",
    "escalated_transient_options",
    "evaluate_mc_chunk",
    "evaluate_mc_sample",
    "sample_scales",
]


def sample_scales(
    variation: OxideVariation, root_seed: int, index: int, transistor_count: int
) -> tuple[float, ...]:
    """The per-transistor thickness scales of one Monte-Carlo sample.

    A pure function of ``(root_seed, index)`` — the engine's
    determinism and resume guarantees for Monte-Carlo rest on exactly
    this property.
    """
    rng = task_rng(root_seed, index)
    return tuple(variation.sample_per_transistor(rng, 1, transistor_count)[0])


def escalated_transient_options(attempt: int) -> TransientOptions | None:
    """Solver knobs for retry attempt ``attempt`` (0 = experiment defaults).

    Escalation follows the standard SPICE playbook: first give Newton
    more room (iterations, backtracks, gentler step rejection), then
    additionally raise the gmin floor to shunt the near-singular
    operating points that defeat attempt 1.
    """
    if attempt <= 0:
        return None
    if attempt == 1:
        solver = SolverOptions(max_iterations=160, line_search_backtracks=8)
        return TransientOptions(solver=solver, shrink=0.25)
    solver = SolverOptions(
        max_iterations=240, line_search_backtracks=10, gmin=1e-11
    )
    return TransientOptions(solver=solver, shrink=0.2, max_voltage_step=0.04)


@dataclass(frozen=True)
class McMetricSpec:
    """Plain-data description of one Monte-Carlo metric evaluation.

    ``metric`` is ``"wlcrit"`` (critical wordline pulse; ``assist``
    names an entry of ``WRITE_ASSISTS``) or ``"drnm"`` (dynamic read
    noise margin; ``assist`` names an entry of ``READ_ASSISTS``).
    ``access`` is an :class:`~repro.sram.AccessConfig` member name.
    Everything here is picklable, so a spec travels to worker
    processes by value.
    """

    metric: str
    beta: float
    vdd: float = 0.8
    access: str = "INWARD_P"
    assist: str | None = None
    wlcrit_upper_bound: float = 4.0e-9
    metric_name: str = "metric"
    transistor_count: int = 6
    variation: OxideVariation = field(default_factory=OxideVariation)

    def __post_init__(self) -> None:
        if self.metric not in ("wlcrit", "drnm"):
            raise ValueError(
                f"metric must be 'wlcrit' or 'drnm', got {self.metric!r}"
            )


def evaluate_mc_sample(payload, ctx: TaskContext) -> float:
    """Task function: build the varied cell and evaluate the spec's metric.

    ``payload`` is ``(spec, scales)``.  On retries the transient solver
    runs with :func:`escalated_transient_options` for the attempt.
    """
    from repro.analysis.montecarlo import varied_device_set
    from repro.analysis.stability import (
        WlCritSearch,
        critical_wordline_pulse,
        dynamic_read_noise_margin,
    )
    from repro.sram import (
        READ_ASSISTS,
        WRITE_ASSISTS,
        AccessConfig,
        CellSizing,
        Tfet6TCell,
    )

    spec, scales = payload
    options = escalated_transient_options(ctx.attempt)
    devices = varied_device_set(scales)
    cell = Tfet6TCell(
        CellSizing().with_beta(spec.beta), AccessConfig[spec.access], devices=devices
    )
    if spec.metric == "wlcrit":
        assist = WRITE_ASSISTS[spec.assist] if spec.assist else None
        search = WlCritSearch(upper_bound=spec.wlcrit_upper_bound, options=options)
        return float(
            critical_wordline_pulse(cell, spec.vdd, assist=assist, search=search)
        )
    assist = READ_ASSISTS[spec.assist] if spec.assist else None
    return float(
        dynamic_read_noise_margin(
            cell.read_testbench(spec.vdd, assist=assist), options=options
        )
    )


def _wlcrit_gen(member, cell, vdd, assist, upper_bound, options):
    """Generator transcription of the WL_crit bisection for one batch member.

    Mirrors :class:`~repro.analysis.stability.WlCritSearch` step for
    step (same width sequence, same cached-OP seeding, same
    ConvergenceError handling), with every transient routed through the
    stacked assembler — so the returned width is bit-identical to the
    scalar search.
    """
    from repro.analysis.stability import (
        FLIP_MARGIN,
        SETTLE_TIME,
        WlCritSearch,
    )
    from repro.circuit.batch import transient_gen
    from repro.circuit.dcop import ConvergenceError

    search = WlCritSearch(upper_bound=upper_bound, options=options)
    factory = cell.write_bench_factory(vdd, assist=assist)
    op_guess: list[dict | None] = [None]

    def flips(width):
        bench = factory(width)
        try:
            result = yield from transient_gen(
                member,
                bench.circuit,
                bench.settle_stop(SETTLE_TIME),
                initial_conditions=bench.initial_conditions,
                options=search.options,
                operating_point_guess=op_guess[0],
            )
        except ConvergenceError:
            # Same convention as WlCritSearch._flips: a non-converging
            # corner counts as "did not flip" (conservative direction).
            return False
        op_guess[0] = dict(
            zip(bench.circuit.node_names, (float(v) for v in result.states[0]))
        )
        final = result.final(bench.one_node) - result.final(bench.zero_node)
        return final < FLIP_MARGIN

    if not (yield from flips(search.upper_bound)):
        return math.inf
    if (yield from flips(search.lower_bound)):
        return search.lower_bound

    lo, hi = search.lower_bound, search.upper_bound
    while hi - lo > search.relative_tolerance * hi:
        mid = math.sqrt(lo * hi)
        if (yield from flips(mid)):
            hi = mid
        else:
            lo = mid
    return hi


def _mc_sample_gen(member, payload, ctx: TaskContext):
    """Generator transcription of :func:`evaluate_mc_sample`.

    Same cell construction, same metric logic; only the transient
    solves are yielded to the stacked batch driver.
    """
    from repro.analysis.montecarlo import varied_device_set
    from repro.analysis.stability import SETTLE_TIME
    from repro.circuit.batch import transient_gen
    from repro.sram import (
        READ_ASSISTS,
        WRITE_ASSISTS,
        AccessConfig,
        CellSizing,
        Tfet6TCell,
    )

    spec, scales = payload
    options = escalated_transient_options(ctx.attempt)
    devices = varied_device_set(scales)
    cell = Tfet6TCell(
        CellSizing().with_beta(spec.beta), AccessConfig[spec.access], devices=devices
    )
    if spec.metric == "wlcrit":
        assist = WRITE_ASSISTS[spec.assist] if spec.assist else None
        value = yield from _wlcrit_gen(
            member, cell, spec.vdd, assist, spec.wlcrit_upper_bound, options
        )
        return float(value)
    assist = READ_ASSISTS[spec.assist] if spec.assist else None
    bench = cell.read_testbench(spec.vdd, assist=assist)
    result = yield from transient_gen(
        member,
        bench.circuit,
        bench.settle_stop(SETTLE_TIME),
        initial_conditions=bench.initial_conditions,
        options=options,
    )
    return float(
        result.min_difference(
            bench.one_node, bench.zero_node, bench.window.t_on, bench.window.t_off
        )
    )


def evaluate_mc_chunk(payload, ctx: TaskContext) -> list[dict]:
    """Task function: evaluate a whole chunk of samples as one stacked batch.

    ``payload`` is ``(spec, entries, retries, verify_fraction,
    verify_options)`` with ``entries`` a tuple of ``(index, seed,
    scales)`` triples, one per batch member.  Attempt 0 solves every
    member together through :mod:`repro.circuit.batch`; a member that
    fails with a retryable solver error splits off to the scalar
    :func:`evaluate_mc_sample` path with the usual escalation ladder
    (``engine.convergence_errors`` / ``engine.retries`` counter
    semantics match :func:`~repro.engine.worker.execute_task`).

    Bit-level trust: the same deterministic per-seed draw the engine
    uses for task auditing (:func:`~repro.engine.worker.verify_selected`)
    selects members whose batched value is re-derived on the scalar
    path under a :mod:`repro.verify` session; any disagreement is a
    solver bug and fails the member with a ``VerificationError``.

    Returns one JSON-able record per member, checkpoint-safe and
    field-compatible with :meth:`~repro.engine.jobs.TaskOutcome`.
    """
    from repro import telemetry, verify
    from repro.circuit.batch import BatchMember, run_generators
    from repro.engine.worker import RETRYABLE_ERRORS, verify_selected
    from repro.verify.core import VerificationError

    spec, entries, retries, verify_fraction, verify_options = payload
    tel = telemetry.active()

    pairs = []
    for index, seed, scales in entries:
        member = BatchMember(label=f"s{index}")
        gen = _mc_sample_gen(
            member, (spec, scales), TaskContext(index=index, seed=seed, attempt=0)
        )
        pairs.append((member, gen))
    outcomes = run_generators(pairs)

    records = []
    for (index, seed, scales), outcome in zip(entries, outcomes):
        attempt = 0
        value = outcome.value if outcome.status == "ok" else None
        error = outcome.error if outcome.status != "ok" else None

        # Scalar fallback ladder for members the batch could not solve.
        while error is not None and isinstance(error, RETRYABLE_ERRORS):
            if tel is not None:
                tel.count("engine.convergence_errors")
            if attempt >= retries:
                break
            attempt += 1
            if tel is not None:
                tel.count("engine.retries")
            if tel is not None:
                tel.count("batch.member_retries")
            try:
                value = evaluate_mc_sample(
                    (spec, scales),
                    TaskContext(index=index, seed=seed, attempt=attempt),
                )
                error = None
            except RETRYABLE_ERRORS as exc:
                error = exc
            except Exception as exc:  # noqa: BLE001 — recorded, chunk survives
                error = exc
                break

        # Audit a deterministic member subset: re-derive the batched
        # value on the scalar path under full verification.  Only
        # attempt-0 successes qualify — a retried member's value came
        # from the scalar path already.
        if error is None and attempt == 0 and verify_selected(seed, verify_fraction):
            if tel is not None:
                tel.count("verify.audited_tasks")
            session = None
            try:
                with verify.enabled(verify_options) as session:
                    check = evaluate_mc_sample(
                        (spec, scales),
                        TaskContext(index=index, seed=seed, attempt=0),
                    )
                both_nan = math.isnan(check) and math.isnan(value)
                if check != value and not both_nan:
                    raise VerificationError(
                        "batch",
                        f"batched sample {index} disagrees with the scalar path",
                        {"batched": value, "scalar": check},
                    )
            except Exception as exc:  # noqa: BLE001 — a real solver bug
                error = exc
                value = None
            if tel is not None and session is not None:
                for name, n in session.audits.items():
                    tel.count(f"verify.audit.{name}", n)

        if error is None:
            records.append(
                {
                    "index": index,
                    "status": "ok",
                    "value": value,
                    "attempts": attempt + 1,
                }
            )
        else:
            if tel is not None:
                tel.count("batch.member_failures")
            records.append(
                {
                    "index": index,
                    "status": "failed",
                    "value": None,
                    "attempts": attempt + 1,
                    "error_type": type(error).__name__,
                    "error": "".join(
                        traceback.format_exception_only(error)
                    ).strip(),
                }
            )
    return records


@dataclass(frozen=True)
class MonteCarloBatch:
    """Monte-Carlo study of one :class:`McMetricSpec` on the batch engine."""

    spec: McMetricSpec

    def tasks(self, sample_count: int, seed: int) -> list[Task]:
        """The batch's task list (sample scales drawn parent-side)."""
        if sample_count <= 0:
            raise ValueError("sample_count must be positive")
        return [
            Task(
                index=k,
                fn=evaluate_mc_sample,
                payload=(
                    self.spec,
                    sample_scales(
                        self.spec.variation, seed, k, self.spec.transistor_count
                    ),
                ),
                seed=derive_seed(seed, k),
            )
            for k in range(sample_count)
        ]

    def chunk_tasks(
        self, sample_count: int, seed: int, config: EngineConfig, batch_size: int
    ) -> list[Task]:
        """The batched task list: one chunk task per ``batch_size`` samples.

        Member seeds and scales are exactly those of :meth:`tasks`, so
        every sample's work — and the deterministic audit selection —
        is identical to the scalar layout at any chunk size.
        """
        if sample_count <= 0:
            raise ValueError("sample_count must be positive")
        if batch_size <= 1:
            raise ValueError("batch_size must be > 1 for chunked tasks")
        chunks = []
        for c in range((sample_count + batch_size - 1) // batch_size):
            lo = c * batch_size
            hi = min(sample_count, lo + batch_size)
            entries = tuple(
                (
                    k,
                    derive_seed(seed, k),
                    sample_scales(
                        self.spec.variation, seed, k, self.spec.transistor_count
                    ),
                )
                for k in range(lo, hi)
            )
            chunks.append(
                Task(
                    index=c,
                    fn=evaluate_mc_chunk,
                    payload=(
                        self.spec,
                        entries,
                        config.retries,
                        config.verify_fraction,
                        config.verify_options,
                    ),
                    seed=derive_seed(seed, c),
                )
            )
        return chunks

    def run(
        self,
        sample_count: int,
        seed: int = 2011,
        engine: EngineConfig | None = None,
        batch_size: int = 1,
    ):
        """Evaluate ``sample_count`` samples; returns a
        :class:`~repro.analysis.montecarlo.MonteCarloResult` whose
        ``report`` attribute carries the :class:`BatchReport`.

        Engine-level task failures (retry exhaustion, timeout, a died
        worker) enter the sample array as ``nan`` — distinguishable
        from the metric's own ``inf`` write failures, but equally
        counted by ``MonteCarloResult.failure_count``.

        ``batch_size > 1`` solves that many samples per task as one
        stacked Newton batch (:mod:`repro.circuit.batch`) — same
        values to the last bit, a fraction of the wall clock.  Retries,
        timeouts and verify audits keep their per-*sample* semantics
        (retried members split to the scalar path inside the chunk;
        ``timeout_s`` scales by the chunk size); checkpoints are keyed
        per batch size and the report is re-expanded to per-sample
        outcomes, so downstream consumers see the scalar shape.
        ``report.resumed_count`` and the ``engine.tasks_*`` session
        counters count *chunks* in batched mode.
        """
        from repro.analysis.montecarlo import MonteCarloResult

        config = engine or EngineConfig()
        if batch_size > 1:
            report = self._run_batched(sample_count, seed, config, batch_size)
        else:
            report = run_tasks(self.tasks(sample_count, seed), config)
        values = np.array(
            [v if v is not None else math.nan for v in report.values()], dtype=float
        )
        return MonteCarloResult(self.spec.metric_name, values, report=report)

    def _run_batched(
        self, sample_count: int, seed: int, config: EngineConfig, batch_size: int
    ) -> BatchReport:
        """Run chunked tasks and expand them into a per-sample report."""
        chunk_config = replace(
            config,
            retries=0,
            verify_fraction=0.0,
            verify_options=None,
            run_key=f"{config.run_key}:bs={batch_size}",
            timeout_s=(
                config.timeout_s * batch_size
                if config.timeout_s is not None
                else None
            ),
        )
        chunk_report = run_tasks(
            self.chunk_tasks(sample_count, seed, config, batch_size), chunk_config
        )
        outcomes: list[TaskOutcome] = []
        for chunk in chunk_report.outcomes:
            lo = chunk.index * batch_size
            hi = min(sample_count, lo + batch_size)
            if chunk.ok:
                share = chunk.wall_s / max(1, len(chunk.value))
                for rec in chunk.value:
                    outcomes.append(
                        TaskOutcome(
                            index=int(rec["index"]),
                            status=str(rec["status"]),
                            value=rec.get("value"),
                            attempts=int(rec.get("attempts", 1)),
                            wall_s=share,
                            error_type=rec.get("error_type"),
                            error=rec.get("error"),
                        )
                    )
            else:
                # The whole chunk died (timeout, worker loss, a bug):
                # every member it covered is recorded as failed.
                share = chunk.wall_s / max(1, hi - lo)
                for k in range(lo, hi):
                    outcomes.append(
                        TaskOutcome(
                            index=k,
                            status="failed",
                            attempts=chunk.attempts,
                            wall_s=share,
                            error_type=chunk.error_type,
                            error=chunk.error,
                        )
                    )
        outcomes.sort(key=lambda o: o.index)
        return BatchReport(
            outcomes=outcomes,
            jobs=chunk_report.jobs,
            wall_s=chunk_report.wall_s,
            resumed_count=chunk_report.resumed_count,
            counters=chunk_report.counters,
        )
