"""Fault-tolerant batch scheduler over a process pool.

``run_tasks`` executes a list of independent :class:`Task` objects and
returns a :class:`BatchReport`.  The contract:

* **Determinism** — outcomes depend only on each task's
  ``(root_seed, index)``-derived seed and payload, never on worker
  count or completion order; ``jobs=1`` runs inline (no pickling, so
  closures are fine) and is bit-identical to any ``jobs=N``.
* **Fault tolerance** — a task that exhausts its retries, times out,
  or dies with the pool is recorded as a structured failure; the batch
  always completes and reports, it never crashes half-way.
* **Checkpointing** — with a checkpoint configured, every outcome is
  flushed to the JSONL log the moment it lands, and ``resume=True``
  replays completed indices instead of recomputing them.
* **Shared caching** — workers are initialized with the on-disk
  device-table cache so the expensive physics sampling is paid once
  per unique quantized scale across the whole pool.
* **Telemetry** — per-task counters (solver statistics, cache hits,
  retry counts) are aggregated across workers into the caller's active
  telemetry session, so run manifests of parallel runs stay as
  diagnosable as serial ones.
* **Tracing** — with ``trace_dir`` configured, the scheduler mints a
  :class:`~repro.obs.context.TraceSpec` (trace id + batch span id) and
  threads it into every worker; workers stream per-task span trees to
  per-process JSONL sinks, the scheduler records the batch span and
  aggregate checkpoint-I/O span, and the sinks are merged into one
  run-level ``trace.json`` when the batch completes (``repro trace``
  renders it).
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.checkpoint import CheckpointLog
from repro.engine.jobs import Task, TaskOutcome
from repro.engine.worker import execute_task, worker_init
from repro.telemetry import core as telemetry
from repro.verify.core import VerifyOptions

__all__ = ["EngineConfig", "BatchReport", "run_tasks"]

MAX_IN_FLIGHT_PER_WORKER = 4
"""Submission window per worker: bounds pickled-task memory while
keeping every worker saturated."""


@dataclass(frozen=True)
class EngineConfig:
    """Batch-execution knobs.

    ``retries`` counts additional attempts after the first (on
    :class:`~repro.circuit.dcop.ConvergenceError` only); ``timeout_s``
    is the per-attempt wall-clock budget.  ``checkpoint_path`` enables
    JSONL checkpointing; ``resume`` replays it.  ``cache_dir`` locates
    the shared on-disk device-table cache.

    ``verify_fraction`` sample-audits that fraction of tasks under a
    :mod:`repro.verify` session (deterministically selected per task
    seed, so the audited subset is stable across worker counts and
    resumes); ``verify_options`` tunes the audits.  An audit violation
    fails the task with a structured ``VerificationError`` outcome —
    it is a solver bug, not a convergence hiccup, so it is never
    retried.

    ``trace_dir`` enables the cross-process trace pipeline: per-task
    span trees stream to JSONL sinks under that directory and merge
    into ``<trace_dir>/trace.json`` when the batch completes.
    ``trace_id`` pins the run-level trace id (several batches of one
    run share it); left ``None``, a fresh id is minted per batch.
    """

    jobs: int = 1
    retries: int = 2
    timeout_s: float | None = None
    checkpoint_path: str | Path | None = None
    resume: bool = False
    run_key: str = "batch"
    root_seed: int = 0
    cache_dir: str | Path | None = None
    collect_telemetry: bool = True
    verify_fraction: float = 0.0
    verify_options: VerifyOptions | None = None
    trace_dir: str | Path | None = None
    trace_id: str | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(f"retries cannot be negative, got {self.retries}")
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if not 0.0 <= self.verify_fraction <= 1.0:
            raise ValueError(
                f"verify_fraction must be in [0, 1], got {self.verify_fraction}"
            )


@dataclass
class BatchReport:
    """Everything one batch run produced, success and failure alike."""

    outcomes: list[TaskOutcome]
    jobs: int
    wall_s: float
    resumed_count: int = 0
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def ok_count(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def failed_count(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def retry_count(self) -> int:
        return sum(o.attempts - 1 for o in self.outcomes)

    def values(self, failed_value=None) -> list:
        """Task values in index order; failures become ``failed_value``."""
        return [o.value if o.ok else failed_value for o in self.outcomes]

    def failures(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def cache_stats(self) -> dict[str, int]:
        """Device-table disk-cache activity aggregated across workers."""
        return {
            "hits": self.counters.get("devcache.hits", 0),
            "misses": self.counters.get("devcache.misses", 0),
            "stores": self.counters.get("devcache.stores", 0),
        }


def run_tasks(tasks: list[Task], config: EngineConfig = EngineConfig()) -> BatchReport:
    """Execute a batch of independent tasks; see the module docstring."""
    indices = [t.index for t in tasks]
    if len(set(indices)) != len(indices):
        raise ValueError("task indices must be unique within a batch")

    trace = None
    if config.trace_dir is not None:
        from repro.obs.context import TraceSpec

        trace = TraceSpec.for_batch(config.trace_dir, config.run_key, config.trace_id)

    start = time.perf_counter()
    batch_t0_unix = time.time()
    done: dict[int, TaskOutcome] = {}
    log = None
    if config.checkpoint_path is not None:
        log = CheckpointLog(config.checkpoint_path, config.run_key, config.root_seed)
        if config.resume:
            done = log.open_resumed()
        else:
            log.open_fresh()
        if trace is not None:
            log = _TimedCheckpoint(log)

    pending = [t for t in tasks if t.index not in done]
    resumed_count = len(tasks) - len(pending)
    try:
        if config.jobs == 1:
            fresh = _run_inline(pending, config, log, trace)
        else:
            fresh = _run_pool(pending, config, log, trace)
    finally:
        if log is not None:
            log.close()

    done.update(fresh)
    outcomes = [done[t.index] for t in tasks]
    report = BatchReport(
        outcomes=outcomes,
        jobs=config.jobs,
        wall_s=time.perf_counter() - start,
        resumed_count=resumed_count,
    )
    for outcome in fresh.values():
        _merge_counts(report.counters, outcome.counters)
    _publish_to_session(report, resumed_count)
    if trace is not None:
        _finalize_trace(trace, config, report, log, batch_t0_unix)
    return report


class _TimedCheckpoint:
    """Checkpoint-log proxy that accumulates append wall time.

    Traced batches wrap the log in this so the scheduler can emit one
    aggregate ``checkpoint.io`` span per batch instead of one span per
    outcome — checkpoint appends are frequent and individually tiny.
    """

    def __init__(self, log: CheckpointLog):
        self._log = log
        self.append_s = 0.0
        self.appends = 0

    def append(self, outcome) -> None:
        t0 = time.perf_counter()
        self._log.append(outcome)
        self.append_s += time.perf_counter() - t0
        self.appends += 1

    def close(self) -> None:
        self._log.close()


def _finalize_trace(trace, config, report, log, batch_t0_unix) -> None:
    """Record the scheduler-side spans and merge the run-level trace."""
    from repro.obs.sink import SpanSink
    from repro.obs.trace import merge_trace
    from repro.telemetry.core import derive_span_id

    sink = SpanSink(config.trace_dir, role="scheduler", trace_id=trace.trace_id)
    try:
        if isinstance(log, _TimedCheckpoint) and log.appends:
            sink.write_span(
                derive_span_id(
                    trace.trace_id, trace.parent_span_id, "checkpoint.io", 0
                ),
                trace.parent_span_id,
                "checkpoint.io",
                batch_t0_unix,
                log.append_s,
                appends=log.appends,
            )
        sink.write_span(
            trace.parent_span_id,
            "",
            "batch",
            batch_t0_unix,
            report.wall_s,
            run_key=config.run_key,
            jobs=config.jobs,
            tasks=len(report.outcomes),
            ok=report.ok_count,
            failed=report.failed_count,
            resumed=report.resumed_count,
        )
    finally:
        sink.close()
    merge_trace(config.trace_dir)


def _run_inline(pending, config, log, trace=None) -> dict[int, TaskOutcome]:
    """Single-job path: runs in-process, accepts unpicklable task fns."""
    installed_cache = None
    if config.cache_dir is not None:
        from repro.devices.library import set_table_cache, table_cache
        from repro.engine.cache import DeviceTableCache

        installed_cache = table_cache()
        set_table_cache(DeviceTableCache(config.cache_dir))
    try:
        outcomes: dict[int, TaskOutcome] = {}
        for task in pending:
            outcome = execute_task(
                task,
                retries=config.retries,
                timeout_s=config.timeout_s,
                collect_telemetry=config.collect_telemetry,
                verify_fraction=config.verify_fraction,
                verify_options=config.verify_options,
                trace=trace,
            )
            outcomes[task.index] = outcome
            if log is not None:
                log.append(outcome)
        return outcomes
    finally:
        if config.cache_dir is not None:
            from repro.devices.library import set_table_cache

            set_table_cache(installed_cache)


def _run_pool(pending, config, log, trace=None) -> dict[int, TaskOutcome]:
    """Multi-worker path over a fork-context process pool.

    Tasks are submitted through a bounded in-flight window; each
    completion is checkpointed immediately.  A broken pool (a worker
    killed by the OS) downgrades the affected tasks to structured
    failures instead of aborting the batch.
    """
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:  # non-POSIX fallback; task fns must then be importable
        mp_context = None

    outcomes: dict[int, TaskOutcome] = {}
    window = config.jobs * MAX_IN_FLIGHT_PER_WORKER
    queue = list(reversed(pending))  # pop() preserves index order
    with ProcessPoolExecutor(
        max_workers=config.jobs,
        mp_context=mp_context,
        initializer=worker_init,
        initargs=(config.cache_dir,),
    ) as pool:
        in_flight = {}
        while queue or in_flight:
            while queue and len(in_flight) < window:
                task = queue.pop()
                future = pool.submit(
                    execute_task,
                    task,
                    retries=config.retries,
                    timeout_s=config.timeout_s,
                    collect_telemetry=config.collect_telemetry,
                    verify_fraction=config.verify_fraction,
                    verify_options=config.verify_options,
                    trace=trace,
                )
                in_flight[future] = task
            finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in finished:
                task = in_flight.pop(future)
                try:
                    outcome = future.result()
                except Exception as exc:  # noqa: BLE001 — e.g. BrokenProcessPool
                    outcome = TaskOutcome(
                        index=task.index,
                        status="failed",
                        attempts=1,
                        error_type=type(exc).__name__,
                        error=str(exc) or type(exc).__name__,
                    )
                outcomes[task.index] = outcome
                if log is not None:
                    log.append(outcome)
    return outcomes


def _publish_to_session(report: BatchReport, resumed_count: int) -> None:
    """Fold worker counters and engine totals into the caller's session."""
    tel = telemetry.active()
    if tel is None:
        return
    for name, n in report.counters.items():
        tel.count(name, n)
    tel.count("engine.tasks_total", len(report.outcomes))
    tel.count("engine.tasks_ok", report.ok_count)
    tel.count("engine.tasks_failed", report.failed_count)
    tel.count("engine.tasks_resumed", resumed_count)
    tel.count("engine.jobs", report.jobs)


def _merge_counts(into: dict[str, int], source: dict[str, int]) -> None:
    for name, n in source.items():
        into[name] = into.get(name, 0) + n
