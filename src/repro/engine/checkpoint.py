"""JSONL run checkpoints: one header line, then one line per outcome.

The checkpoint is an append-only log.  Line 1 is a header identifying
the run (schema, ``run_key``, root seed); every following line is one
:class:`~repro.engine.jobs.TaskOutcome` record, flushed as soon as the
task finishes, so a killed run loses at most the tasks that were still
in flight.  Resuming replays the completed indices and computes only
the rest; because task seeds derive from ``(root_seed, index)``, a
resumed run is bit-identical to an uninterrupted one — and a run may
even be *extended* to a larger task count on resume, reusing the
prefix it already computed.

Values use Python's JSON dialect (``Infinity``/``NaN`` literals are
legal), matching the Monte-Carlo convention that a diverged metric is
data, not an error.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.engine.jobs import TaskOutcome

__all__ = ["CheckpointLog", "CheckpointMismatch"]

CHECKPOINT_SCHEMA = "repro.engine.checkpoint/v1"


class CheckpointMismatch(RuntimeError):
    """The on-disk checkpoint belongs to a different run configuration."""


class CheckpointLog:
    """Append-only JSONL checkpoint bound to one ``(run_key, root_seed)``.

    ``run_key`` names the *work* (experiment, metric, parameters — but
    not the task count); resuming with a different key or seed raises
    :class:`CheckpointMismatch` instead of silently mixing runs.
    """

    def __init__(self, path: str | Path, run_key: str, root_seed: int):
        self.path = Path(path)
        self.run_key = str(run_key)
        self.root_seed = int(root_seed)
        self._handle = None

    # -- reading -----------------------------------------------------------

    def load(self) -> dict[int, TaskOutcome]:
        """Completed outcomes by index; ``{}`` if no checkpoint exists.

        Truncated trailing lines (the signature of a kill mid-write) are
        ignored; a header that does not match this run raises.
        """
        if not self.path.exists():
            return {}
        outcomes: dict[int, TaskOutcome] = {}
        with self.path.open() as handle:
            header_line = handle.readline()
            if not header_line.strip():
                return {}
            try:
                header = json.loads(header_line)
            except json.JSONDecodeError as exc:
                raise CheckpointMismatch(
                    f"unreadable checkpoint header in {self.path}"
                ) from exc
            if header.get("schema") != CHECKPOINT_SCHEMA:
                raise CheckpointMismatch(
                    f"{self.path} has schema {header.get('schema')!r}, "
                    f"expected {CHECKPOINT_SCHEMA!r}"
                )
            if header.get("run_key") != self.run_key:
                raise CheckpointMismatch(
                    f"{self.path} belongs to run {header.get('run_key')!r}, "
                    f"not {self.run_key!r}; delete it or drop --resume"
                )
            if header.get("root_seed") != self.root_seed:
                raise CheckpointMismatch(
                    f"{self.path} was written with --seed {header.get('root_seed')}, "
                    f"not {self.root_seed}; delete it or rerun with the same seed"
                )
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail from an interrupted write
                outcomes[int(record["index"])] = TaskOutcome.from_record(record)
        return outcomes

    # -- writing -----------------------------------------------------------

    def open_fresh(self) -> None:
        """Truncate and write a new header (non-resumed runs)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w")
        self._write_line(
            {
                "schema": CHECKPOINT_SCHEMA,
                "run_key": self.run_key,
                "root_seed": self.root_seed,
            }
        )

    def open_resumed(self) -> dict[int, TaskOutcome]:
        """Load completed outcomes, then reopen the log for appending.

        A missing file degrades to :meth:`open_fresh` — ``--resume`` on
        a first run is not an error.
        """
        done = self.load()
        if not done and not self.path.exists():
            self.open_fresh()
            return {}
        # Rewrite compacted: header + the outcomes that survived parsing.
        # This drops any torn tail so the appended lines stay parseable.
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w")
        self._write_line(
            {
                "schema": CHECKPOINT_SCHEMA,
                "run_key": self.run_key,
                "root_seed": self.root_seed,
            }
        )
        for index in sorted(done):
            self._write_line(done[index].to_record())
        return done

    def append(self, outcome: TaskOutcome) -> None:
        if self._handle is None:
            raise RuntimeError("checkpoint log is not open")
        self._write_line(outcome.to_record())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _write_line(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def __enter__(self) -> "CheckpointLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
