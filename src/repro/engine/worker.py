"""Worker-side task execution: retry, escalation, timeout, telemetry.

This module is imported by name inside every worker process, so
everything here must be module-level and import-safe.  The execution
wrapper never lets an exception escape — a task that fails after all
retries produces a structured ``failed`` outcome, keeping the pool and
the rest of the batch alive (graceful degradation).

Retry policy: :class:`~repro.circuit.dcop.ConvergenceError` is
retryable — the task function sees an incremented ``ctx.attempt`` and
is expected to escalate its solver knobs (see
:func:`repro.engine.mc.escalated_transient_options`).  A
:class:`TaskTimeout` is *not* retryable: the work is deterministic, so
a second attempt would time out the same way; it is recorded as a
structured failure immediately.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from contextlib import nullcontext

import numpy as np

from repro.circuit.dcop import ConvergenceError
from repro.engine.jobs import Task, TaskContext, TaskOutcome
from repro.telemetry import core as telemetry
from repro.verify import core as verify

__all__ = ["TaskTimeout", "execute_task", "verify_selected", "worker_init"]

RETRYABLE_ERRORS = (ConvergenceError,)

_VERIFY_STREAM = 0x76657269  # "veri": decorrelates selection from task work


def verify_selected(seed: int, fraction: float) -> bool:
    """Deterministic sample-audit choice for one task.

    Derived from the task seed alone (through an independent
    ``SeedSequence`` stream), so which tasks run under verification is
    a pure function of ``(root_seed, index)`` — stable across worker
    counts, completion order, and resumes, like everything else about
    a task.
    """
    if fraction <= 0.0:
        return False
    if fraction >= 1.0:
        return True
    draw = np.random.default_rng(
        np.random.SeedSequence([int(seed), _VERIFY_STREAM])
    ).random()
    return bool(draw < fraction)


class TaskTimeout(RuntimeError):
    """A task attempt exceeded the configured wall-clock budget."""


def worker_init(cache_dir) -> None:
    """Process-pool initializer: installs the shared device-table cache."""
    if cache_dir is not None:
        from repro.devices.library import set_table_cache
        from repro.engine.cache import DeviceTableCache

        set_table_cache(DeviceTableCache(cache_dir))


class _attempt_deadline:
    """SIGALRM-based soft deadline around one task attempt.

    Only usable on the main thread of a process (true for pool workers
    and for inline single-job runs); elsewhere it degrades to no
    enforcement rather than failing the task.
    """

    def __init__(self, timeout_s: float | None):
        self.timeout_s = timeout_s
        self._armed = False
        self._previous = None

    def __enter__(self):
        if (
            self.timeout_s is not None
            and threading.current_thread() is threading.main_thread()
            and hasattr(signal, "SIGALRM")
        ):
            def _on_alarm(signum, frame):
                raise TaskTimeout(
                    f"task attempt exceeded {self.timeout_s:g} s wall-clock budget"
                )

            self._previous = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, self.timeout_s)
            self._armed = True
        return self

    def __exit__(self, *exc_info):
        if self._armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)
            self._armed = False


class _TaskTrace:
    """Records one task's span tree into this process's trace sink.

    Built once per traced task; writes the attempt spans (and the
    solver spans each attempt's telemetry session accumulated), any
    failure-forensics events, and finally the task span itself.  All
    span ids derive from the task's logical position (see
    :mod:`repro.obs.context`), never from this process's identity.
    """

    def __init__(self, trace, task: Task):
        from repro.obs.context import attempt_span_id, task_span_id
        from repro.obs.sink import worker_sink

        self._attempt_id = attempt_span_id
        self.trace = trace
        self.task = task
        self.sink = worker_sink(trace.directory, trace.trace_id)
        self.task_span = task_span_id(trace.trace_id, trace.parent_span_id, task.index)
        self.t0_unix = time.time()
        self._attempt_t0 = (self.t0_unix, time.perf_counter())

    def begin_attempt(self, attempt: int) -> None:
        self._attempt_t0 = (time.time(), time.perf_counter())

    def context(self, attempt: int) -> telemetry.TraceContext:
        """The trace context rooting this attempt's solver spans."""
        return telemetry.TraceContext(
            trace_id=self.trace.trace_id,
            parent_span_id=self._attempt_id(
                self.trace.trace_id, self.task_span, attempt
            ),
        )

    def end_attempt(self, attempt: int, session) -> None:
        t0_unix, t0_perf = self._attempt_t0
        self.sink.write_span(
            self._attempt_id(self.trace.trace_id, self.task_span, attempt),
            self.task_span,
            "attempt",
            t0_unix,
            time.perf_counter() - t0_perf,
            index=self.task.index,
            attempt=attempt,
        )
        if session is not None:
            self.sink.write_session_spans(session)

    def error(self, attempt: int, exc: BaseException) -> None:
        name = (
            "convergence_error"
            if isinstance(exc, RETRYABLE_ERRORS)
            else "task_error"
        )
        self.sink.write_event(
            name,
            level="error",
            index=self.task.index,
            attempt=attempt,
            error_type=type(exc).__name__,
            error="".join(traceback.format_exception_only(exc)).strip(),
        )

    def finish(self, outcome: TaskOutcome) -> TaskOutcome:
        fields = {
            "index": self.task.index,
            "status": outcome.status,
            "attempts": outcome.attempts,
            "counters": outcome.counters,
        }
        if outcome.error_type:
            fields["error_type"] = outcome.error_type
        self.sink.write_span(
            self.task_span,
            self.trace.parent_span_id,
            "task",
            self.t0_unix,
            outcome.wall_s,
            **fields,
        )
        return outcome


def execute_task(
    task: Task,
    retries: int = 0,
    timeout_s: float | None = None,
    collect_telemetry: bool = True,
    verify_fraction: float = 0.0,
    verify_options=None,
    trace=None,
) -> TaskOutcome:
    """Run one task to a structured outcome; never raises.

    ``retries`` is the number of *additional* attempts after the first;
    each attempt gets a fresh ``TaskContext`` with the attempt number,
    and (when enabled) runs under its own telemetry session whose
    counters ride back on the outcome for cross-worker aggregation.

    With ``verify_fraction > 0``, a deterministic per-seed draw
    (:func:`verify_selected`) runs the task under a
    :mod:`repro.verify` session: every Newton solution, transient
    step, and table evaluation inside it is re-checked against the
    reference implementations.  A
    :class:`~repro.verify.core.VerificationError` is *not* retryable —
    the work is deterministic, so the violation is a real solver bug,
    recorded as a structured failure (``error_type``
    ``VerificationError``) that survives the batch.

    With ``trace`` (a :class:`~repro.obs.context.TraceSpec`), the task's
    span tree — task, attempts, and the solver spans inside each
    attempt — streams to this process's JSONL sink; each attempt's
    telemetry session is rooted at the attempt span, so solver spans
    parent correctly in the merged run-level trace.  Failed attempts
    additionally emit ``convergence_error`` / ``task_error`` forensics
    events.  Counter semantics are unchanged: task counters still ride
    back on the outcome only for successful tasks.
    """
    start = time.perf_counter()
    counters: dict[str, int] = {}
    attempt = 0
    tracer = _TaskTrace(trace, task) if trace is not None else None
    audited = verify_selected(task.seed, verify_fraction)
    if audited:
        counters["verify.audited_tasks"] = 1
    while True:
        ctx = TaskContext(index=task.index, seed=task.seed, attempt=attempt)
        verify_ctx = verify.enabled(verify_options) if audited else nullcontext(None)
        if tracer is not None:
            tracer.begin_attempt(attempt)
        session = None
        try:
            with verify_ctx as ver:
                try:
                    if collect_telemetry or tracer is not None:
                        trace_ctx = (
                            tracer.context(attempt) if tracer is not None else None
                        )
                        with telemetry.enabled(
                            log_level="error", trace=trace_ctx
                        ) as session:
                            with _attempt_deadline(timeout_s):
                                value = task.fn(task.payload, ctx)
                        if collect_telemetry:
                            _merge_counts(counters, session.counters)
                    else:
                        with _attempt_deadline(timeout_s):
                            value = task.fn(task.payload, ctx)
                finally:
                    # The attempt span lands success and failure alike —
                    # retried attempts are exactly the interesting ones.
                    if tracer is not None:
                        tracer.end_attempt(attempt, session)
                    # Merge audit counters on success *and* failure —
                    # a violation-aborted attempt still reports how far
                    # the audits got.
                    if ver is not None:
                        for name, n in ver.audits.items():
                            key = f"verify.audit.{name}"
                            counters[key] = counters.get(key, 0) + n
            outcome = TaskOutcome(
                index=task.index,
                status="ok",
                value=value,
                attempts=attempt + 1,
                wall_s=time.perf_counter() - start,
                counters=counters,
            )
            return tracer.finish(outcome) if tracer is not None else outcome
        except RETRYABLE_ERRORS as exc:
            if tracer is not None:
                tracer.error(attempt, exc)
            counters["engine.convergence_errors"] = (
                counters.get("engine.convergence_errors", 0) + 1
            )
            if attempt < retries:
                attempt += 1
                counters["engine.retries"] = counters.get("engine.retries", 0) + 1
                continue
            return _finish(tracer, _failure(task, exc, attempt + 1, start, counters))
        except TaskTimeout as exc:
            if tracer is not None:
                tracer.error(attempt, exc)
            counters["engine.timeouts"] = counters.get("engine.timeouts", 0) + 1
            return _finish(tracer, _failure(task, exc, attempt + 1, start, counters))
        except Exception as exc:  # noqa: BLE001 — the pool must survive
            if tracer is not None:
                tracer.error(attempt, exc)
            return _finish(tracer, _failure(task, exc, attempt + 1, start, counters))


def _finish(tracer, outcome: TaskOutcome) -> TaskOutcome:
    return tracer.finish(outcome) if tracer is not None else outcome


def _failure(task, exc, attempts, start, counters) -> TaskOutcome:
    return TaskOutcome(
        index=task.index,
        status="failed",
        value=None,
        attempts=attempts,
        wall_s=time.perf_counter() - start,
        error_type=type(exc).__name__,
        error="".join(traceback.format_exception_only(exc)).strip(),
        counters=counters,
    )


def _merge_counts(into: dict[str, int], source: dict[str, int]) -> None:
    for name, n in source.items():
        into[name] = into.get(name, 0) + n
