"""Shared on-disk cache of quantized TFET current tables.

:mod:`repro.devices.library` memoizes device tables in-process, which
is enough for a serial run but means every worker process of a batch
run pays the physics step (sampling the calibrated model onto a
141x141 grid) again for every thickness scale it encounters.  This
cache persists the *sampled current grid* — the expensive part — keyed
by the quantized oxide-thickness scale, so across a whole worker pool
(and across runs) each unique scale is sampled exactly once.

Only the raw samples are stored; the interpolant and the charge model
are rebuilt on load (cheap, deterministic numpy work), so a cache hit
is bit-identical to a fresh build.  Writes go through a temp file and
``os.replace`` so concurrent workers racing on the same scale can only
ever observe a complete file; the race loser overwrites with identical
bytes.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from repro.telemetry import core as telemetry

__all__ = ["DeviceTableCache"]

_FORMAT = "repro.table-cache/v1"


class DeviceTableCache:
    """Directory-backed store of sampled current tables.

    Keys are ``(oxide_scale, table_points)`` pairs; the scale is assumed
    already quantized (see :func:`repro.devices.variation.quantize_scale`).
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, oxide_scale: float, table_points: int) -> Path:
        return self.directory / f"tfet_s{oxide_scale:.6f}_p{table_points}.npz"

    def load(self, oxide_scale: float, table_points: int):
        """The stored payload dict, or ``None`` on a miss.

        Payload keys: ``current`` (2-D array), ``vgs`` / ``vds``
        (start, stop, count), ``shape_voltage``.
        """
        path = self._path(oxide_scale, table_points)
        tel = telemetry.active()
        try:
            with np.load(path) as data:
                if str(data["format"]) != _FORMAT:
                    raise ValueError(f"unknown cache format in {path}")
                payload = {
                    "current": data["current"],
                    "vgs": data["vgs"],
                    "vds": data["vds"],
                    "shape_voltage": float(data["shape_voltage"]),
                }
        except FileNotFoundError:
            self.misses += 1
            if tel is not None:
                tel.count("devcache.misses")
            return None
        except (ValueError, KeyError, OSError):
            # A corrupt entry is a miss; the rebuild will overwrite it.
            self.misses += 1
            if tel is not None:
                tel.count("devcache.corrupt")
            return None
        self.hits += 1
        if tel is not None:
            tel.count("devcache.hits")
        return payload

    def store(
        self,
        oxide_scale: float,
        table_points: int,
        current: np.ndarray,
        vgs: tuple[float, float, int],
        vds: tuple[float, float, int],
        shape_voltage: float,
    ) -> Path:
        """Atomically persist one sampled table; returns the entry path."""
        path = self._path(oxide_scale, table_points)
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(
                    handle,
                    format=_FORMAT,
                    current=np.asarray(current, dtype=float),
                    vgs=np.asarray(vgs, dtype=float),
                    vds=np.asarray(vds, dtype=float),
                    shape_voltage=float(shape_voltage),
                )
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        tel = telemetry.active()
        if tel is not None:
            tel.count("devcache.stores")
        return path

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}
