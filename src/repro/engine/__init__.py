"""repro.engine — fault-tolerant parallel batch execution.

The statistical experiments of the paper (Monte-Carlo variation,
large sweeps) decompose into independent tasks.  This subsystem runs
them at scale:

* :mod:`repro.engine.jobs` — the job model: tasks with deterministic
  per-task seeds derived from ``(root_seed, index)``;
* :mod:`repro.engine.scheduler` — a process-pool scheduler with
  per-task retry (solver-knob escalation on ``ConvergenceError``),
  per-attempt timeouts, structured failures, and cross-worker
  telemetry aggregation;
* :mod:`repro.engine.checkpoint` — append-only JSONL checkpoints so an
  interrupted run resumes (or extends) without recomputing;
* :mod:`repro.engine.cache` — the shared on-disk device-table cache
  warmed by every worker;
* :mod:`repro.engine.mc` — the Monte-Carlo front-end used by
  ``fig09``/``fig10`` and ``examples/monte_carlo_yield.py``.

Quickstart::

    from repro.engine import EngineConfig, McMetricSpec, MonteCarloBatch

    spec = McMetricSpec(metric="drnm", beta=0.6, assist="vgnd_lowering",
                        metric_name="DRNM")
    result = MonteCarloBatch(spec).run(
        200, seed=2011,
        engine=EngineConfig(jobs=4, checkpoint_path="results/checkpoints/drnm.jsonl",
                            run_key="drnm@0.6", root_seed=2011, resume=True,
                            cache_dir="results/table_cache"),
    )
    result.mean(), result.failure_fraction, result.report.cache_stats()
"""

from repro.engine.cache import DeviceTableCache
from repro.engine.checkpoint import CheckpointLog, CheckpointMismatch
from repro.engine.jobs import Task, TaskContext, TaskOutcome, derive_seed, task_rng
from repro.engine.mc import (
    McMetricSpec,
    MonteCarloBatch,
    escalated_transient_options,
    evaluate_mc_sample,
    sample_scales,
)
from repro.engine.scheduler import BatchReport, EngineConfig, run_tasks
from repro.engine.worker import TaskTimeout, execute_task

__all__ = [
    "BatchReport",
    "CheckpointLog",
    "CheckpointMismatch",
    "DeviceTableCache",
    "EngineConfig",
    "McMetricSpec",
    "MonteCarloBatch",
    "Task",
    "TaskContext",
    "TaskOutcome",
    "TaskTimeout",
    "derive_seed",
    "escalated_transient_options",
    "evaluate_mc_sample",
    "execute_task",
    "run_tasks",
    "sample_scales",
    "task_rng",
]
