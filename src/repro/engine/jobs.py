"""Job model of the batch-execution engine.

A batch run is a list of independent :class:`Task` objects.  Each task
carries a deterministic seed derived from the run's *root seed* and the
task's *index* (:func:`derive_seed`), so the work a task performs is a
pure function of ``(root_seed, index)`` — independent of worker count,
submission order, and of how many tasks the run contains.  That single
property is what makes ``--jobs 4`` bit-identical to ``--jobs 1``, lets
an interrupted run resume from a checkpoint without recomputing, and
lets a finished 64-sample run be *extended* to 200 samples by reusing
its first 64 results.

Task functions must be picklable (module-level callables) when the run
uses more than one worker process; single-worker runs execute inline
and accept closures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = [
    "Task",
    "TaskContext",
    "TaskOutcome",
    "derive_seed",
    "task_rng",
]


def derive_seed(root_seed: int, index: int) -> int:
    """Deterministic 64-bit per-task seed from a root seed and task index.

    Uses :class:`numpy.random.SeedSequence` entropy mixing (stable,
    documented algorithm) rather than ad-hoc arithmetic, so nearby
    indices produce statistically independent streams.
    """
    if index < 0:
        raise ValueError(f"task index must be non-negative, got {index}")
    state = np.random.SeedSequence([int(root_seed), int(index)]).generate_state(2)
    return int(state[0]) << 32 | int(state[1])


def task_rng(root_seed: int, index: int) -> np.random.Generator:
    """The task's private random generator (same derivation as the seed)."""
    if index < 0:
        raise ValueError(f"task index must be non-negative, got {index}")
    return np.random.default_rng(np.random.SeedSequence([int(root_seed), int(index)]))


@dataclass(frozen=True)
class Task:
    """One independent unit of work.

    ``fn(payload, ctx)`` evaluates the task and returns a
    JSON-serializable value (floats, including ``inf``/``nan``, are the
    common case).  ``ctx`` is a :class:`TaskContext`; retries re-invoke
    ``fn`` with an incremented ``ctx.attempt`` so the function can
    escalate solver knobs.
    """

    index: int
    fn: Callable[[Any, "TaskContext"], Any]
    payload: Any
    seed: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"task index must be non-negative, got {self.index}")


@dataclass(frozen=True)
class TaskContext:
    """Per-attempt execution context handed to the task function."""

    index: int
    seed: int
    attempt: int = 0

    def rng(self) -> np.random.Generator:
        """Generator seeded from the task seed (attempt-independent)."""
        return np.random.default_rng(self.seed)


@dataclass(frozen=True)
class TaskOutcome:
    """Structured result of one task, success or failure.

    A failed task is a *recorded* outcome, not an exception: the batch
    keeps going and the failure (type, message, attempts used) lands in
    the checkpoint and the run report.
    """

    index: int
    status: str  # "ok" | "failed"
    value: Any = None
    attempts: int = 1
    wall_s: float = 0.0
    error_type: str | None = None
    error: str | None = None
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_record(self) -> dict:
        """Checkpoint-line form (JSONL; ``inf``/``nan`` use the Python
        JSON dialect's ``Infinity``/``NaN`` literals)."""
        record = {
            "index": self.index,
            "status": self.status,
            "value": self.value,
            "attempts": self.attempts,
            "wall_s": self.wall_s,
        }
        if self.error_type is not None:
            record["error_type"] = self.error_type
            record["error"] = self.error
        if self.counters:
            record["counters"] = self.counters
        return record

    @staticmethod
    def from_record(record: dict) -> "TaskOutcome":
        return TaskOutcome(
            index=int(record["index"]),
            status=str(record["status"]),
            value=record.get("value"),
            attempts=int(record.get("attempts", 1)),
            wall_s=float(record.get("wall_s", 0.0)),
            error_type=record.get("error_type"),
            error=record.get("error"),
            counters=dict(record.get("counters", {})),
        )
