"""Telemetry primitives: counters, histograms, timers, spans, events.

The simulation core (Newton solver, transient integrator, device
tables) is instrumented against this module.  Telemetry is **off by
default**: every instrumentation point starts with one call to
:func:`active`, which returns ``None`` unless a session has been
installed, so the disabled cost is a single module-global read per
instrumented operation (verified by ``benchmarks/test_telemetry_overhead.py``).

A :class:`TelemetrySession` aggregates three metric families plus a
structured event log:

* **counters** — monotonically increasing integers (``tel.count(name, n)``);
* **histograms** — count/sum/min/max plus a bounded sample reservoir
  for percentile estimates (``tel.observe(name, value)``);
* **timers** — histograms of wall-clock seconds (``tel.add_time`` or
  the ``tel.time_block(name)`` context manager);
* **events** — level-filtered structured records (``tel.event``),
  timestamped relative to session start and tagged with the current
  span path.

Spans (``with tel.span("experiment.fig04"): ...``) nest; each one
records a timer under ``span.<path>`` and emits begin/end events, so a
trace file reconstructs the call hierarchy of a run.

Everything is plain-Python and dependency-free; sessions are not
thread-safe (the simulator is single-threaded).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "LEVELS",
    "Histogram",
    "TelemetrySession",
    "TraceContext",
    "active",
    "atomic_write_text",
    "derive_span_id",
    "disable",
    "enable",
    "enabled",
    "mint_trace_id",
]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def mint_trace_id() -> str:
    """A fresh 64-bit random trace id (16 hex chars)."""
    return os.urandom(8).hex()


def derive_span_id(trace_id: str, parent_id: str, name: str, seq: int) -> str:
    """Deterministic span id from the span's position in the trace.

    A pure function of ``(trace_id, parent_id, name, seq)``, so two runs
    of the same deterministic workload under the same trace id produce
    identical span ids regardless of worker count or completion order —
    the property the cross-worker merge determinism tests pin.
    """
    digest = hashlib.sha256(
        f"{trace_id}|{parent_id}|{name}|{seq}".encode()
    ).hexdigest()
    return digest[:16]


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` via write-then-rename.

    Same pattern as the char store's npz payloads: a SIGKILL mid-write
    leaves either the old file or the new one, never a truncated mix.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.stem, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


@dataclass(frozen=True)
class TraceContext:
    """Where a session's spans hang in a cross-process trace.

    ``trace_id`` names the run-level trace; ``parent_span_id`` is the
    id every *top-level* span of this session parents to (e.g. the
    worker attempt span for a task's solver spans).  Sessions without a
    context still record spans, under a privately minted trace id.
    """

    trace_id: str
    parent_span_id: str = ""


class Histogram:
    """Streaming summary of one observed quantity.

    Exact count/sum/min/max plus a bounded reservoir of the first
    ``max_samples`` observations for percentile estimates — enough for
    step-size and iteration-count distributions without unbounded
    memory on million-step campaigns.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "samples", "max_samples")

    def __init__(self, max_samples: int = 512):
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.samples: list[float] = []
        self.max_samples = max_samples

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self.samples) < self.max_samples:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (0-100) from the sample reservoir."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = (len(ordered) - 1) * min(max(q, 0.0), 100.0) / 100.0
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)

    def snapshot(self) -> dict:
        if not self.count:
            return {"count": 0, "total": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
        }


class TelemetrySession:
    """One enabled telemetry collection window."""

    def __init__(
        self,
        log_level: str = "info",
        max_events: int = 100_000,
        max_spans: int = 100_000,
        clock=time.perf_counter,
        trace: TraceContext | None = None,
    ):
        if log_level not in LEVELS:
            raise ValueError(
                f"unknown log level {log_level!r}; choose from {sorted(LEVELS)}"
            )
        self.log_level = log_level
        self.max_events = max_events
        self.max_spans = max_spans
        self.clock = clock
        self.trace = trace or TraceContext(trace_id=mint_trace_id())
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}
        self.timers: dict[str, Histogram] = {}
        self.events: list[dict] = []
        self.spans: list[dict] = []
        self.dropped_events = 0
        self.dropped_spans = 0
        self._span_stack: list[str] = []
        self._span_ids: list[str] = []
        self._seq = 0
        self._span_seq = 0
        self.started = clock()

    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    # -- metrics ---------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Increment the named counter by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.record(value)

    def add_time(self, name: str, seconds: float) -> None:
        """Record one wall-clock duration into the named timer."""
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = Histogram()
        timer.record(seconds)

    @contextmanager
    def time_block(self, name: str):
        """Time the enclosed block into the named timer."""
        start = self.clock()
        try:
            yield
        finally:
            self.add_time(name, self.clock() - start)

    # -- events and spans -------------------------------------------------------

    @property
    def span_path(self) -> str:
        return "/".join(self._span_stack)

    def event(self, name: str, level: str = "info", **fields) -> None:
        """Append one structured event (dropped below the session level)."""
        if LEVELS.get(level, 0) < LEVELS[self.log_level]:
            return
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self._seq += 1
        # Core keys win over caller fields so a field named "t" or
        # "name" cannot corrupt the record structure.
        record = dict(fields) if fields else {}
        record.update(
            seq=self._seq,
            t=self.clock() - self.started,
            level=level,
            name=name,
        )
        if self._span_stack:
            record["span"] = self.span_path
        self.events.append(record)

    @contextmanager
    def span(self, name: str, **fields):
        """Hierarchical timed section; nests with enclosing spans.

        Besides the ``span.<path>`` timer and the begin/end events, each
        completed span appends one structured *span record* (id, parent
        id, name, unix start time, duration, fields) to :attr:`spans`.
        Span ids derive deterministically from the session's
        :class:`TraceContext` (see :func:`derive_span_id`), so worker
        sessions configured with the same context produce identical span
        trees for identical work — the substrate of the cross-process
        trace pipeline (:mod:`repro.obs`).
        """
        parent_id = (
            self._span_ids[-1] if self._span_ids else self.trace.parent_span_id
        )
        self._span_seq += 1
        span_id = derive_span_id(self.trace.trace_id, parent_id, name, self._span_seq)
        self._span_stack.append(name)
        self._span_ids.append(span_id)
        path = self.span_path
        self.event("span.begin", level="debug", **fields)
        t0_unix = time.time()
        start = self.clock()
        try:
            yield self
        finally:
            duration = self.clock() - start
            self.add_time(f"span.{path}", duration)
            self.event("span.end", level="debug", duration_s=duration)
            self._span_stack.pop()
            self._span_ids.pop()
            if len(self.spans) < self.max_spans:
                record = {
                    "id": span_id,
                    "parent": parent_id,
                    "name": name,
                    "t0_unix": t0_unix,
                    "dur_s": duration,
                }
                if fields:
                    record["fields"] = dict(fields)
                self.spans.append(record)
            else:
                self.dropped_spans += 1

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """All metric families as one plain-JSON-serializable dict."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: hist.snapshot()
                for name, hist in sorted(self.histograms.items())
            },
            "timers": {
                name: timer.snapshot()
                for name, timer in sorted(self.timers.items())
            },
        }

    def write_trace(self, path: str | Path) -> Path:
        """Write the full session (metrics, events, spans) as one JSON file.

        The write is atomic (write-then-rename), so a run killed
        mid-dump leaves either no trace file or a complete one — never
        a truncated JSON document.
        """
        payload = {
            "schema": "repro.telemetry.trace/v1",
            "created_unix": time.time(),
            "trace_id": self.trace_id,
            "log_level": self.log_level,
            "duration_s": self.clock() - self.started,
            "metrics": self.snapshot(),
            "events": self.events,
            "spans": self.spans,
            "dropped_events": self.dropped_events,
            "dropped_spans": self.dropped_spans,
        }
        return atomic_write_text(path, json.dumps(payload, indent=2))


# -- global session management --------------------------------------------------

_session: TelemetrySession | None = None


def active() -> TelemetrySession | None:
    """The installed session, or ``None`` when telemetry is off.

    This is the hot-path guard: instrumentation points bail out on the
    ``None`` return, so keep this function trivial.
    """
    return _session


def enable(log_level: str = "info", **kwargs) -> TelemetrySession:
    """Install (and return) a fresh global session."""
    global _session
    _session = TelemetrySession(log_level=log_level, **kwargs)
    return _session


def disable() -> TelemetrySession | None:
    """Remove the global session; returns it for post-hoc inspection."""
    global _session
    session, _session = _session, None
    return session


@contextmanager
def enabled(log_level: str = "info", **kwargs):
    """Scoped telemetry: installs a session, restores the previous one.

    Nesting is supported — an inner scope shadows (does not merge into)
    the outer session, which keeps per-experiment manifests isolated
    when a campaign loops over experiments.
    """
    global _session
    previous = _session
    session = TelemetrySession(log_level=log_level, **kwargs)
    _session = session
    try:
        yield session
    finally:
        _session = previous
