"""repro.telemetry — zero-dependency observability for the SPICE core.

Off by default with a guarded no-op fast path; enable a session to
collect counters, histograms, wall-clock timers, hierarchical spans,
and a structured JSON event log from the solvers.  See
:mod:`repro.telemetry.core` for the primitives,
:mod:`repro.telemetry.manifest` for per-run provenance records, and
:mod:`repro.telemetry.diag` for the ``repro diag`` report.
"""

from repro.telemetry.core import (
    LEVELS,
    Histogram,
    TelemetrySession,
    active,
    disable,
    enable,
    enabled,
)
from repro.telemetry.diag import format_diag_report, load_manifests
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    manifest_path,
    result_checksum,
    write_manifest,
)

__all__ = [
    "LEVELS",
    "Histogram",
    "TelemetrySession",
    "active",
    "disable",
    "enable",
    "enabled",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "manifest_path",
    "result_checksum",
    "write_manifest",
    "format_diag_report",
    "load_manifests",
]
