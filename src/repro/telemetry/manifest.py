"""Run manifests: one JSON provenance record per experiment run.

Telemetry sits below every other layer, so this module treats the
experiment result as a duck-typed table (``experiment_id``, ``header``,
``rows``, ``notes``) rather than importing :mod:`repro.experiments`.

A manifest captures what a run produced (row/column shape plus a
content checksum of the result table) and what it cost (wall time and
the full solver-telemetry rollup).  Written next to the result files in
``results/`` by default, so regressions in solver behaviour — a new
gmin-stepping fallback, a 10x jump in rejected transient steps — are
diagnosable from the artifacts alone; ``repro diag`` renders them.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from pathlib import Path

from repro.telemetry.core import TelemetrySession

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "manifest_path",
    "result_checksum",
    "write_manifest",
]

MANIFEST_SCHEMA = "repro.run-manifest/v1"


def _canonical(value):
    """JSON-safe canonical form (infinities become tagged strings)."""
    if isinstance(value, float) and math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    return value


def result_checksum(result) -> str:
    """SHA-256 over the canonical JSON encoding of the result table.

    Stable across runs of a deterministic experiment, so two manifests
    with different checksums mean the numbers (not just the timing)
    changed.
    """
    payload = {
        "experiment_id": result.experiment_id,
        "header": result.header,
        "rows": [[_canonical(v) for v in row] for row in result.rows],
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()


def build_manifest(
    experiment_id: str,
    title: str,
    result,
    session: TelemetrySession,
    wall_time_s: float,
) -> dict:
    """Assemble the manifest dict for one completed run."""
    return {
        "schema": MANIFEST_SCHEMA,
        "experiment_id": experiment_id,
        "title": title,
        "created_unix": time.time(),
        "wall_time_s": wall_time_s,
        "result": {
            "rows": len(result.rows),
            "columns": list(result.header),
            "notes": list(result.notes),
            "checksum_sha256": result_checksum(result),
        },
        "telemetry": session.snapshot(),
    }


def manifest_path(directory: str | Path, experiment_id: str) -> Path:
    return Path(directory) / f"{experiment_id}_manifest.json"


def write_manifest(manifest: dict, directory: str | Path) -> Path:
    """Write the manifest as ``<directory>/<id>_manifest.json``."""
    path = manifest_path(directory, manifest["experiment_id"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2))
    return path
