"""Convergence-forensics summary report over saved run manifests.

``python -m repro diag [paths...]`` loads every ``*_manifest.json``
under the given files/directories (default ``results/``) and prints a
per-experiment solver health table: wall time, Newton effort, which DC
fallback tiers fired, and the transient accept/reject balance.  The
point is trend-spotting — a run that suddenly needs gmin stepping or
rejects 30 % of its steps shows up here without rerunning anything.

Follow-up sections appear when the manifests carry the relevant
counters: an *engine* table (Jacobian stamp/reuse split, retries,
timeouts, task success) for runs that went through the batch engine, a
*batch solver* table (stacked-Newton runs/members, member
retry/failure split, tick and assembly counts, sparse-vs-dense system
selection) for runs using the batched SPICE tier, and a *char* table
(store and serve hit/miss, points computed/failed) for
characterization-store activity.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["load_manifests", "format_diag_report"]

_TIER_LABELS = (
    ("warm_start", "warm"),
    ("cold_start", "cold"),
    ("gmin_stepping", "gmin"),
    ("source_stepping", "src"),
)


def load_manifests(paths) -> list[dict]:
    """Load manifests from files and/or directories, sorted by id.

    Non-manifest JSON files (e.g. the result tables that share the
    directory) are skipped by schema check, not filename guessing.
    """
    candidates: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates.extend(sorted(entry.glob("*_manifest.json")))
        elif entry.exists():
            candidates.append(entry)
    manifests = []
    for path in candidates:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict) and str(payload.get("schema", "")).startswith(
            "repro.run-manifest/"
        ):
            manifests.append(payload)
    manifests.sort(key=lambda m: m.get("experiment_id", ""))
    return manifests


def _fallback_summary(counters: dict) -> str:
    parts = [
        f"{label}:{counters[f'dcop.converged.{tier}']}"
        for tier, label in _TIER_LABELS
        if counters.get(f"dcop.converged.{tier}")
    ]
    return " ".join(parts) if parts else "-"


def _render_table(title: str, header: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
        for c in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return lines


_ENGINE_KEYS = (
    "newton.jacobian_stamps",
    "newton.jacobian_reuses",
    "engine.retries",
    "engine.timeouts",
    "engine.convergence_errors",
    "engine.tasks_total",
)


def _engine_rows(manifests: list[dict]) -> list[list[str]]:
    rows = []
    for manifest in manifests:
        counters = manifest.get("telemetry", {}).get("counters", {})
        if not any(counters.get(key) for key in _ENGINE_KEYS):
            continue
        stamps = counters.get("newton.jacobian_stamps", 0)
        reuses = counters.get("newton.jacobian_reuses", 0)
        reuse_pct = 100.0 * reuses / (stamps + reuses) if stamps + reuses else 0.0
        total = counters.get("engine.tasks_total", 0)
        failed = counters.get("engine.tasks_failed", 0)
        rows.append(
            [
                str(manifest.get("experiment_id", "?")),
                f"{stamps}/{reuses}",
                f"{reuse_pct:.0f}%",
                str(counters.get("engine.retries", 0)),
                str(counters.get("engine.timeouts", 0)),
                str(counters.get("engine.convergence_errors", 0)),
                f"{total - failed}/{total}" if total else "-",
            ]
        )
    return rows


_BATCH_KEYS = (
    "batch.runs",
    "batch.members",
    "mna.sparse_selected",
    "mna.dense_selected",
)


def _batch_rows(manifests: list[dict]) -> list[list[str]]:
    rows = []
    for manifest in manifests:
        counters = manifest.get("telemetry", {}).get("counters", {})
        if not any(counters.get(key) for key in _BATCH_KEYS):
            continue
        members = counters.get("batch.members", 0)
        retried = counters.get("batch.member_retries", 0)
        failed = counters.get("batch.member_failures", 0)
        rows.append(
            [
                str(manifest.get("experiment_id", "?")),
                str(counters.get("batch.runs", 0)),
                str(members),
                f"{members - failed}/{retried}/{failed}" if members else "-",
                str(counters.get("batch.ticks", 0)),
                str(counters.get("batch.member_assemblies", 0)),
                f"{counters.get('mna.sparse_selected', 0)}/"
                f"{counters.get('mna.dense_selected', 0)}",
            ]
        )
    return rows


_CHAR_KEYS = (
    "char.store.hits",
    "char.store.misses",
    "char.serve.hits",
    "char.serve.misses",
    "char.points_computed",
    "char.points_failed",
)


def _char_rows(manifests: list[dict]) -> list[list[str]]:
    rows = []
    for manifest in manifests:
        counters = manifest.get("telemetry", {}).get("counters", {})
        if not any(counters.get(key) for key in _CHAR_KEYS):
            continue
        rows.append(
            [
                str(manifest.get("experiment_id", "?")),
                f"{counters.get('char.store.hits', 0)}/"
                f"{counters.get('char.store.misses', 0)}",
                f"{counters.get('char.serve.hits', 0)}/"
                f"{counters.get('char.serve.misses', 0)}",
                str(counters.get("char.points_computed", 0)),
                str(counters.get("char.points_failed", 0)),
            ]
        )
    return rows


def format_diag_report(manifests: list[dict]) -> str:
    """Solver health tables, one row per manifest.

    Always renders the solver table; the engine and char sections are
    appended only when at least one manifest recorded those counters,
    so pre-engine manifests keep their old report shape.
    """
    header = [
        "experiment",
        "wall (s)",
        "dc solves",
        "newton iters",
        "fallback tiers",
        "tran acc/rej",
        "checksum",
    ]
    rows = []
    for manifest in manifests:
        counters = manifest.get("telemetry", {}).get("counters", {})
        rejected = counters.get("transient.rejected_newton", 0) + counters.get(
            "transient.rejected_dv_limit", 0
        )
        checksum = manifest.get("result", {}).get("checksum_sha256", "")
        rows.append(
            [
                str(manifest.get("experiment_id", "?")),
                f"{manifest.get('wall_time_s', 0.0):.2f}",
                str(counters.get("dcop.solves", 0)),
                str(counters.get("newton.iterations", 0)),
                _fallback_summary(counters),
                f"{counters.get('transient.steps_accepted', 0)}/{rejected}",
                checksum[:12],
            ]
        )
    lines = _render_table("== solver diagnostics ==", header, rows)
    if not rows:
        lines.append("(no run manifests found — run an experiment with --profile)")

    engine_rows = _engine_rows(manifests)
    if engine_rows:
        lines.append("")
        lines.extend(
            _render_table(
                "== engine diagnostics ==",
                [
                    "experiment",
                    "jac stamp/reuse",
                    "reuse",
                    "retries",
                    "timeouts",
                    "conv errors",
                    "tasks ok",
                ],
                engine_rows,
            )
        )

    batch_rows = _batch_rows(manifests)
    if batch_rows:
        lines.append("")
        lines.extend(
            _render_table(
                "== batch solver diagnostics ==",
                [
                    "experiment",
                    "runs",
                    "members",
                    "ok/retried/failed",
                    "ticks",
                    "assemblies",
                    "sparse/dense",
                ],
                batch_rows,
            )
        )

    char_rows = _char_rows(manifests)
    if char_rows:
        lines.append("")
        lines.extend(
            _render_table(
                "== char diagnostics ==",
                [
                    "experiment",
                    "store hit/miss",
                    "serve hit/miss",
                    "computed",
                    "failed",
                ],
                char_rows,
            )
        )
    return "\n".join(lines)
