"""Convergence-forensics summary report over saved run manifests.

``python -m repro diag [paths...]`` loads every ``*_manifest.json``
under the given files/directories (default ``results/``) and prints a
per-experiment solver health table: wall time, Newton effort, which DC
fallback tiers fired, and the transient accept/reject balance.  The
point is trend-spotting — a run that suddenly needs gmin stepping or
rejects 30 % of its steps shows up here without rerunning anything.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["load_manifests", "format_diag_report"]

_TIER_LABELS = (
    ("warm_start", "warm"),
    ("cold_start", "cold"),
    ("gmin_stepping", "gmin"),
    ("source_stepping", "src"),
)


def load_manifests(paths) -> list[dict]:
    """Load manifests from files and/or directories, sorted by id.

    Non-manifest JSON files (e.g. the result tables that share the
    directory) are skipped by schema check, not filename guessing.
    """
    candidates: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates.extend(sorted(entry.glob("*_manifest.json")))
        elif entry.exists():
            candidates.append(entry)
    manifests = []
    for path in candidates:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict) and str(payload.get("schema", "")).startswith(
            "repro.run-manifest/"
        ):
            manifests.append(payload)
    manifests.sort(key=lambda m: m.get("experiment_id", ""))
    return manifests


def _fallback_summary(counters: dict) -> str:
    parts = [
        f"{label}:{counters[f'dcop.converged.{tier}']}"
        for tier, label in _TIER_LABELS
        if counters.get(f"dcop.converged.{tier}")
    ]
    return " ".join(parts) if parts else "-"


def format_diag_report(manifests: list[dict]) -> str:
    """Fixed-width solver health table, one row per manifest."""
    header = [
        "experiment",
        "wall (s)",
        "dc solves",
        "newton iters",
        "fallback tiers",
        "tran acc/rej",
        "checksum",
    ]
    rows = []
    for manifest in manifests:
        counters = manifest.get("telemetry", {}).get("counters", {})
        rejected = counters.get("transient.rejected_newton", 0) + counters.get(
            "transient.rejected_dv_limit", 0
        )
        checksum = manifest.get("result", {}).get("checksum_sha256", "")
        rows.append(
            [
                str(manifest.get("experiment_id", "?")),
                f"{manifest.get('wall_time_s', 0.0):.2f}",
                str(counters.get("dcop.solves", 0)),
                str(counters.get("newton.iterations", 0)),
                _fallback_summary(counters),
                f"{counters.get('transient.steps_accepted', 0)}/{rejected}",
                checksum[:12],
            ]
        )
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
        for c in range(len(header))
    ]
    lines = ["== solver diagnostics =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    if not rows:
        lines.append("(no run manifests found — run an experiment with --profile)")
    return "\n".join(lines)
