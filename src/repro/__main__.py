from repro.cli import main

raise SystemExit(main())
