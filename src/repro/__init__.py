"""repro — reproduction of "Robust 6T Si tunneling transistor SRAM design".

Yang & Mohanram, DATE 2011.  The library stacks four layers:

1. :mod:`repro.devices` — TCAD-lite TFET physics (Kane band-to-band
   tunneling behind a quasi-1D surface-potential solver), table-based
   TFET compact models, and an analytic 32 nm MOSFET baseline;
2. :mod:`repro.circuit` — a SPICE-class simulator (MNA, damped
   Newton-Raphson with homotopy fallbacks, adaptive backward-Euler
   transient, charge-conserving nonlinear capacitors);
3. :mod:`repro.sram` — the studied cells (6T CMOS, 6T TFET in all four
   access configurations, asymmetric 6T TFET, 7T TFET) and the eight
   write/read-assist techniques;
4. :mod:`repro.analysis` / :mod:`repro.experiments` — DRNM, WL_crit,
   delays, static power, area, Monte-Carlo variation, and one runnable
   experiment per paper figure/table.

Quickstart::

    from repro import Tfet6TCell, AccessConfig, CellSizing
    from repro.analysis import dynamic_read_noise_margin

    cell = Tfet6TCell(CellSizing().with_beta(0.6), AccessConfig.INWARD_P)
    drnm = dynamic_read_noise_margin(cell.read_testbench(vdd=0.8))
"""

from repro.analysis import (
    critical_wordline_pulse,
    dynamic_read_noise_margin,
    hold_power,
    read_delay,
    write_delay,
)
from repro import telemetry
from repro.circuit import Circuit, simulate_transient, solve_dc
from repro.devices.library import (
    nmos_device,
    nominal_tfet_physics,
    pmos_device,
    tfet_device,
)
from repro.sram import (
    READ_ASSISTS,
    WRITE_ASSISTS,
    AccessConfig,
    AsymTfet6TCell,
    CellSizing,
    Cmos6TCell,
    Tfet6TCell,
    Tfet7TCell,
)

__version__ = "1.0.0"

__all__ = [
    "critical_wordline_pulse",
    "dynamic_read_noise_margin",
    "hold_power",
    "read_delay",
    "write_delay",
    "Circuit",
    "simulate_transient",
    "solve_dc",
    "telemetry",
    "nmos_device",
    "nominal_tfet_physics",
    "pmos_device",
    "tfet_device",
    "READ_ASSISTS",
    "WRITE_ASSISTS",
    "AccessConfig",
    "AsymTfet6TCell",
    "CellSizing",
    "Cmos6TCell",
    "Tfet6TCell",
    "Tfet7TCell",
    "__version__",
]
