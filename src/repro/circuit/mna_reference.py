"""Loop-based reference MNA assembler (the pre-optimization hot path).

This is the seed implementation of :class:`repro.circuit.mna.MnaSystem`
kept verbatim: per-element Python loops, fresh ``np.zeros`` buffers per
call.  It exists for two reasons:

* the equivalence test (``tests/circuit/test_mna_equivalence.py``) pins
  the precompiled assembler to this one at ~1e-12 on randomized
  circuits, so stamping regressions cannot hide behind vectorization;
* the SPICE-core benchmark (``benchmarks/test_spice_core.py``) swaps it
  into the solver to measure the optimized hot path against the
  recorded seed behaviour on the same machine.

It intentionally mirrors the public assembler's interface (including
``assemble_residual`` and ``assemble(copy=...)``, both implemented at
seed cost: a full assembly) so it is drop-in for the Newton solver.
Do not use it outside tests and benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.elements import GROUND
from repro.circuit.mna import TransientState, VoltageClamp, _CapacitorBank, _TransistorGroup
from repro.circuit.netlist import Circuit

__all__ = ["ReferenceMnaSystem"]


class ReferenceMnaSystem:
    """Assembler bound to one circuit (seed, loop-based)."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.n_nodes = circuit.node_count
        self.n_branches = len(circuit.voltage_sources)
        self.size = self.n_nodes + self.n_branches
        self._groups = self._group_transistors(circuit)
        self._caps = _CapacitorBank(circuit)

    @staticmethod
    def _group_transistors(circuit: Circuit) -> list[_TransistorGroup]:
        by_model: dict[int, list] = {}
        models: dict[int, object] = {}
        for t in circuit.transistors:
            key = id(t.model)
            by_model.setdefault(key, []).append(t)
            models[key] = t.model
        return [_TransistorGroup(models[k], v) for k, v in by_model.items()]

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _voltage(x: np.ndarray, node: int) -> float:
        return 0.0 if node == GROUND else x[node]

    def _cap_voltages(self, x: np.ndarray) -> np.ndarray:
        xg = np.append(x[: self.n_nodes], 0.0)  # ground aliased to the extra slot
        return xg[self._caps.a] - xg[self._caps.b]

    def capacitor_charges(self, x: np.ndarray) -> np.ndarray:
        """Charge on every capacitor at the given solution vector."""
        if not len(self._caps):
            return np.empty(0)
        q, _ = self._caps.charges_and_caps(self._cap_voltages(x))
        return q

    # -- assembly ----------------------------------------------------------------

    def assemble(
        self,
        x: np.ndarray,
        t: float,
        gmin: float = 0.0,
        transient: TransientState | None = None,
        clamps: tuple[VoltageClamp, ...] = (),
        source_scale: float = 1.0,
        copy: bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residual f(x) and Jacobian J(x) at time ``t`` (fresh arrays)."""
        n = self.n_nodes
        f = np.zeros(self.size)
        jac = np.zeros((self.size, self.size))

        volts = x[:n]

        if gmin > 0.0:
            f[:n] += gmin * volts
            jac[np.arange(n), np.arange(n)] += gmin

        for clamp in clamps:
            if clamp.node == GROUND:
                continue
            f[clamp.node] += clamp.conductance * (volts[clamp.node] - clamp.target)
            jac[clamp.node, clamp.node] += clamp.conductance

        self._stamp_resistors(x, f, jac)
        self._stamp_transistors(x, f, jac)
        self._stamp_current_sources(f, t, source_scale)
        self._stamp_voltage_sources(x, f, jac, t, source_scale)
        if transient is not None:
            self._stamp_capacitors(x, f, jac, transient)
        return f, jac

    def assemble_residual(
        self,
        x: np.ndarray,
        t: float,
        gmin: float = 0.0,
        transient: TransientState | None = None,
        clamps: tuple[VoltageClamp, ...] = (),
        source_scale: float = 1.0,
    ) -> np.ndarray:
        """Residual via a full assembly — the seed had no cheaper path."""
        f, _ = self.assemble(
            x, t, gmin=gmin, transient=transient, clamps=clamps,
            source_scale=source_scale,
        )
        return f

    def _stamp_resistors(self, x, f, jac) -> None:
        for r in self.circuit.resistors:
            g = 1.0 / r.resistance
            va = self._voltage(x, r.a)
            vb = self._voltage(x, r.b)
            i = g * (va - vb)
            for node, sign in ((r.a, 1.0), (r.b, -1.0)):
                if node == GROUND:
                    continue
                f[node] += sign * i
                if r.a != GROUND:
                    jac[node, r.a] += sign * g
                if r.b != GROUND:
                    jac[node, r.b] -= sign * g

    def _stamp_transistors(self, x, f, jac) -> None:
        xg = np.append(x[: self.n_nodes], 0.0)  # ground aliased to the extra slot
        for grp in self._groups:
            vd = xg[grp.drain]
            vg = xg[grp.gate]
            vs = xg[grp.source]
            vgs = grp.sign * (vg - vs)
            vds = grp.sign * (vd - vs)
            j, gm, gds = grp.model.evaluate_density(vgs, vds)
            i_d = grp.sign * grp.width * np.asarray(j)
            gm_w = grp.width * np.asarray(gm)
            gds_w = grp.width * np.asarray(gds)

            for k in range(len(grp.width)):
                d, g_node, s = int(grp.drain[k]), int(grp.gate[k]), int(grp.source[k])
                for node, sign in ((d, 1.0), (s, -1.0)):
                    if node == GROUND:
                        continue
                    f[node] += sign * i_d[k]
                    if d != GROUND:
                        jac[node, d] += sign * gds_w[k]
                    if g_node != GROUND:
                        jac[node, g_node] += sign * gm_w[k]
                    if s != GROUND:
                        jac[node, s] -= sign * (gm_w[k] + gds_w[k])

    def _stamp_current_sources(self, f, t, source_scale) -> None:
        for src in self.circuit.current_sources:
            value = source_scale * src.waveform.value(t)
            if src.a != GROUND:
                f[src.a] += value
            if src.b != GROUND:
                f[src.b] -= value

    def _stamp_voltage_sources(self, x, f, jac, t, source_scale) -> None:
        n = self.n_nodes
        for m, src in enumerate(self.circuit.voltage_sources):
            row = n + m
            i_branch = x[row]
            va = self._voltage(x, src.a)
            vb = self._voltage(x, src.b)
            f[row] = va - vb - source_scale * src.waveform.value(t)
            if src.a != GROUND:
                f[src.a] += i_branch
                jac[src.a, row] += 1.0
                jac[row, src.a] += 1.0
            if src.b != GROUND:
                f[src.b] -= i_branch
                jac[src.b, row] -= 1.0
                jac[row, src.b] -= 1.0

    def capacitor_currents(self, x: np.ndarray, transient: TransientState) -> np.ndarray:
        """Companion-model capacitor currents at the solution ``x``."""
        if not len(self._caps):
            return np.empty(0)
        q, _ = self._caps.charges_and_caps(self._cap_voltages(x))
        delta = (q - transient.capacitor_charges) / transient.timestep
        if transient.method == "trapezoidal":
            return 2.0 * delta - transient.capacitor_currents
        return delta

    def _stamp_capacitors(self, x, f, jac, transient: TransientState) -> None:
        if not len(self._caps):
            return
        h = transient.timestep
        q, c = self._caps.charges_and_caps(self._cap_voltages(x))
        if transient.method == "trapezoidal":
            current = 2.0 * (q - transient.capacitor_charges) / h - transient.capacitor_currents
            conductance = 2.0 * c / h
        else:
            current = (q - transient.capacitor_charges) / h
            conductance = c / h
        a, b = self._caps.a, self._caps.b
        a_ok = a != GROUND
        b_ok = b != GROUND
        np.add.at(f, a[a_ok], current[a_ok])
        np.add.at(f, b[b_ok], -current[b_ok])
        both = a_ok & b_ok
        np.add.at(jac, (a[a_ok], a[a_ok]), conductance[a_ok])
        np.add.at(jac, (b[b_ok], b[b_ok]), conductance[b_ok])
        np.add.at(jac, (a[both], b[both]), -conductance[both])
        np.add.at(jac, (b[both], a[both]), -conductance[both])
