"""Time-domain stimulus waveforms for independent sources.

Waveforms expose their corner times as *breakpoints* so the transient
integrator can land a time step exactly on every edge — skipping over a
narrow wordline pulse is how a WL_crit bisection silently lies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Waveform", "Constant", "PiecewiseLinear", "Pulse", "pulse_train"]


class Waveform:
    """Interface: signal value as a function of time."""

    def value(self, t: float) -> float:
        raise NotImplementedError

    def breakpoints(self) -> tuple[float, ...]:
        """Times at which the derivative is discontinuous."""
        return ()


@dataclass(frozen=True)
class Constant(Waveform):
    """A DC level."""

    level: float

    def value(self, t: float) -> float:
        return self.level


@dataclass(frozen=True)
class PiecewiseLinear(Waveform):
    """SPICE-style PWL source: linear between (time, value) corners."""

    times: tuple[float, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ValueError("times and values must have the same length")
        if len(self.times) < 1:
            raise ValueError("PWL waveform needs at least one corner")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("PWL corner times must be strictly increasing")

    def value(self, t: float) -> float:
        return float(np.interp(t, self.times, self.values))

    def breakpoints(self) -> tuple[float, ...]:
        return self.times


@dataclass(frozen=True)
class Pulse(Waveform):
    """A single trapezoidal pulse from ``base`` to ``active``.

    The signal sits at ``base``, ramps to ``active`` at ``t_start`` over
    ``t_edge``, holds for ``width``, and ramps back.
    """

    base: float
    active: float
    t_start: float
    width: float
    t_edge: float = 5e-12

    def __post_init__(self) -> None:
        if self.width < 0.0:
            raise ValueError("pulse width cannot be negative")
        if self.t_edge <= 0.0:
            raise ValueError("edge time must be positive")

    def _corners(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        t0 = self.t_start
        times = (t0, t0 + self.t_edge, t0 + self.t_edge + self.width,
                 t0 + 2.0 * self.t_edge + self.width)
        values = (self.base, self.active, self.active, self.base)
        return times, values

    def value(self, t: float) -> float:
        times, values = self._corners()
        return float(np.interp(t, times, values))

    def breakpoints(self) -> tuple[float, ...]:
        return self._corners()[0]


def pulse_train(
    base: float, levels_and_times: list[tuple[float, float]], t_edge: float = 5e-12
) -> PiecewiseLinear:
    """Build a PWL from a list of (target_level, time_reached) pairs.

    Each entry ramps from the previous level starting ``t_edge`` before
    ``time_reached``.  Convenient for assist-technique schedules.
    """
    times = [0.0]
    values = [base]
    for level, t in levels_and_times:
        start = t - t_edge
        if start <= times[-1]:
            raise ValueError("pulse_train corners overlap; space them out")
        times.extend([start, t])
        values.extend([values[-1], level])
    return PiecewiseLinear(tuple(times), tuple(values))
